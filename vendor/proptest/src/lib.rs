//! Offline stand-in for `proptest`.
//!
//! Keeps the property-test surface this workspace uses — the `proptest!`
//! macro, `Strategy` combinators over numeric ranges / tuples / collections,
//! and the `prop_assert*` / `prop_assume!` macros — but swaps the engine
//! for plain deterministic random sampling: each property runs for a fixed
//! number of cases seeded from the test name, with no shrinking. A failing
//! case panics with the rendered assertion message; re-runs reproduce it
//! because the seed never varies.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

/// RNG handed to strategies during sampling.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Deterministic per-test stream: hash the test path into a seed.
    pub fn for_test(path: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }

    pub fn inner(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is false for this input.
    Fail(String),
    /// `prop_assume!` rejected the input; try another.
    Reject,
}

/// Runner configuration; only `cases` matters to this stand-in, the rest
/// exists so `..ProptestConfig::default()` update syntax compiles.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; unused.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64);
        ProptestConfig { cases, max_shrink_iters: 0, max_global_rejects: 4096 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    type Value;

    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Namespaced strategy constructors (`prop::collection::vec`, …).
pub mod prop {
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// Vectors of `element` with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.inner().gen_range(self.size.lo..=self.size.hi);
                (0..n).map(|_| self.element.sample_value(rng)).collect()
            }
        }
    }

    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample_value(&self, rng: &mut TestRng) -> bool {
                rng.inner().gen_bool(0.5)
            }
        }
    }

    pub mod num {
        /// Present for path compatibility; range strategies are implemented
        /// directly on `Range`/`RangeInclusive`.
        pub use crate::Strategy;
    }
}

/// Inclusive collection-size bounds.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub lo: usize,
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

/// Drives one property: sample inputs until `cases` successes, a failure,
/// or the reject budget runs dry.
pub fn run_property<F>(test_path: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(test_path);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest stand-in: `{test_path}` rejected {rejected} inputs \
                         before reaching {} cases (prop_assume too strict?)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest stand-in: property `{test_path}` failed after \
                     {passed} passing case(s): {msg}"
                );
            }
        }
    }
}

/// Define property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn prop(a in 0f64..1.0, b in strategy()) { prop_assert!(a < 1.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng| {
                        $(let $arg = $crate::Strategy::sample_value(&$strategy, rng);)*
                        #[allow(unused_mut)]
                        let mut case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        };
                        case()
                    },
                );
            }
        )*
    };
    // Default config.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Discard inputs that don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn point() -> impl Strategy<Value = (f64, f64)> {
        (0f64..1.0, 0f64..1.0).prop_map(|(x, y)| (x, y))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -5f64..5.0, n in 1usize..10, b in prop::bool::ANY) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0u32..100, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn mapped_tuples(p in point()) {
            prop_assert!(p.0 >= 0.0 && p.1 < 1.0);
        }

        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_header_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failure_panics() {
        let config = ProptestConfig::with_cases(16);
        crate::run_property("fail_demo", &config, |rng| {
            let x = crate::Strategy::sample_value(&(0u32..1000), rng);
            let case = move || -> Result<(), crate::TestCaseError> {
                crate::prop_assert!(x < 2, "x was {}", x);
                Ok(())
            };
            case()
        });
    }
}
