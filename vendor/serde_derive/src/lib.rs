//! Offline stand-in for `serde_derive`.
//!
//! Derives `Serialize`/`Deserialize` against the workspace `serde` crate's
//! `Value` data model. The input item is parsed directly from the
//! `proc_macro` token stream (no `syn`/`quote` available offline); code is
//! generated as strings and re-parsed.
//!
//! Supported: non-generic structs (named, tuple, unit) and enums (unit,
//! tuple, struct variants) with the externally-tagged representation, plus
//! the `#[serde(skip, default)]` and `#[serde(default)]` field attributes
//! (the latter serializes normally but tolerates a missing key when
//! deserializing). Anything fancier panics with a clear message at
//! expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl did not parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl did not parse")
}

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]` without `skip`: serialized normally, but a
    /// missing key deserializes to `Default::default()`.
    default: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if self.peek_punct(ch) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, got {other:?}"),
        }
    }

    /// Skip leading `#[...]` attributes; report which `#[serde(...)]`
    /// flags (`skip`, `default`) were present.
    fn skip_attrs(&mut self) -> SerdeFlags {
        let mut flags = SerdeFlags::default();
        while self.peek_punct('#') {
            self.pos += 1;
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let f = serde_attr_flags(&g.stream());
                    flags.skip |= f.skip;
                    flags.default |= f.default;
                }
                other => panic!("serde_derive: malformed attribute, got {other:?}"),
            }
        }
        flags
    }

    /// Skip `pub` / `pub(crate)` / `pub(in ...)`.
    fn skip_vis(&mut self) {
        if self.peek_ident("pub") {
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip a type: everything up to the next comma outside `<...>`
    /// nesting. Groups are atomic tokens, so only angle brackets need
    /// depth tracking.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// `#[serde(...)]` flags recognised on a field.
#[derive(Default, Clone, Copy)]
struct SerdeFlags {
    skip: bool,
    default: bool,
}

fn serde_attr_flags(stream: &TokenStream) -> SerdeFlags {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut flags = SerdeFlags::default();
    if let [TokenTree::Ident(name), TokenTree::Group(args)] = toks.as_slice() {
        if name.to_string() == "serde" {
            for t in args.stream() {
                if let TokenTree::Ident(id) = t {
                    match id.to_string().as_str() {
                        "skip" => flags.skip = true,
                        "default" => flags.default = true,
                        _ => {}
                    }
                }
            }
        }
    }
    flags
}

/// Count comma-separated items at angle-depth zero (tuple arity).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle: i32 = 0;
    let mut fields = 0usize;
    let mut seen_any = false;
    for t in stream {
        match t {
            TokenTree::Punct(ref p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(ref p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(ref p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                seen_any = false;
                continue;
            }
            _ => {}
        }
        seen_any = true;
    }
    if seen_any {
        fields += 1;
    }
    fields
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let flags = cur.skip_attrs();
        cur.skip_vis();
        let name = cur.expect_ident("field name");
        if !cur.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        cur.skip_type();
        cur.eat_punct(',');
        fields.push(Field { name, skip: flags.skip, default: flags.default });
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_vis();

    let kw = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("item name");
    if cur.peek_punct('<') {
        panic!("serde_derive: generic type `{name}` is not supported by the offline stand-in");
    }

    match kw.as_str() {
        "struct" => {
            match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    Item { name, shape: Shape::NamedStruct(fields) }
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = count_tuple_fields(g.stream());
                    Item { name, shape: Shape::TupleStruct(arity) }
                }
                // `struct Name;`
                _ => Item { name, shape: Shape::UnitStruct },
            }
        }
        "enum" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            let mut vcur = Cursor::new(body);
            let mut variants = Vec::new();
            while !vcur.at_end() {
                vcur.skip_attrs();
                let vname = vcur.expect_ident("variant name");
                let shape = match vcur.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vcur.pos += 1;
                        VariantShape::Named(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        vcur.pos += 1;
                        VariantShape::Tuple(arity)
                    }
                    _ => VariantShape::Unit,
                };
                if vcur.eat_punct('=') {
                    panic!(
                        "serde_derive: explicit discriminants are not supported \
                         (variant `{vname}`)"
                    );
                }
                vcur.eat_punct(',');
                variants.push(Variant { name: vname, shape });
            }
            Item { name, shape: Shape::Enum(variants) }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(unused_variables, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\"{vn}\"\
                                 .to_string(), ::serde::Value::Seq(vec![{elems}]))]),",
                                binds = binds.join(", "),
                                elems = elems.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\"\
                                 .to_string(), ::serde::Value::Map(vec![{entries}]))]),",
                                binds = binds.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default(),", f.name)
                    } else if f.default {
                        format!("{n}: ::serde::de::field_or_default(v, \"{n}\")?,", n = f.name)
                    } else {
                        format!("{n}: ::serde::de::field(v, \"{n}\")?,", n = f.name)
                    }
                })
                .collect();
            format!("Ok({name} {{\n{}\n}})", inits.join("\n"))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::de::seq_elem(v, {i})?")).collect();
            format!("Ok({name}({}))", elems.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(\
                             inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de::seq_elem(inner, {i})?"))
                                .collect();
                            Some(format!("\"{vn}\" => Ok({name}::{vn}({})),", elems.join(", ")))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: ::std::default::Default::default(),", f.name)
                                    } else if f.default {
                                        format!(
                                            "{n}: ::serde::de::field_or_default(inner, \"{n}\")?,",
                                            n = f.name
                                        )
                                    } else {
                                        format!(
                                            "{n}: ::serde::de::field(inner, \"{n}\")?,",
                                            n = f.name
                                        )
                                    }
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{\n{}\n}}),",
                                inits.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            let map_arm = if payload_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let (tag, inner) = &entries[0];\n\
                     match tag.as_str() {{\n{arms}\n\
                     other => Err(::serde::de::Error::new(format!(\
                     \"unknown variant `{{other}}` of {name}\"))),\n}}\n}}\n",
                    arms = payload_arms.join("\n")
                )
            };
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{units}\n\
                 other => Err(::serde::de::Error::new(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 {map_arm}\
                 _ => Err(::serde::de::Error::new(\
                 \"invalid representation for enum {name}\".to_string())),\n}}",
                units = unit_arms.join("\n")
            )
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> \
         {{\n{body}\n}}\n}}"
    )
}
