//! Offline stand-in for `serde`.
//!
//! Instead of the real crate's visitor-based zero-copy architecture, this
//! models serialization as conversion to and from a [`Value`] tree — the
//! same data model `serde_json::Value` exposes. That is all this workspace
//! needs: derived `Serialize`/`Deserialize` on plain structs and enums,
//! rendered to / parsed from JSON by the `serde_json` stand-in.
//!
//! Enum representation matches serde's externally-tagged default:
//! unit variant → `"Name"`, newtype variant → `{"Name": value}`,
//! tuple variant → `{"Name": [..]}`, struct variant → `{"Name": {..}}`.

pub use serde_derive::{Deserialize, Serialize};

pub mod de;

/// The self-describing data model every `Serialize`/`Deserialize` impl
/// passes through. Maps preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map lookup by key (`None` for non-maps and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(n) => u64::try_from(n).ok(),
            Value::U64(n) => Some(n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// One-word description for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

/// `value["key"]` — returns `Null` for non-maps and missing keys, like
/// `serde_json::Value`.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` over arrays.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Seq(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match *self {
                    Value::I64(n) => i128::from(n) == *other as i128,
                    Value::U64(n) => i128::from(n) == *other as i128,
                    Value::F64(x) => x == *other as f64,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Conversion into the data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool().ok_or_else(|| de::Error::expected("bool", v))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_i64().ok_or_else(|| de::Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| de::Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_u64().ok_or_else(|| de::Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| de::Error::new(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            // serde_json renders non-finite floats as null; accept it back.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| de::Error::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str().map(str::to_string).ok_or_else(|| de::Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Deserializing into `&'static str` (used by const-rationale fields) leaks
/// the string; acceptable for the rare diagnostic round-trip.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v.as_str().ok_or_else(|| de::Error::expected("string", v))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let s = v.as_str().ok_or_else(|| de::Error::expected("string", v))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::new(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items = v.as_array().ok_or_else(|| de::Error::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items = v.as_array().ok_or_else(|| de::Error::expected("array", v))?;
        if items.len() != N {
            return Err(de::Error::new(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| de::Error::new(format!("array length mismatch (wanted {N})")))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, item)| Ok((k.clone(), V::from_value(item)?))).collect()
            }
            _ => Err(de::Error::expected("object", v)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across runs.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, item)| Ok((k.clone(), V::from_value(item)?))).collect()
            }
            _ => Err(de::Error::expected("object", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let items = v.as_array().ok_or_else(|| de::Error::expected("array", v))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(de::Error::new(format!(
                        "expected tuple of length {want}, got {}", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_missing_key_is_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert!(v["missing"].is_null());
        assert_eq!(v["a"], 1);
    }

    #[test]
    fn numeric_cross_compare() {
        assert_eq!(Value::I64(24), 24u64);
        assert_eq!(Value::U64(24), 24i32);
        assert_eq!(Value::F64(0.5), 0.5);
        assert!(Value::Str("x".into()) != 0);
    }

    #[test]
    fn option_roundtrip() {
        let some = Some(3u32).to_value();
        let none: Value = Option::<u32>::None.to_value();
        assert_eq!(Option::<u32>::from_value(&some).unwrap(), Some(3));
        assert_eq!(Option::<u32>::from_value(&none).unwrap(), None);
    }

    #[test]
    fn array_and_tuple_roundtrip() {
        let a = [1.0f64, 2.0, 3.0];
        let back: [f64; 3] = Deserialize::from_value(&a.to_value()).unwrap();
        assert_eq!(a, back);
        let t = (1u32, -2i64);
        let back: (u32, i64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn out_of_range_int_rejected() {
        let v = Value::I64(-1);
        assert!(u32::from_value(&v).is_err());
        let v = Value::U64(1 << 40);
        assert!(u16::from_value(&v).is_err());
    }
}
