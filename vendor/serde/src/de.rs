//! Deserialization error type and helpers used by derive-generated code.

use crate::{Deserialize, Value};
use std::fmt;

/// Deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    pub(crate) fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Fetch and convert a named struct field. Missing keys fall back to
/// deserializing from `Null`, so `Option` fields tolerate absence.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Map(_) => match v.get(name) {
            Some(inner) => T::from_value(inner).map_err(|e| Error(format!("field `{name}`: {e}"))),
            None => {
                T::from_value(&Value::Null).map_err(|_| Error(format!("missing field `{name}`")))
            }
        },
        _ => Err(Error::expected("object", v)),
    }
}

/// Fetch and convert a named struct field marked `#[serde(default)]`:
/// a missing key yields `Default::default()` instead of an error, so new
/// fields can be added without invalidating previously written payloads.
pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Map(_) => match v.get(name) {
            Some(inner) => T::from_value(inner).map_err(|e| Error(format!("field `{name}`: {e}"))),
            None => Ok(T::default()),
        },
        _ => Err(Error::expected("object", v)),
    }
}

/// Fetch and convert the `i`-th element of a sequence (tuple variants and
/// tuple structs).
pub fn seq_elem<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
    match v {
        Value::Seq(items) => match items.get(i) {
            Some(inner) => T::from_value(inner).map_err(|e| Error(format!("element {i}: {e}"))),
            None => Err(Error(format!("missing tuple element {i}"))),
        },
        _ => Err(Error::expected("array", v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_reports_name() {
        let v = Value::Map(vec![("a".into(), Value::Str("x".into()))]);
        let err = field::<u32>(&v, "a").unwrap_err();
        assert!(err.to_string().contains("`a`"));
        let err = field::<u32>(&v, "b").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn optional_field_tolerates_absence() {
        let v = Value::Map(vec![]);
        let got: Option<u32> = field(&v, "gone").unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn field_or_default_fills_missing_keys() {
        let v = Value::Map(vec![("present".into(), Value::U64(7))]);
        let got: u32 = field_or_default(&v, "present").unwrap();
        assert_eq!(got, 7);
        let got: u32 = field_or_default(&v, "gone").unwrap();
        assert_eq!(got, 0);
        assert!(field_or_default::<u32>(&Value::Null, "x").is_err());
    }
}
