//! Offline stand-in for `rand`.
//!
//! Deterministic across platforms (everything is integer arithmetic plus
//! IEEE doubles), which is all this workspace asks of its RNG: the
//! experiments fix a master seed and require bit-for-bit reproducibility,
//! not compatibility with the real crate's value streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `low..high` or `low..=high`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the same expansion
    /// the real crate uses), so adjacent integer seeds give decorrelated
    /// streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform f64 in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform f64 in `[0, 1]` (inclusive of both ends).
fn unit_f64_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty : $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64, usize: next_u64,
                   i8: next_u32, i16: next_u32, i32: next_u32, i64: next_u64, isize: next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample (`rng.gen_range(a..b)`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Floating rounding can land exactly on `end`; clamp into range.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + (hi - lo) * unit_f64_inclusive(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + (self.end - self.start) * (f32::sample(rng));
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + (hi - lo) * unit_f64_inclusive(rng) as f32
    }
}

/// Lemire-style bounded integer sample: uniform in `[0, span)` computed with
/// a widening multiply (no modulo bias worth caring about at these scales,
/// but the multiply is also faster than `%`).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Minimal `rngs` module so `rand::rngs::SmallRng`-style paths resolve if a
/// future caller reaches for them.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, and fine as a default small generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng { state: u64::from_le_bytes(seed) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let n: usize = r.gen_range(0..7usize);
            assert!(n < 7);
            let m: u32 = r.gen_range(5..=9u32);
            assert!((5..=9).contains(&m));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = rng();
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn deterministic_streams() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut r = rng();
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = rng();
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
