//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module this workspace uses: cloneable MPMC
//! senders/receivers, unbounded and bounded flavours, with crossbeam's
//! disconnect semantics. Built on a `Mutex<VecDeque>` plus condvars — not
//! lock-free, but correct, and plenty for worker-pool fan-out at the scale
//! the thread runtime and the serve crate run at.

pub mod channel;
