//! MPMC channels with crossbeam's API shape.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// Bounded channel at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`]: channel empty and all senders gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Channel holding at most `cap` messages; `send` blocks when full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Blocks while a bounded channel is full; errors when all receivers
    /// are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.shared.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Never blocks: rejects with `Full` at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.shared.lock();
            st.senders -= 1;
            st.senders
        };
        if remaining == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            st.receivers
        };
        if remaining == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn disconnect_on_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn mpmc_fan_in_out() {
        let (tx, rx) = unbounded::<u32>();
        let senders: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let receivers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for s in senders {
            s.join().unwrap();
        }
        let total: usize = receivers.into_iter().map(|r| r.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
