//! Offline stand-in for `rand_chacha`.
//!
//! A genuine ChaCha stream cipher core (Bernstein's construction: the
//! "expand 32-byte k" constants, quarter-round ARX mixing, 8 rounds here)
//! driving the workspace `rand` traits. Statistical quality therefore
//! matches the real crate; the exact output stream is self-consistent and
//! platform-independent, which is what the experiments require.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, 64-bit block counter, 256-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed), kept to regenerate blocks.
    key: [u32; 8],
    /// Block counter (low, high) and nonce words.
    counter: u64,
    nonce: [u32; 2],
    /// Buffered keystream for the current block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];

        let mut working = state;
        // 8 rounds = 4 double-rounds (column round + diagonal round).
        for _ in 0..4 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng { key, counter: 0, nonce: [0, 0], buf: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let matches = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn output_spans_range() {
        // Sanity: words are not stuck or biased to a narrow band.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut high = 0usize;
        for _ in 0..1024 {
            if rng.next_u32() > u32::MAX / 2 {
                high += 1;
            }
        }
        assert!((400..=624).contains(&high), "suspicious bit balance: {high}");
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
        let _: u64 = rng.gen();
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
