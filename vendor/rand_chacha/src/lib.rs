//! Offline stand-in for `rand_chacha`.
//!
//! A genuine ChaCha stream cipher core (Bernstein's construction: the
//! "expand 32-byte k" constants, quarter-round ARX mixing, 8 rounds here)
//! driving the workspace `rand` traits. Statistical quality therefore
//! matches the real crate; the exact output stream is self-consistent and
//! platform-independent, which is what the experiments require.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, 64-bit block counter, 256-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed), kept to regenerate blocks.
    key: [u32; 8],
    /// Block counter (low, high) and nonce words.
    counter: u64,
    nonce: [u32; 2],
    /// Buffered keystream for the current block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];

        let mut working = state;
        // 8 rounds = 4 double-rounds (column round + diagonal round).
        for _ in 0..4 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    /// The 32-byte seed this generator was constructed from (the real
    /// crate's `get_seed`).
    pub fn get_seed(&self) -> [u8; 32] {
        let mut seed = [0u8; 32];
        for (chunk, word) in seed.chunks_exact_mut(4).zip(self.key) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        seed
    }

    /// Absolute stream position in 32-bit words consumed so far. Together
    /// with [`Self::get_seed`] this fully describes the generator state, so
    /// checkpoints can persist and bit-identically restore it.
    pub fn get_word_pos(&self) -> u64 {
        // `counter` already points past the buffered block; back out the
        // unread words. A fresh generator (index 16, counter 0) is at 0.
        self.counter.wrapping_mul(16).wrapping_sub(16 - self.index as u64)
    }

    /// Seek to an absolute word position (inverse of [`Self::get_word_pos`]).
    pub fn set_word_pos(&mut self, pos: u64) {
        self.counter = pos / 16;
        self.index = 16;
        for _ in 0..pos % 16 {
            self.next_word();
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng { key, counter: 0, nonce: [0, 0], buf: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let matches = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn output_spans_range() {
        // Sanity: words are not stuck or biased to a narrow band.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut high = 0usize;
        for _ in 0..1024 {
            if rng.next_u32() > u32::MAX / 2 {
                high += 1;
            }
        }
        assert!((400..=624).contains(&high), "suspicious bit balance: {high}");
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
        let _: u64 = rng.gen();
    }

    #[test]
    fn word_pos_tracks_consumption() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        assert_eq!(rng.get_word_pos(), 0);
        for i in 0..100 {
            assert_eq!(rng.get_word_pos(), i);
            rng.next_u32();
        }
        rng.next_u64();
        assert_eq!(rng.get_word_pos(), 102);
    }

    #[test]
    fn seed_and_word_pos_restore_the_stream() {
        // Restoring from (seed, word_pos) must continue bit-identically,
        // including positions inside and exactly on block boundaries.
        for consumed in [0usize, 1, 5, 15, 16, 17, 31, 32, 97] {
            let mut a = ChaCha8Rng::seed_from_u64(23);
            for _ in 0..consumed {
                a.next_u32();
            }
            let mut b = ChaCha8Rng::from_seed(a.get_seed());
            b.set_word_pos(a.get_word_pos());
            assert_eq!(b.get_word_pos(), a.get_word_pos(), "after {consumed} words");
            for _ in 0..64 {
                assert_eq!(a.next_u32(), b.next_u32(), "after {consumed} words");
            }
        }
    }

    #[test]
    fn get_seed_roundtrips_from_seed() {
        let seed: [u8; 32] = std::array::from_fn(|i| i as u8 ^ 0xA5);
        let rng = ChaCha8Rng::from_seed(seed);
        assert_eq!(rng.get_seed(), seed);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
