//! Offline stand-in for `rayon`.
//!
//! Implements the `into_par_iter().map(..).collect()` / `try_for_each(..)`
//! subset on vectors and ranges with real parallelism: items are split into
//! contiguous chunks and mapped on scoped threads (one per available core),
//! preserving input order. No work stealing — block sampling and FTLE grids
//! are uniform enough that a static split is within noise of the real thing
//! at workstation scale.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads used for a parallel call.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f` over `items`, in order, split across scoped threads.
fn parallel_map<T: Send, O: Send>(items: Vec<T>, f: impl Fn(T) -> O + Sync) -> Vec<O> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let per_chunk: Vec<Vec<O>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon stand-in worker panicked")).collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Fallible parallel for-each; the first error encountered (in chunk order)
/// is returned.
fn parallel_try_for_each<T: Send, E: Send>(
    items: Vec<T>,
    f: impl Fn(T) -> Result<(), E> + Sync,
) -> Result<(), E> {
    let results = parallel_map(items, f);
    for r in results {
        r?;
    }
    Ok(())
}

/// Conversion into a parallel iterator (consuming).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter { items: self.collect() }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<O: Send, F: Fn(T) -> O + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, &f);
    }

    pub fn try_for_each<E: Send, F: Fn(T) -> Result<(), E> + Sync>(self, f: F) -> Result<(), E> {
        parallel_try_for_each(self.items, f)
    }

    pub fn collect<C: FromParIter<T>>(self) -> C {
        C::from_par(self.items)
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// A mapped parallel iterator; execution happens at the consuming call.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, O: Send, F: Fn(T) -> O + Sync> ParMap<T, F> {
    pub fn collect<C: FromParIter<O>>(self) -> C {
        C::from_par(parallel_map(self.items, self.f))
    }

    pub fn sum<S: std::iter::Sum<O>>(self) -> S {
        parallel_map(self.items, self.f).into_iter().sum()
    }

    pub fn for_each<G: Fn(O) + Sync>(self, g: G) {
        let f = self.f;
        parallel_map(self.items, |t| g(f(t)));
    }
}

/// What a parallel iterator can collect into.
pub trait FromParIter<T> {
    fn from_par(items: Vec<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_par(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_par_iter() {
        let out: Vec<usize> = (0..37usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out.len(), 37);
        assert_eq!(out[36], 37);
    }

    #[test]
    fn try_for_each_propagates_error() {
        let v: Vec<u32> = (0..100).collect();
        let r = v.into_par_iter().try_for_each(|x| if x == 42 { Err("boom") } else { Ok(()) });
        assert_eq!(r, Err("boom"));
    }

    #[test]
    fn empty_input_ok() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
