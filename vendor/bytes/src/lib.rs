//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of external crates the workspace depends on are vendored as
//! API-compatible subsets. This one covers exactly what
//! `streamline_iosim::format` uses: little-endian put/get on growable and
//! borrowed buffers, plus the `BytesMut` → `Bytes` freeze.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_vec(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }

    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

/// Write-side trait: append fixed-width little-endian values.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait: consume fixed-width little-endian values from the front.
///
/// Reading past the end panics, as in the real crate.
pub trait Buf {
    /// Remaining readable bytes.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow: {} < {}", self.len(), dst.len());
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEADBEEF);
        buf.put_u16_le(7);
        buf.put_f64_le(1.5);
        buf.put_f32_le(-2.25);
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u32_le(), 0xDEADBEEF);
        assert_eq!(rd.get_u16_le(), 7);
        assert_eq!(rd.get_f64_le(), 1.5);
        assert_eq!(rd.get_f32_le(), -2.25);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1, 2];
        let _ = rd.get_u32_le();
    }
}
