//! Offline stand-in for `serde_json`.
//!
//! Renders the workspace `serde::Value` model to JSON text and parses it
//! back with a recursive-descent parser. Finite floats print through Rust's
//! shortest-roundtrip `{}` formatting, so `to_string` → `from_str` is
//! bit-exact for every finite f64; non-finite floats serialize as `null`
//! (the real crate's default behavior).

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type (including `Value`).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` gives the shortest string that parses back exactly;
                // force a `.0` on integral values so the number re-parses
                // as a float-looking token (harmless either way, since
                // deserialization coerces).
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos)))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first escape's last digit
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                self.pos -= 1; // parse_hex4 expects pos on `u`
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Parse the `XXXX` of a `\uXXXX` escape; on entry `pos` is at `u`.
    /// Leaves `pos` on the last hex digit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for x in [0.1f64, 1.0 / 3.0, -2.5e-9, 1e300, 42.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn value_parse_and_index() {
        let v: Value = from_str(r#"{"terminated": 24, "algorithm": "LoadOnDemand"}"#).unwrap();
        assert_eq!(v["terminated"], 24);
        assert_eq!(v["algorithm"], "LoadOnDemand");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn string_escapes() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F600}".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(original, back);
        // And parse an astral escape written the verbose way.
        let back: String = from_str(r#""😀""#).unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn nested_pretty_output_reparses() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::Null])),
            ("b".into(), Value::Map(vec![("c".into(), Value::Bool(true))])),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_preserved_exactly() {
        let v: Value = from_str("[18446744073709551615, -9223372036854775808]").unwrap();
        assert_eq!(v[0], u64::MAX);
        assert_eq!(v[1], i64::MIN);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{bad}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
