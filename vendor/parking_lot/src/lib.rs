//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the non-poisoning `parking_lot` API
//! surface this workspace uses: `lock()`/`read()`/`write()` returning guards
//! directly (a poisoned lock is recovered rather than propagated), plus a
//! `Condvar` whose `wait` takes `&mut MutexGuard`.

use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion, non-poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Holds an `Option` internally so [`Condvar::wait`]
/// can temporarily take ownership of the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// Reader-writer lock, non-poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        h.join().unwrap();
        assert!(*g);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
