//! Offline stand-in for `criterion`.
//!
//! Provides the macro/builder surface the workspace benches use and runs
//! each benchmark as a short warm-up followed by a timed loop, printing the
//! mean iteration time. No statistics beyond the mean, no HTML reports —
//! enough to compare algorithm variants by eye, which is what the benches
//! are for. The tier-1 concern is only that `cargo test` compiles bench
//! targets; `cargo bench` runs them.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.warm_up_time, self.measurement_time, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_bench(
            &label,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.criterion.sample_size,
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(
            &label,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            self.criterion.sample_size,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one case within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    /// (total duration, iterations) accumulated by `iter`.
    measured: Option<(Duration, u64)>,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start
            .elapsed()
            .checked_div(warm_iters.max(1) as u32)
            .unwrap_or(Duration::from_nanos(1));

        // Measure for the configured budget (at least one iteration).
        let target = self.measurement;
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= target {
                break;
            }
            // Very slow benchmarks: don't start an iteration that would
            // blow far past the budget.
            if per_iter > target && iters >= 1 {
                break;
            }
        }
        self.measured = Some((start.elapsed(), iters));
    }

    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, f: F) {
        self.iter(f);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_bench<F>(name: &str, warm_up: Duration, measurement: Duration, _samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { measured: None, warm_up, measurement };
    f(&mut b);
    match b.measured {
        Some((total, iters)) if iters > 0 => {
            let mean = total.checked_div(iters as u32).unwrap_or_default();
            println!("{name:<50} time: {:>12}  ({iters} iterations)", format_duration(mean));
        }
        _ => println!("{name:<50} (no measurement recorded)"),
    }
}

/// Declare a benchmark group; both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| black_box(2 + 2)));
        c.bench_function("counts", |b| {
            ran += 1;
            b.iter(|| black_box(1))
        });
        assert_eq!(ran, 1);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("grp");
        for n in [1u64, 2] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * n))
            });
        }
        g.finish();
    }
}
