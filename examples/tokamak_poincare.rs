//! Poincaré puncture plot of the tokamak field (§3.2's fusion dataset).
//!
//! Field lines are integrated with the Dormand–Prince tracer directly (no
//! cluster needed) and their crossings of the φ = 0 half-plane are collected.
//! Nested flux surfaces show up as closed curves; the resonant perturbation
//! tears the outer surfaces into island chains — the "chaotic behavior" §3.2
//! mentions. The puncture map is rendered as ASCII art.
//!
//! ```sh
//! cargo run --release --example tokamak_poincare
//! ```

use streamline_repro::field::analytic::VectorField;
use streamline_repro::field::tokamak::TokamakField;
use streamline_repro::integrate::poincare::{punctures as collect, SectionPlane};
use streamline_repro::math::Vec3;

/// Collect (R, z) punctures of the φ=0 half-plane (y = 0, x > 0).
fn punctures(field: &TokamakField, seed: Vec3, laps: usize) -> Vec<(f64, f64)> {
    let f = |p: Vec3| Some(field.eval(p));
    let plane = SectionPlane::new(Vec3::ZERO, Vec3::Y);
    let accept = |p: Vec3| p.x > 0.0;
    collect(&f, seed, plane, &accept, laps, 2_000_000, 0.02)
        .into_iter()
        .map(|p| ((p.x * p.x + p.y * p.y).sqrt(), p.z))
        .collect()
}

fn main() {
    let field = TokamakField::standard(3.0, 1.0);
    // Seeds across minor radii: inner surfaces intact, outer ones chaotic.
    let radii = [0.15, 0.3, 0.45, 0.6, 0.72, 0.84, 0.95];
    let mut all: Vec<(f64, f64)> = Vec::new();
    for (i, &r) in radii.iter().enumerate() {
        let seed = Vec3::new(3.0 + r, 0.0, 0.0);
        let pts = punctures(&field, seed, 160);
        println!("seed r={r:.2}: {} punctures, radial spread {:.4}", pts.len(), spread(&pts));
        let _ = i;
        all.extend(pts);
    }

    // ASCII render of the (R, z) poloidal cross-section.
    const W: usize = 78;
    const H: usize = 36;
    let mut grid = vec![[b' '; W]; H];
    for &(r, z) in &all {
        let x = ((r - 2.0) / 2.0 * (W - 1) as f64).round() as isize;
        let y = ((z + 1.0) / 2.0 * (H - 1) as f64).round() as isize;
        if x >= 0 && (x as usize) < W && y >= 0 && (y as usize) < H {
            grid[H - 1 - y as usize][x as usize] = b'.';
        }
    }
    println!("\nPoincare section at phi = 0 (R in [2,4], z in [-1,1]):");
    for row in &grid {
        println!("{}", std::str::from_utf8(row).unwrap());
    }
}

/// Standard deviation of puncture minor radius — near zero for an intact
/// flux surface, large for a chaotic line.
fn spread(pts: &[(f64, f64)]) -> f64 {
    if pts.is_empty() {
        return 0.0;
    }
    let minor: Vec<f64> = pts.iter().map(|&(r, z)| ((r - 3.0).powi(2) + z * z).sqrt()).collect();
    let mean = minor.iter().sum::<f64>() / minor.len() as f64;
    (minor.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / minor.len() as f64).sqrt()
}
