//! Finite-time Lyapunov exponents of the unsteady double gyre — the
//! Lagrangian-analysis workload of §2.1 ("many thousands to millions of
//! streamlines", seeded densely on a grid). Renders the repelling LCS
//! ridges as ASCII art.
//!
//! ```sh
//! cargo run --release --example ftle_lcs
//! ```

use streamline_repro::field::unsteady::UnsteadyDoubleGyre;
use streamline_repro::integrate::StepLimits;
use streamline_repro::pathline::ftle::ftle_grid;

fn main() {
    let field = UnsteadyDoubleGyre::standard();
    let (nx, ny) = (120, 60);
    let limits = StepLimits { h0: 1e-2, h_max: 0.1, max_steps: 100_000, ..Default::default() };
    println!("computing FTLE on a {nx}x{ny} grid ({} particles, horizon 10) ...", nx * ny);
    let t0 = std::time::Instant::now();
    let ftle = ftle_grid(&field, [0.0, 0.0], [2.0, 1.0], 0.0, nx, ny, 0.0, 10.0, &limits);
    println!("done in {:.1}s; max FTLE = {:.3}\n", t0.elapsed().as_secs_f64(), ftle.max_value());

    // ASCII shading by quantile.
    let mut finite: Vec<f64> = ftle.values.iter().copied().filter(|v| v.is_finite()).collect();
    finite.sort_by(|a, b| a.total_cmp(b));
    let q = |f: f64| finite[((finite.len() - 1) as f64 * f) as usize];
    let thresholds = [q(0.55), q(0.75), q(0.88), q(0.96)];
    let shades = [' ', '.', ':', 'x', '#'];
    for j in (0..ny).rev() {
        let mut row = String::with_capacity(nx);
        for i in 0..nx {
            let v = ftle.get(i, j);
            let shade = if !v.is_finite() {
                ' '
            } else {
                let level = thresholds.iter().filter(|&&t| v > t).count();
                shades[level]
            };
            row.push(shade);
        }
        println!("{row}");
    }
    println!(
        "\n'#' marks the strongest repelling ridges (Lagrangian coherent \
         structures) separating the two gyres' transport regions."
    );
}
