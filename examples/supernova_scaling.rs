//! A miniature of the paper's astrophysics scaling study (§5.1): sweep the
//! three algorithms over processor counts on the supernova field and print
//! the four metrics each figure plots.
//!
//! ```sh
//! cargo run --release --example supernova_scaling
//! ```

use streamline_repro::core::{run_simulated, Algorithm, RunConfig};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};

fn main() {
    let dcfg = DatasetConfig {
        blocks_per_axis: [4, 4, 4],
        cells_per_block: [12, 12, 12],
        ghost: 1,
        seed: 42,
    };
    let dataset = Dataset::astrophysics(dcfg);

    for seeding in [Seeding::Sparse, Seeding::Dense] {
        let seeds = dataset.seeds_with_count(seeding, 2_000);
        println!("== supernova, {} seeding, {} streamlines ==", seeding.label(), seeds.len());
        println!(
            "{:<6} {:<16} {:>10} {:>10} {:>10} {:>8}",
            "procs", "algorithm", "wall (s)", "io (s)", "comm (s)", "E"
        );
        for procs in [8, 16, 32] {
            for algo in Algorithm::ALL {
                let mut cfg = RunConfig::new(algo, procs);
                cfg.limits.h0 = 1e-3;
                cfg.limits.h_max = 0.02;
                cfg.limits.max_steps = 800;
                cfg.limits.min_speed = 1e-3;
                cfg.cache_blocks = 16;
                let r = run_simulated(&dataset, &seeds, &cfg);
                assert_eq!(r.terminated as usize, seeds.len());
                println!(
                    "{:<6} {:<16} {:>10.4} {:>10.4} {:>10.4} {:>8.3}",
                    procs,
                    algo.label(),
                    r.wall,
                    r.io_time,
                    r.comm_time,
                    r.block_efficiency(),
                );
            }
        }
        println!();
    }
    println!(
        "Shapes to look for (cf. Figures 5-8): Static has minimal I/O and E = 1 \
         but communicates streamlines; Load On Demand never communicates but \
         re-reads blocks; the Hybrid balances both and scales best."
    );
}
