//! Trace streamlines in all three application fields and write visual
//! artifacts: VTK polylines (for VisIt/ParaView), OBJ lines, PPM projection
//! images, and a CSV summary — into `./streamline-out/`.
//!
//! ```sh
//! cargo run --release --example render_fields
//! ```

use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::integrate::{advect, Dopri5, StepLimits, Streamline, StreamlineId};
use streamline_repro::math::Vec3;
use streamline_repro::output::{csv, obj, ppm, vtk};

/// Trace `n` streamlines with recorded geometry directly on the analytic
/// field (full resolution; no cluster needed for rendering).
fn trace(dataset: &Dataset, n: usize, limits: &StepLimits) -> Vec<Streamline> {
    let seeds = dataset.seeds_with_count(Seeding::Sparse, n);
    let field = &dataset.field;
    let domain = dataset.decomp.domain;
    let mut sample = |p: Vec3| Some(field.eval(p));
    let region = move |p: Vec3| domain.contains(p);
    seeds
        .points
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let mut sl = Streamline::new(StreamlineId(i as u32), p, limits.h0);
            advect(&mut sl, &mut sample, &region, limits, &Dopri5);
            sl
        })
        .collect()
}

fn main() -> std::io::Result<()> {
    let out = std::path::Path::new("streamline-out");
    std::fs::create_dir_all(out)?;
    let cfg = DatasetConfig::tiny();

    let cases: [(&str, Dataset, StepLimits, ppm::Projection); 3] = [
        (
            "supernova",
            Dataset::astrophysics(cfg),
            StepLimits {
                h0: 1e-3,
                h_max: 0.02,
                max_steps: 2_000,
                min_speed: 1e-4,
                ..Default::default()
            },
            ppm::Projection::DropZ,
        ),
        (
            "tokamak",
            Dataset::fusion(cfg),
            StepLimits { h0: 1e-2, h_max: 0.08, max_steps: 3_000, ..Default::default() },
            ppm::Projection::DropZ,
        ),
        (
            "thermal",
            Dataset::thermal_hydraulics(cfg),
            StepLimits {
                h0: 1e-3,
                h_max: 0.01,
                max_steps: 2_000,
                max_arc_length: 8.0,
                ..Default::default()
            },
            ppm::Projection::DropY,
        ),
    ];

    for (name, dataset, limits, projection) in cases {
        let streams = trace(&dataset, 120, &limits);
        let total_verts: usize = streams.iter().map(|s| s.geometry.len()).sum();
        println!("{name}: {} curves, {} vertices", streams.len(), total_verts);

        vtk::write_polylines_file(&out.join(format!("{name}.vtk")), &streams)?;
        obj::write_lines_file(&out.join(format!("{name}.obj")), &streams)?;
        csv::write_summary_file(&out.join(format!("{name}.csv")), &streams)?;

        // Projection image.
        let d = dataset.decomp.domain;
        let (min, max) = match projection {
            ppm::Projection::DropZ => ((d.min.x, d.min.y), (d.max.x, d.max.y)),
            ppm::Projection::DropY => ((d.min.x, d.min.z), (d.max.x, d.max.z)),
            ppm::Projection::DropX => ((d.min.y, d.min.z), (d.max.y, d.max.z)),
        };
        let aspect = (max.1 - min.1) / (max.0 - min.0);
        let width = 800usize;
        let height = ((width as f64 * aspect).round() as usize).max(64);
        let mut canvas = ppm::Canvas::new(width, height, min, max, projection);
        for (i, s) in streams.iter().enumerate() {
            canvas.draw_streamline(s, ppm::palette(i));
        }
        canvas.write_ppm_file(&out.join(format!("{name}.ppm")))?;
        println!("  wrote {name}.vtk / .obj / .csv / .ppm ({} lit pixels)", canvas.lit_pixels());
    }
    println!("\nartifacts in {}/", out.display());
    Ok(())
}
