//! Stream-surface construction with dynamic seed insertion — the §8
//! future-work scenario: "algorithms that do not depend on an a priori
//! knowledge of all seed points, but add new seed points dynamically based
//! on an ongoing streamline calculation. One application area where this
//! becomes necessary is the calculation of stream surfaces."
//!
//! A front of particles seeded on a circle around the thermal-hydraulics
//! inlet (Figure 4's configuration) is advanced in arc-length increments;
//! whenever two adjacent particles separate beyond a threshold, a new
//! particle is inserted between them, keeping the surface well resolved
//! through the turbulent jet.
//!
//! ```sh
//! cargo run --release --example stream_surface
//! ```

use streamline_repro::field::analytic::VectorField;
use streamline_repro::field::thermal::ThermalHydraulicsField;
use streamline_repro::integrate::{advect, Dopri5, StepLimits, Streamline, StreamlineId};
use streamline_repro::math::{Aabb, Vec3};

struct FrontParticle {
    sl: Streamline,
    alive: bool,
}

fn particle(id: u32, p: Vec3) -> FrontParticle {
    FrontParticle { sl: Streamline::new(StreamlineId(id), p, 1e-3), alive: true }
}

fn main() {
    let field = ThermalHydraulicsField::standard();
    let domain = ThermalHydraulicsField::domain();
    let mut sample = |p: Vec3| Some(field.eval(p));
    let region = move |p: Vec3| domain.contains(p);

    // Initial front: 64 seeds on a circle just inside the warm inlet.
    let center = ThermalHydraulicsField::INLET_WARM + Vec3::new(0.02, 0.0, 0.0);
    let radius = 0.05;
    let mut next_id = 0u32;
    let mut front: Vec<FrontParticle> = (0..64)
        .map(|i| {
            let ang = i as f64 / 64.0 * std::f64::consts::TAU;
            let p = center + Vec3::new(0.0, ang.cos(), ang.sin()) * radius;
            next_id += 1;
            particle(next_id - 1, p)
        })
        .collect();

    let split_distance = 0.035; // refine when neighbours separate past this
    let advance_arc = 0.05; // arc length per front step
    let max_front = 4000;
    let mut inserted_total = 0usize;
    let mut triangles = 0usize;

    println!("step  front  alive  inserted  mean-separation");
    for step in 0..30 {
        // Advance every live particle by one arc increment.
        for fp in front.iter_mut().filter(|f| f.alive) {
            let limits = StepLimits {
                max_arc_length: fp.sl.state.arc_length + advance_arc,
                max_steps: fp.sl.state.steps + 10_000,
                h0: 1e-3,
                h_max: 0.01,
                ..Default::default()
            };
            let out = advect(&mut fp.sl, &mut sample, &region, &limits, &Dopri5);
            use streamline_repro::integrate::{AdvectOutcome, StreamlineStatus, Termination};
            match out.outcome {
                // Hit this round's arc budget: still alive, keep going next
                // round (clear the budget termination).
                AdvectOutcome::Terminated(Termination::MaxArcLength) => {
                    fp.sl.status = StreamlineStatus::Active;
                }
                // Left the box or genuinely stuck (stagnation, step budget).
                AdvectOutcome::LeftRegion | AdvectOutcome::Terminated(_) => {
                    fp.alive = false;
                }
            }
        }
        // Refine: insert midpoints where adjacent live particles diverge
        // ("educated guesses based on local streamline behavior", §8).
        let mut inserted_this = 0;
        let mut i = 0;
        while i + 1 < front.len() && front.len() < max_front {
            let (a, b) = (&front[i], &front[i + 1]);
            if a.alive && b.alive {
                let d = a.sl.state.position.distance(b.sl.state.position);
                if d > split_distance {
                    // Re-seed from the midpoint of the *current* front edge;
                    // its curve will interpolate the surface from here on.
                    let mid = a.sl.state.position.lerp(b.sl.state.position, 0.5);
                    if domain.contains(mid) {
                        next_id += 1;
                        let mut p = particle(next_id - 1, mid);
                        p.sl.state.arc_length = a.sl.state.arc_length;
                        front.insert(i + 1, p);
                        inserted_this += 1;
                        i += 1; // skip the fresh particle
                    }
                }
            }
            i += 1;
        }
        inserted_total += inserted_this;
        // Surface growth this step: one quad (2 triangles) per live edge.
        triangles += front.windows(2).filter(|w| w[0].alive && w[1].alive).count() * 2;

        let live: Vec<&FrontParticle> = front.iter().filter(|f| f.alive).collect();
        let seps: Vec<f64> = live
            .windows(2)
            .map(|w| w[0].sl.state.position.distance(w[1].sl.state.position))
            .collect();
        let mean_sep =
            if seps.is_empty() { 0.0 } else { seps.iter().sum::<f64>() / seps.len() as f64 };
        println!(
            "{step:>4}  {:>5}  {:>5}  {:>8}  {:.4}",
            front.len(),
            live.len(),
            inserted_this,
            mean_sep
        );
        if live.len() < 2 {
            break;
        }
    }

    println!(
        "\nsurface complete: {} particles ({} dynamically inserted), ~{} triangles",
        front.len(),
        inserted_total,
        triangles
    );
    // The refined front must stay resolved: no adjacent live pair wider
    // than 2x the split threshold (insertions keep up with divergence).
    let worst = front
        .windows(2)
        .filter(|w| w[0].alive && w[1].alive)
        .map(|w| w[0].sl.state.position.distance(w[1].sl.state.position))
        .fold(0.0f64, f64::max);
    println!("worst adjacent separation: {worst:.4} (threshold {split_distance})");
    let bbox = front.iter().filter(|f| f.alive).fold(Aabb::new(center, center), |bb, f| {
        bb.union(&Aabb::new(f.sl.state.position, f.sl.state.position))
    });
    println!("front bounding box now spans {:?}", bbox.size());
}
