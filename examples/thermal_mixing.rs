//! The §5.3 thermal-hydraulics scenario at example scale: dense seeding
//! around an inlet (the stream-surface configuration), the Static Allocation
//! out-of-memory failure, and the Load On Demand vs Hybrid crossover.
//!
//! ```sh
//! cargo run --release --example thermal_mixing
//! ```

use streamline_repro::core::{
    classify, recommend, run_simulated, Algorithm, FlowKnowledge, RunConfig, RunOutcome,
};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::integrate::Termination;

fn main() {
    let dcfg = DatasetConfig {
        blocks_per_axis: [4, 4, 4],
        cells_per_block: [12, 12, 12],
        ghost: 1,
        seed: 11,
    };
    let dataset = Dataset::thermal_hydraulics(dcfg);
    // Dense circle of seeds immediately around the warm inlet, integrated a
    // short distance — the paper's stream-surface replication.
    let seeds = dataset.seeds_with_count(Seeding::Dense, 3_000);

    let mut cfg = RunConfig::new(Algorithm::LoadOnDemand, 16);
    cfg.limits.max_steps = 2_500;
    cfg.limits.max_arc_length = 1.5;
    // Example-scale memory: small caches, and a budget that accommodates a
    // 1/n share of the seed objects but not all of them on one rank.
    cfg.cache_blocks = 4;
    // 160 MB per rank: comfortable for a 1/16 share of the inlet seeds,
    // fatal for the one rank Static Allocation parks all 3000 on
    // (3000 × 64 KiB ≈ 197 MB of streamline objects alone).
    cfg.memory.bytes = Some(160e6);

    let profile = classify(&dataset, &seeds, &cfg);
    let rec = recommend(&profile, FlowKnowledge::Localized);
    println!("advisor for dense inlet seeding: {} — {}\n", rec.algorithm.label(), rec.rationale);

    println!("{:<16} {:>12} {:>10} {:>10}", "algorithm", "outcome", "wall (s)", "io (s)");
    for algo in Algorithm::ALL {
        let mut c = cfg;
        c.algorithm = algo;
        let report = run_simulated(&dataset, &seeds, &c);
        match report.outcome {
            RunOutcome::Completed => println!(
                "{:<16} {:>12} {:>10.4} {:>10.4}",
                algo.label(),
                "ok",
                report.wall,
                report.io_time
            ),
            RunOutcome::OutOfMemory { rank } => println!(
                "{:<16} {:>12} {:>10} {:>10}",
                algo.label(),
                format!("OOM@r{rank}"),
                "—",
                "—"
            ),
            RunOutcome::MasterLost { rank } => println!(
                "{:<16} {:>12} {:>10} {:>10}",
                algo.label(),
                format!("master lost@r{rank}"),
                "—",
                "—"
            ),
        }
    }

    // Where do the inlet streamlines end up? Use the detailed runner to get
    // termination statistics (recirculation vs outflow).
    let mut c = cfg;
    c.algorithm = Algorithm::LoadOnDemand;
    let (report, finished) = streamline_repro::core::run_simulated_detailed(&dataset, &seeds, &c);
    assert!(report.outcome.completed());
    let mut by_reason = std::collections::BTreeMap::new();
    let mut total_arc = 0.0;
    for s in &finished {
        let reason = match s.status {
            streamline_repro::integrate::StreamlineStatus::Terminated(t) => t,
            _ => unreachable!("run completed"),
        };
        *by_reason.entry(format!("{reason:?}")).or_insert(0usize) += 1;
        total_arc += s.state.arc_length;
    }
    println!(
        "\n{} streamlines, mean arc length {:.3}",
        finished.len(),
        total_arc / finished.len() as f64
    );
    for (reason, count) in by_reason {
        println!("  {reason:<16} {count}");
    }
    let exited = finished
        .iter()
        .filter(|s| {
            s.status
                == streamline_repro::integrate::StreamlineStatus::Terminated(
                    Termination::ExitedDomain,
                )
        })
        .count();
    println!(
        "\n{:.1}% of inlet particles left the box within the integration budget; \
         the rest are still mixing (recirculation zones).",
        100.0 * exited as f64 / finished.len() as f64
    );
}
