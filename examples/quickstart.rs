//! Quickstart: build a dataset, classify the problem, ask the §6 advisor,
//! run the recommended algorithm on the simulated cluster, and inspect the
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use streamline_repro::core::{
    classify, recommend, run_simulated, Algorithm, FlowKnowledge, RunConfig,
};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};

fn main() {
    // A scaled-down thermal-hydraulics mixing box: 64 blocks of 12^3 cells.
    let dcfg = DatasetConfig {
        blocks_per_axis: [4, 4, 4],
        cells_per_block: [12, 12, 12],
        ghost: 1,
        seed: 7,
    };
    let dataset = Dataset::thermal_hydraulics(dcfg);
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 512);
    println!(
        "dataset: {} ({} blocks, {} cells); seeds: {} ({})",
        dataset.name,
        dataset.decomp.num_blocks(),
        dataset.decomp.total_cells(),
        seeds.len(),
        seeds.label,
    );

    // Classify along the §3.1 axes and consult the §6 heuristics.
    let mut cfg = RunConfig::new(Algorithm::HybridMasterSlave, 16);
    cfg.limits.max_steps = 2_000;
    let profile = classify(&dataset, &seeds, &cfg);
    println!(
        "profile: data {:.1} GB, fits in one rank's cache: {}, dense seeds: {}, \
         seeded block fraction {:.2}",
        profile.data_bytes / 1e9,
        profile.fits_in_memory,
        profile.seeds_dense,
        profile.seeded_block_fraction,
    );
    let rec = recommend(&profile, FlowKnowledge::Unknown);
    println!("advisor: {} — {}", rec.algorithm.label(), rec.rationale);

    // Run all three algorithms on 16 simulated ranks and compare.
    println!(
        "\n{:<16} {:>10} {:>10} {:>10} {:>8}",
        "algorithm", "wall (s)", "io (s)", "comm (s)", "E"
    );
    for algo in Algorithm::ALL {
        let mut c = cfg;
        c.algorithm = algo;
        let report = run_simulated(&dataset, &seeds, &c);
        assert_eq!(report.terminated as usize, seeds.len(), "no streamline may be lost");
        println!(
            "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>8.3}",
            algo.label(),
            report.wall,
            report.io_time,
            report.comm_time,
            report.block_efficiency(),
        );
    }
}
