//! Facade crate for the SC09 streamline-scaling reproduction.
//!
//! Re-exports the public API of every workspace crate so examples and
//! integration tests can `use streamline_repro::...` uniformly. See the
//! individual crates for the substance:
//!
//! * [`math`] — vectors, boxes, statistics, deterministic RNG,
//! * [`field`] — vector fields, block decomposition, datasets, seeds,
//! * [`integrate`] — ODE solvers and the block-local tracer,
//! * [`iosim`] — block stores, disk cost model, LRU cache,
//! * [`desim`] — the simulated cluster and the thread runtime,
//! * [`core`] — the three parallel streamline algorithms and the driver,
//! * [`ckpt`] — the crash-consistent checkpoint container format,
//! * [`serve`] — the concurrent streamline query service,
//! * [`pathline`] — the §8 pathline extension (space-time blocks, FTLE),
//! * [`output`] — VTK/OBJ/CSV writers and a PPM rasterizer for the curves.

pub use streamline_ckpt as ckpt;
pub use streamline_core as core;
pub use streamline_desim as desim;
pub use streamline_field as field;
pub use streamline_integrate as integrate;
pub use streamline_iosim as iosim;
pub use streamline_math as math;
pub use streamline_output as output;
pub use streamline_pathline as pathline;
pub use streamline_serve as serve;
