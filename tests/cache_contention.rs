//! Multi-thread contention tests for the service's shared block cache:
//! hammer one `SharedBlockCache` from many threads and verify that no
//! cache-stat update is lost and the resident set never exceeds capacity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use streamline_repro::field::block::{Block, BlockId};
use streamline_repro::iosim::MemoryStore;
use streamline_repro::math::{Aabb, Vec3};
use streamline_repro::serve::SharedBlockCache;

fn store(n: u32) -> MemoryStore {
    MemoryStore::from_blocks(
        (0..n)
            .map(|i| Block::zeroed(BlockId(i), Aabb::unit(), 0, [2, 2, 2], Vec3::splat(1.0)))
            .collect(),
    )
}

/// Every get is either a hit or a load: after any interleaving of
/// concurrent `get_or_load`s, `hits + loaded` must equal the exact number
/// of calls made, and `loaded - purged` must equal the resident count.
#[test]
fn concurrent_access_loses_no_stat_updates() {
    const THREADS: usize = 8;
    const GETS_PER_THREAD: usize = 5_000;
    const BLOCKS: u32 = 64;

    let cache = Arc::new(SharedBlockCache::new(16, 4));
    let st = Arc::new(store(BLOCKS));
    let observed_hits = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let st = Arc::clone(&st);
            let observed_hits = Arc::clone(&observed_hits);
            std::thread::spawn(move || {
                // Per-thread LCG over a skewed id distribution: half the
                // traffic on 8 hot blocks, half spread over all 64.
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(t as u64 + 1);
                for _ in 0..GETS_PER_THREAD {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let id = if x & 1 == 0 {
                        BlockId(((x >> 33) % 8) as u32)
                    } else {
                        BlockId(((x >> 33) % BLOCKS as u64) as u32)
                    };
                    let (block, hit) = cache.get_or_load(id, st.as_ref()).expect("valid id");
                    assert_eq!(block.id, id);
                    if hit {
                        observed_hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("cache worker");
    }

    let stats = cache.stats();
    let total_gets = (THREADS * GETS_PER_THREAD) as u64;
    assert_eq!(
        stats.hits + stats.loaded,
        total_gets,
        "lost stat updates: {} hits + {} loads != {} gets",
        stats.hits,
        stats.loaded,
        total_gets
    );
    assert_eq!(stats.hits, observed_hits.load(Ordering::Relaxed));
    assert_eq!(stats.loaded - stats.purged, cache.len() as u64);
    assert!(stats.purged > 0, "64 blocks through 16 slots must evict");
}

/// The resident set stays within capacity at every observation point, not
/// just at the end — sampled concurrently while other threads churn the
/// cache far past its capacity.
#[test]
fn resident_set_never_exceeds_capacity_under_churn() {
    const THREADS: usize = 6;
    const GETS_PER_THREAD: usize = 4_000;
    const BLOCKS: u32 = 96;

    let cache = Arc::new(SharedBlockCache::new(12, 3));
    let capacity = cache.capacity();
    let st = Arc::new(store(BLOCKS));

    let churners: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let st = Arc::clone(&st);
            std::thread::spawn(move || {
                let mut x = (t as u64 + 7).wrapping_mul(0xd1342543de82ef95);
                for _ in 0..GETS_PER_THREAD {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let id = BlockId(((x >> 33) % BLOCKS as u64) as u32);
                    cache.get_or_load(id, st.as_ref()).expect("valid id");
                    // Interleaved observation from the mutating threads
                    // themselves: the bound must hold mid-churn too.
                    assert!(cache.len() <= capacity);
                }
            })
        })
        .collect();

    // And an independent observer sampling while the churn runs.
    let observer = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            for _ in 0..2_000 {
                let resident = cache.resident();
                assert!(
                    resident.len() <= capacity,
                    "resident {} > capacity {capacity}",
                    resident.len()
                );
            }
        })
    };

    for h in churners {
        h.join().expect("churner");
    }
    observer.join().expect("observer");

    let stats = cache.stats();
    assert_eq!(stats.hits + stats.loaded, (THREADS * GETS_PER_THREAD) as u64);
    assert!(cache.len() <= capacity);
}
