//! The hot-path integration kernel (FSAL stepping + cell-cached sampling)
//! must be an *exact* optimization: over randomized datasets, seeds and
//! step-size sequences, a streamline advected through the fast path is
//! bit-identical to one advected through the reference path — plain
//! per-call `trilinear` sampling and a no-reuse DOPRI5 that recomputes all
//! seven stages every step.

use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::field::sampler::CellSampler;
use streamline_repro::field::BlockId;
use streamline_repro::integrate::tracer::{advect, StepLimits};
use streamline_repro::integrate::{Dopri5, Dopri5NoReuse, Streamline, StreamlineId};
use streamline_repro::math::{rng, Vec3};

use rand::Rng;

fn assert_bit_identical(fast: &Streamline, reference: &Streamline, label: &str) {
    assert_eq!(fast.status, reference.status, "{label}: status");
    assert_eq!(fast.state.steps, reference.state.steps, "{label}: step count");
    assert_eq!(
        fast.state.h.to_bits(),
        reference.state.h.to_bits(),
        "{label}: final adaptive step size"
    );
    assert_eq!(fast.geometry.len(), reference.geometry.len(), "{label}: vertex count");
    for (i, (a, b)) in fast.geometry.iter().zip(&reference.geometry).enumerate() {
        assert_eq!(
            [a.x.to_bits(), a.y.to_bits(), a.z.to_bits()],
            [b.x.to_bits(), b.y.to_bits(), b.z.to_bits()],
            "{label}: vertex {i} diverged ({a:?} vs {b:?})"
        );
    }
}

/// Advect one seed through one block on both paths and compare.
fn check_block(ds: &Dataset, block_id: BlockId, seed: Vec3, limits: &StepLimits, label: &str) {
    let block = ds.build_block(block_id);
    let bounds = block.bounds;
    let region = move |p: Vec3| bounds.contains(p);

    let mut reference = Streamline::new(StreamlineId(0), seed, limits.h0);
    let mut sample = |p: Vec3| block.sample(p);
    advect(&mut reference, &mut sample, &region, limits, &Dopri5NoReuse);

    let mut fast = Streamline::new(StreamlineId(0), seed, limits.h0);
    let mut sampler = CellSampler::new(&block);
    let mut sample = |p: Vec3| sampler.sample(p);
    advect(&mut fast, &mut sample, &region, limits, &Dopri5);

    assert_bit_identical(&fast, &reference, label);
    assert!(
        sampler.stats().hits > 0 || reference.state.steps == 0,
        "{label}: a multi-stage advection should hit the cached stencil"
    );
}

#[test]
fn fast_path_is_bit_identical_over_random_blocks_and_seeds() {
    let mut r = rng::stream(42, "kernel-bit-identity");
    for (w, make) in [
        ("astro", Dataset::astrophysics as fn(DatasetConfig) -> Dataset),
        ("fusion", Dataset::fusion),
        ("thermal", Dataset::thermal_hydraulics),
    ] {
        let ds = make(DatasetConfig::tiny());
        let n_blocks = ds.decomp.all_blocks().count();
        for trial in 0..12 {
            let block_id = BlockId(r.gen_range(0..n_blocks as u32));
            let bounds = ds.decomp.block_bounds(block_id);
            let seed = rng::point_in_aabb(&mut r, &bounds);
            // Randomized step-size regime: exercises acceptance, rejection
            // and the h_max clamp, all of which FSAL reuse must survive.
            let limits = StepLimits {
                h0: r.gen_range(1e-4..5e-2),
                h_max: r.gen_range(5e-2..0.5),
                max_steps: 500,
                ..Default::default()
            };
            check_block(&ds, block_id, seed, &limits, &format!("{w} trial {trial}"));
        }
    }
}

#[test]
fn fast_path_is_bit_identical_on_dataset_seed_points() {
    // The seeds real runs use (not just random interior points): these
    // start on block faces and in low-speed regions, the awkward cases.
    let ds = Dataset::astrophysics(DatasetConfig::tiny());
    let set = ds.seeds_with_count(Seeding::Sparse, 16);
    let limits = StepLimits { max_steps: 300, ..Default::default() };
    for (i, &seed) in set.points.iter().enumerate() {
        let Some(block_id) = ds.decomp.locate(seed) else { continue };
        check_block(&ds, block_id, seed, &limits, &format!("seed {i}"));
    }
}
