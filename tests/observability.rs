//! End-to-end checks of the observability layer: the metric registry must
//! agree bit-for-bit with the legacy report structs it absorbed, the
//! Prometheus text export must round-trip through its own parser, and
//! traced runs must emit schema-valid timelines whose totals reconcile
//! with the run report.

use streamline_core::{run_simulated_detailed, run_simulated_traced, Algorithm, RunConfig};
use streamline_field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_obs::{names, prom, MetricValue, TraceFile};

fn tiny_run_config() -> (Dataset, RunConfig) {
    let mut dcfg = DatasetConfig::tiny();
    dcfg.blocks_per_axis = [2, 2, 2];
    let dataset = Dataset::thermal_hydraulics(dcfg);
    let mut cfg = RunConfig::new(Algorithm::LoadOnDemand, 4);
    cfg.limits.max_steps = 200;
    cfg.cache_blocks = 4;
    (dataset, cfg)
}

#[test]
fn registry_counters_equal_report_fields_bit_for_bit() {
    let (dataset, cfg) = tiny_run_config();
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 24);
    let (report, _) = run_simulated_detailed(&dataset, &seeds, &cfg);
    let reg = report.to_registry();

    let counter = |name: &str| match reg.get(name) {
        Some(MetricValue::Counter(v)) => v,
        other => panic!("{name}: expected counter, got {other:?}"),
    };
    let gauge = |name: &str| match reg.get(name) {
        Some(MetricValue::Gauge(v)) => v,
        other => panic!("{name}: expected gauge, got {other:?}"),
    };
    assert_eq!(counter(names::RUN_EVENTS_TOTAL), report.events);
    assert_eq!(counter(names::RUN_MSGS_TOTAL), report.msgs);
    assert_eq!(counter(names::RUN_BYTES_SENT_TOTAL), report.bytes_sent);
    assert_eq!(counter(names::RUN_BLOCKS_LOADED_TOTAL), report.blocks_loaded);
    assert_eq!(counter(names::RUN_BLOCKS_PURGED_TOTAL), report.blocks_purged);
    assert_eq!(counter(names::RUN_STEPS_TOTAL), report.total_steps);
    assert_eq!(counter(names::RUN_STREAMLINES_TERMINATED_TOTAL), report.terminated);
    assert_eq!(counter(names::RUN_SAMPLER_HITS_TOTAL), report.sampler_hits);
    assert_eq!(counter(names::RUN_SAMPLER_MISSES_TOTAL), report.sampler_misses);
    // Gauges: to_bits comparison — the mirror must be bit-exact, not
    // merely close.
    assert_eq!(gauge(names::RUN_WALL_SECONDS).to_bits(), report.wall.to_bits());
    assert_eq!(gauge(names::RUN_IO_SECONDS).to_bits(), report.io_time.to_bits());
    assert_eq!(gauge(names::RUN_COMM_SECONDS).to_bits(), report.comm_time.to_bits());
    assert_eq!(gauge(names::RUN_COMPUTE_SECONDS).to_bits(), report.compute_time.to_bits());
    assert_eq!(gauge(names::RUN_IDLE_SECONDS).to_bits(), report.idle_time.to_bits());
    assert_eq!(gauge(names::RUN_BLOCK_EFFICIENCY).to_bits(), report.block_efficiency().to_bits());
    assert_eq!(gauge(names::RUN_LOAD_IMBALANCE).to_bits(), report.load_imbalance().to_bits());
}

#[test]
fn prometheus_text_roundtrips_exactly() {
    let (dataset, cfg) = tiny_run_config();
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 24);
    let (report, _) = run_simulated_detailed(&dataset, &seeds, &cfg);
    let reg = report.to_registry();
    let text = reg.render_prometheus();
    let parsed = prom::parse_text(&text).expect("the export must parse");

    // Stable names: every name the registry holds appears in the export.
    for (name, value) in reg.snapshot() {
        match value {
            MetricValue::Counter(v) => {
                assert_eq!(parsed[&name], v as f64, "{name} did not round-trip");
            }
            MetricValue::Gauge(v) => {
                // Rust's shortest-roundtrip float formatting means parsing
                // the text recovers the exact bits.
                assert_eq!(parsed[&name].to_bits(), v.to_bits(), "{name} lost bits in text");
            }
            MetricValue::Histogram { count, sum, .. } => {
                assert_eq!(parsed[&format!("{name}_count")], count as f64);
                assert_eq!(parsed[&format!("{name}_sum")], sum as f64);
            }
        }
    }
    assert_eq!(parsed[names::RUN_STEPS_TOTAL], report.total_steps as f64);
}

#[test]
fn traced_run_reconciles_with_untraced_report() {
    let (dataset, cfg) = tiny_run_config();
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 24);
    let (plain, plain_lines) = run_simulated_detailed(&dataset, &seeds, &cfg);
    let (traced, traced_lines, timeline, _pingpong) =
        run_simulated_traced(&dataset, &seeds, &cfg, 0.05);

    // Tracing must not perturb the virtual run at all.
    assert_eq!(plain.wall.to_bits(), traced.wall.to_bits());
    assert_eq!(plain.events, traced.events);
    assert_eq!(plain_lines.len(), traced_lines.len());

    let tf: TraceFile = timeline.to_trace("virtual");
    tf.validate().expect("emitted trace is schema-valid");
    assert_eq!(tf.schema, streamline_obs::TRACE_SCHEMA);
    assert_eq!(tf.clock, "virtual");
    assert_eq!(tf.n_ranks, 4);
    // Timeline phase totals are the same charges the report aggregates.
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(rel(tf.totals.compute, traced.compute_time) < 1e-6, "compute area diverged");
    assert!(rel(tf.totals.io, traced.io_time) < 1e-6, "io area diverged");
    assert!(rel(tf.totals.comm, traced.comm_time) < 1e-6, "comm area diverged");

    // And the whole file survives a JSON round-trip.
    let json = serde_json::to_string(&tf).expect("serializes");
    let back: TraceFile = serde_json::from_str(&json).expect("deserializes");
    back.validate().expect("still valid after round-trip");
    assert_eq!(back.totals.compute.to_bits(), tf.totals.compute.to_bits());
}

#[test]
fn serve_dump_metrics_reconciles_with_service_metrics() {
    use std::sync::Arc;
    use streamline_iosim::MemoryStore;
    use streamline_serve::{Request, Service, ServiceConfig};

    let mut dcfg = DatasetConfig::tiny();
    dcfg.blocks_per_axis = [2, 2, 2];
    let dataset = Dataset::thermal_hydraulics(dcfg);
    let store = Arc::new(MemoryStore::build(&dataset));
    let svc = Service::start(dataset.decomp, store, ServiceConfig::default());
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 12);
    let limits = streamline_integrate::StepLimits { max_steps: 200, ..Default::default() };
    svc.submit(Request::new(seeds.points.clone()).with_limits(limits))
        .unwrap()
        .wait()
        .expect("service answers");

    let text = svc.dump_metrics();
    let parsed = prom::parse_text(&text).expect("scrape payload parses");
    let m = svc.metrics();
    assert_eq!(parsed[names::SERVE_SUBMITTED_TOTAL], m.submitted as f64);
    assert_eq!(parsed[names::SERVE_COMPLETED_TOTAL], m.completed as f64);
    assert_eq!(parsed[names::SERVE_STREAMLINES_COMPLETED_TOTAL], m.streamlines_completed as f64);
    assert_eq!(parsed[names::SERVE_STEPS_TOTAL], m.total_steps as f64);
    assert_eq!(parsed[names::SERVE_SAMPLER_HITS_TOTAL], m.sampler_hits as f64);
    assert_eq!(parsed[names::SERVE_CACHE_LOADED_TOTAL], m.cache.loaded as f64);
    assert_eq!(parsed[names::SERVE_CACHE_HITS_TOTAL], m.cache.hits as f64);
    assert_eq!(parsed[names::SERVE_QUEUE_CAPACITY], m.queue_capacity as f64);
    assert_eq!(parsed[names::SERVE_BLOCK_EFFICIENCY].to_bits(), m.block_efficiency.to_bits());
    assert_eq!(parsed[&format!("{}_count", names::SERVE_LATENCY_NANOSECONDS)], m.completed as f64);
    svc.shutdown();
}
