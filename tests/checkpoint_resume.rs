//! Checkpoint/restart exercised end-to-end through the facade crate: a run
//! of each algorithm is killed mid-flight, resumed from its latest snapshot,
//! and must reproduce the uninterrupted run's streamlines and report byte
//! for byte. Property tests cover the container itself: snapshots of
//! arbitrary mid-run states re-serialize byte-identically, and corrupted
//! files are rejected with typed errors, never a panic.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use streamline_repro::ckpt::{CkptError, CkptFile, CkptWriter};
use streamline_repro::core::{
    latest_checkpoint, resume_simulated_detailed_with_store, run_simulated_checkpointed_with_store,
    run_simulated_detailed_with_store, Algorithm, CheckpointOptions, MemoryBudget, RunConfig,
};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::field::seeds::SeedSet;
use streamline_repro::field::BlockId;
use streamline_repro::iosim::{BlockStore, FaultPlan, FaultStore, FieldStore};

fn fixture(algorithm: Algorithm) -> (Dataset, SeedSet, RunConfig) {
    let mut dcfg = DatasetConfig::tiny();
    dcfg.blocks_per_axis = [2, 2, 2];
    dcfg.cells_per_block = [6, 6, 6];
    let ds = Dataset::thermal_hydraulics(dcfg);
    let seeds = ds.seeds_with_count(Seeding::Sparse, 27);
    let mut cfg = RunConfig::new(algorithm, 4);
    cfg.limits.max_steps = 300;
    cfg.memory = MemoryBudget::unlimited();
    (ds, seeds, cfg)
}

fn store(ds: &Dataset) -> Arc<dyn BlockStore> {
    Arc::new(FieldStore::new(ds.clone()))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slckpt-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The crash/resume invariant, via the facade: for every algorithm, a run
/// killed after its first snapshot and resumed from the latest checkpoint
/// finishes with byte-equal streamlines and a byte-equal report.
#[test]
fn killed_runs_resume_bit_identically_via_the_facade() {
    for algorithm in Algorithm::ALL {
        let (ds, seeds, cfg) = fixture(algorithm);
        let (ref_report, ref_lines) =
            run_simulated_detailed_with_store(&ds, &seeds, &cfg, store(&ds));

        let dir = tempdir(&format!("facade-{}", algorithm.label()));
        let opts =
            CheckpointOptions { kill_after: Some(2), ..CheckpointOptions::new(&dir, 2.0e-4) };
        let out = run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, store(&ds), &opts)
            .expect("checkpointed run");
        assert!(out.result.is_none(), "{algorithm:?}: kill_after must abandon the run");

        let latest = latest_checkpoint(&dir).unwrap().expect("snapshots on disk");
        let (res_report, res_lines) =
            resume_simulated_detailed_with_store(&ds, &seeds, &cfg, store(&ds), &latest)
                .expect("resume");
        assert_eq!(res_lines, ref_lines, "{algorithm:?}: streamlines diverged");
        assert_eq!(
            serde_json::to_string(&res_report).unwrap(),
            serde_json::to_string(&ref_report).unwrap(),
            "{algorithm:?}: report not reconciled"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The chaos variant: a fault-injecting store (transient load failures on a
/// seeded plan) must not break the invariant — the fault schedule position
/// is part of the snapshot.
#[test]
fn killed_runs_resume_bit_identically_under_chaos_faults() {
    let (ds, seeds, mut cfg) = fixture(Algorithm::HybridMasterSlave);
    cfg.cache_blocks = 2;
    let faulty = |ds: &Dataset| -> Arc<dyn BlockStore> {
        Arc::new(FaultStore::new(
            store(ds),
            FaultPlan::new().transient(BlockId(2), 2).transient(BlockId(6), 1),
        ))
    };
    let (ref_report, ref_lines) = run_simulated_detailed_with_store(&ds, &seeds, &cfg, faulty(&ds));
    assert!(ref_report.load_retries > 0, "fixture must actually exercise retries");

    let dir = tempdir("facade-chaos");
    let opts = CheckpointOptions { kill_after: Some(1), ..CheckpointOptions::new(&dir, 2.0e-4) };
    run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, faulty(&ds), &opts)
        .expect("checkpointed run");
    let latest = latest_checkpoint(&dir).unwrap().expect("snapshot on disk");
    let (res_report, res_lines) =
        resume_simulated_detailed_with_store(&ds, &seeds, &cfg, faulty(&ds), &latest)
            .expect("resume over fault store");
    assert_eq!(res_lines, ref_lines);
    assert_eq!(
        serde_json::to_string(&res_report).unwrap(),
        serde_json::to_string(&ref_report).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One real mid-run snapshot, shared by the corruption properties below so
/// each proptest case doesn't pay for a fresh simulation.
fn snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (ds, seeds, cfg) = fixture(Algorithm::HybridMasterSlave);
        let dir = tempdir("prop-src");
        let opts =
            CheckpointOptions { kill_after: Some(2), ..CheckpointOptions::new(&dir, 2.0e-4) };
        let out = run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, store(&ds), &opts)
            .expect("checkpointed run");
        let bytes = std::fs::read(out.checkpoints.last().expect("snapshots written")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    })
}

/// A deterministic corrupt-CRC case with a precise verdict: flipping one
/// payload byte must surface as `CrcMismatch` from the resume path.
#[test]
fn a_flipped_payload_byte_is_a_crc_mismatch_not_a_panic() {
    let (ds, seeds, cfg) = fixture(Algorithm::HybridMasterSlave);
    let mut bad = snapshot_bytes().to_vec();
    let last = bad.len() - 1; // final payload byte of the last section
    bad[last] ^= 0xFF;
    let dir = tempdir("crc");
    let path = dir.join("ckpt-000001.ckpt");
    std::fs::write(&path, &bad).unwrap();
    let err = resume_simulated_detailed_with_store(&ds, &seeds, &cfg, store(&ds), &path)
        .expect_err("corrupt snapshot must be rejected");
    assert!(matches!(err, CkptError::CrcMismatch { .. }), "{err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Snapshots of arbitrary mid-run states (any algorithm, any kill
    /// point, any seed count) parse and re-serialize byte-identically.
    #[test]
    fn snapshots_of_arbitrary_midrun_states_reserialize_byte_identically(
        algo_ix in 0usize..3,
        kill in 1u64..=3,
        n_seeds in 8usize..=27,
    ) {
        let algorithm = Algorithm::ALL[algo_ix];
        let (ds, _, cfg) = fixture(algorithm);
        let seeds = ds.seeds_with_count(Seeding::Sparse, n_seeds);
        let dir = tempdir(&format!("prop-rt-{algo_ix}-{kill}-{n_seeds}"));
        let opts = CheckpointOptions {
            kill_after: Some(kill),
            ..CheckpointOptions::new(&dir, 2.0e-4)
        };
        let out = run_simulated_checkpointed_with_store(&ds, &seeds, &cfg, store(&ds), &opts)
            .expect("checkpointed run");
        prop_assert!(!out.checkpoints.is_empty());
        for path in &out.checkpoints {
            let bytes = std::fs::read(path).unwrap();
            let parsed = CkptFile::parse(&bytes).expect("snapshot parses");
            let tags: Vec<String> = parsed.tags().map(str::to_owned).collect();
            let mut w = CkptWriter::new();
            for tag in &tags {
                w.section(tag, parsed.section(tag).expect("tag just listed"));
            }
            prop_assert_eq!(w.finish(), bytes, "re-serialization of {:?} differs", path);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single byte of a snapshot is never a panic: parsing (and
    /// header decoding) either fails with a typed error or yields a file
    /// whose sections no longer include the original payloads.
    #[test]
    fn any_single_byte_flip_is_rejected_or_detected_never_a_panic(
        pos in 0usize..1_048_576,
        flip in 1u8..=255,
    ) {
        let good = snapshot_bytes();
        let i = pos % good.len();
        let mut bad = good.to_vec();
        bad[i] ^= flip;
        match CkptFile::parse(&bad) {
            // A flip in a tag or length field can still frame-parse; the
            // META decode must then be a typed error or an unchanged META
            // section — either way, no panic and no silent payload change.
            Ok(file) => { let _ = file.meta(); }
            Err(e) => {
                prop_assert!(
                    matches!(
                        e,
                        CkptError::BadMagic
                            | CkptError::Truncated { .. }
                            | CkptError::BadTag { .. }
                            | CkptError::CrcMismatch { .. }
                    ),
                    "unexpected error class: {:?}", e
                );
            }
        }
    }

    /// Truncating a snapshot anywhere is never a panic: either a typed
    /// error, or — when the cut lands exactly on a section boundary — a
    /// clean parse that visibly lost sections.
    #[test]
    fn any_truncation_is_a_typed_error_or_visibly_lossy(pos in 0usize..1_048_576) {
        let good = snapshot_bytes();
        let n_sections = CkptFile::parse(good).unwrap().tags().count();
        let keep = pos % good.len(); // 0..len-1: always a strict prefix
        match CkptFile::parse(&good[..keep]) {
            Ok(file) => prop_assert!(
                file.tags().count() < n_sections,
                "a strict prefix must lose at least one section"
            ),
            Err(e) => prop_assert!(
                matches!(e, CkptError::BadMagic | CkptError::Truncated { .. }),
                "unexpected error class: {:?}", e
            ),
        }
    }
}
