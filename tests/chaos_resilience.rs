//! Acceptance: all four scheduling drivers (the paper's three plus the
//! decentralized work-stealing driver) degrade gracefully under injected
//! block faults. A transient-only plan must be invisible in the results
//! (retries absorb it); permanent faults must terminate the affected
//! streamlines with a typed `BlockUnavailable` while every untouched
//! streamline stays bit-identical to the fault-free run.

use std::sync::Arc;
use streamline_repro::core::{
    run_simulated_detailed_with_store, Algorithm, MemoryBudget, RunConfig,
};
use streamline_repro::field::block::BlockId;
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::integrate::{Streamline, StreamlineStatus, Termination};
use streamline_repro::iosim::{BlockStore, FaultPlan, FaultStore, MemoryStore};

fn dataset() -> Dataset {
    Dataset::thermal_hydraulics(DatasetConfig::tiny())
}

fn cfg(algo: Algorithm) -> RunConfig {
    let mut cfg = RunConfig::new(algo, 4);
    cfg.limits.max_steps = 300;
    cfg.memory = MemoryBudget::unlimited();
    cfg
}

fn assert_same_streamline(got: &Streamline, want: &Streamline, ctx: &str) {
    assert_eq!(got.id, want.id, "{ctx}: id");
    assert_eq!(got.status, want.status, "{ctx}: status of {:?}", got.id);
    assert_eq!(got.state.position, want.state.position, "{ctx}: position of {:?}", got.id);
    assert_eq!(got.geometry, want.geometry, "{ctx}: geometry of {:?}", got.id);
}

fn unavailable(sl: &Streamline) -> bool {
    sl.status == StreamlineStatus::Terminated(Termination::BlockUnavailable)
}

/// Transient faults that clear inside the workspace retry budget (3
/// attempts) change nothing observable: same terminations, same steps,
/// bit-identical curves — only the retry counters show the turbulence.
#[test]
fn transient_faults_are_invisible_to_every_driver() {
    let ds = dataset();
    let seeds = ds.seeds_with_count(Seeding::Sparse, 48);
    let n_blocks = ds.decomp.num_blocks();
    let mut plan = FaultPlan::new();
    for i in (0..n_blocks).step_by(2) {
        plan = plan.transient(BlockId(i as u32), 1 + (i as u32 % 2));
    }
    for algo in Algorithm::ALL {
        let cfg = cfg(algo);
        let clean_store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&ds));
        let (clean, clean_sl) = run_simulated_detailed_with_store(&ds, &seeds, &cfg, clean_store);
        let fs = Arc::new(FaultStore::new(Arc::new(MemoryStore::build(&ds)), plan.clone()));
        let store: Arc<dyn BlockStore> = Arc::clone(&fs) as Arc<dyn BlockStore>;
        let (faulted, faulted_sl) = run_simulated_detailed_with_store(&ds, &seeds, &cfg, store);

        assert_eq!(faulted.terminated, clean.terminated, "{algo:?}");
        assert_eq!(faulted.total_steps, clean.total_steps, "{algo:?}");
        assert_eq!(faulted.load_failures, 0, "{algo:?}: transient faults must clear");
        assert_eq!(faulted.unavailable_terminations, 0, "{algo:?}");
        assert!(faulted.load_retries > 0, "{algo:?}: the plan was never exercised");
        assert!(fs.counters().io_injected > 0, "{algo:?}");

        assert_eq!(faulted_sl.len(), clean_sl.len(), "{algo:?}");
        for (got, want) in faulted_sl.iter().zip(&clean_sl) {
            assert_same_streamline(got, want, &format!("{algo:?} transient"));
        }
    }
}

/// Permanent faults quarantine blocks; every streamline that needs one
/// terminates `BlockUnavailable` (or is pruned from the hybrid master's
/// pool), every other streamline is bit-identical to the clean run, and
/// all three drivers agree on how many streamlines the plan cost.
#[test]
fn permanent_faults_yield_typed_terminations_in_every_driver() {
    let ds = dataset();
    let seeds = ds.seeds_with_count(Seeding::Sparse, 48);
    let n_seeds = seeds.len() as u64;
    let n_blocks = ds.decomp.num_blocks() as u32;
    let plan = FaultPlan::new().permanent(BlockId(0)).corrupt(BlockId(n_blocks / 2));

    let mut costs = Vec::new();
    for algo in Algorithm::ALL {
        let cfg = cfg(algo);
        let clean_store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&ds));
        let (_, clean_sl) = run_simulated_detailed_with_store(&ds, &seeds, &cfg, clean_store);
        let fs = Arc::new(FaultStore::new(Arc::new(MemoryStore::build(&ds)), plan.clone()));
        let store: Arc<dyn BlockStore> = Arc::clone(&fs) as Arc<dyn BlockStore>;
        let (report, faulted_sl) = run_simulated_detailed_with_store(&ds, &seeds, &cfg, store);

        // The plan actually bit, and the store refused retries exactly.
        assert!(report.unavailable_terminations > 0, "{algo:?}: plan never bit");
        assert!(report.load_failures > 0, "{algo:?}");
        assert!(fs.counters().faults_injected() > 0, "{algo:?}");

        // Every seed is accounted for: finished on a workspace, or pruned
        // from the hybrid master's pool before assignment.
        let finished_unavailable = faulted_sl.iter().filter(|s| unavailable(s)).count() as u64;
        let master_pruned = report.unavailable_terminations - finished_unavailable;
        assert_eq!(faulted_sl.len() as u64, report.terminated, "{algo:?}");
        assert_eq!(report.terminated + master_pruned, n_seeds, "{algo:?}: lost seeds");
        // The masterless driver has no pool to prune from: every toll the
        // plan takes lands on a finished streamline on some rank.
        if algo == Algorithm::WorkStealing {
            assert_eq!(master_pruned, 0, "steal driver pruned from a master it does not have");
        }

        // Untouched streamlines are bit-identical to the fault-free run.
        let mut compared = 0;
        for got in faulted_sl.iter().filter(|s| !unavailable(s)) {
            let want = clean_sl
                .iter()
                .find(|s| s.id == got.id)
                .unwrap_or_else(|| panic!("{algo:?}: {:?} not in clean run", got.id));
            assert_same_streamline(got, want, &format!("{algo:?} permanent"));
            compared += 1;
        }
        assert!(compared > 0, "{algo:?}: every streamline was lost");
        costs.push((algo, report.unavailable_terminations));
    }

    // The plan costs the same streamlines no matter which driver runs it:
    // a trajectory either needs a quarantined block or it does not.
    let (_, first) = costs[0];
    for &(algo, cost) in &costs[1..] {
        assert_eq!(cost, first, "{algo:?} disagrees with {:?} on the toll", costs[0].0);
    }
}
