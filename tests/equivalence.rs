//! Cross-algorithm result equivalence.
//!
//! All four parallelization strategies — the paper's three plus the
//! decentralized work-stealing driver — advance streamlines block-by-block
//! with the same tracer, so for a given problem every algorithm must produce
//! *bit-identical* final solver states for every streamline — parallelization
//! strategy may change scheduling, I/O and communication, never the science.

use streamline_repro::core::{run_simulated_detailed, Algorithm, MemoryBudget, RunConfig};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::integrate::Streamline;

fn run(algo: Algorithm, n_procs: usize, dataset: &Dataset, n_seeds: usize) -> Vec<Streamline> {
    let seeds = dataset.seeds_with_count(Seeding::Sparse, n_seeds);
    let mut cfg = RunConfig::new(algo, n_procs);
    cfg.limits.max_steps = 400;
    cfg.memory = MemoryBudget::unlimited();
    let (report, finished) = run_simulated_detailed(dataset, &seeds, &cfg);
    assert!(report.outcome.completed(), "{algo:?} failed: {}", report.summary());
    assert_eq!(finished.len(), n_seeds, "{algo:?} lost streamlines");
    finished
}

fn assert_same_states(a: &[Streamline], b: &[Streamline], label: &str) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.id, y.id, "{label}: id order");
        assert_eq!(x.status, y.status, "{label}: status of {:?}", x.id);
        assert_eq!(x.state.steps, y.state.steps, "{label}: steps of {:?}", x.id);
        assert_eq!(x.state.position, y.state.position, "{label}: final position of {:?}", x.id);
        assert_eq!(x.state.arc_length, y.state.arc_length, "{label}: arc length of {:?}", x.id);
    }
}

#[test]
fn all_algorithms_agree_on_thermal() {
    let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
    let reference = run(Algorithm::LoadOnDemand, 4, &ds, 60);
    let static_run = run(Algorithm::StaticAllocation, 4, &ds, 60);
    let hybrid_run = run(Algorithm::HybridMasterSlave, 4, &ds, 60);
    let steal_run = run(Algorithm::WorkStealing, 4, &ds, 60);
    assert_same_states(&reference, &static_run, "LOD vs static");
    assert_same_states(&reference, &hybrid_run, "LOD vs hybrid");
    assert_same_states(&reference, &steal_run, "LOD vs steal");
}

#[test]
fn all_algorithms_agree_on_fusion() {
    let ds = Dataset::fusion(DatasetConfig::tiny());
    let reference = run(Algorithm::LoadOnDemand, 3, &ds, 40);
    let static_run = run(Algorithm::StaticAllocation, 3, &ds, 40);
    let hybrid_run = run(Algorithm::HybridMasterSlave, 3, &ds, 40);
    let steal_run = run(Algorithm::WorkStealing, 3, &ds, 40);
    assert_same_states(&reference, &static_run, "LOD vs static");
    assert_same_states(&reference, &hybrid_run, "LOD vs hybrid");
    assert_same_states(&reference, &steal_run, "LOD vs steal");
}

#[test]
fn all_algorithms_agree_on_astrophysics() {
    let ds = Dataset::astrophysics(DatasetConfig::tiny());
    let reference = run(Algorithm::LoadOnDemand, 4, &ds, 40);
    let static_run = run(Algorithm::StaticAllocation, 4, &ds, 40);
    let hybrid_run = run(Algorithm::HybridMasterSlave, 4, &ds, 40);
    let steal_run = run(Algorithm::WorkStealing, 4, &ds, 40);
    assert_same_states(&reference, &static_run, "LOD vs static");
    assert_same_states(&reference, &hybrid_run, "LOD vs hybrid");
    assert_same_states(&reference, &steal_run, "LOD vs steal");
}

#[test]
fn results_independent_of_processor_count() {
    // Scheduling differs wildly between 2 and 8 ranks; physics must not.
    let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
    for algo in Algorithm::ALL {
        let a = run(algo, 2, &ds, 48);
        let b = run(algo, 8, &ds, 48);
        assert_same_states(&a, &b, &format!("{algo:?} 2 vs 8 ranks"));
    }
}

#[test]
fn dense_seeding_also_agrees() {
    let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
    let seeds = ds.seeds_with_count(Seeding::Dense, 64);
    let mut results = Vec::new();
    for algo in Algorithm::ALL {
        let mut cfg = RunConfig::new(algo, 4);
        cfg.limits.max_steps = 300;
        cfg.limits.max_arc_length = 1.0;
        cfg.memory = MemoryBudget::unlimited();
        let (report, finished) = run_simulated_detailed(&ds, &seeds, &cfg);
        assert!(report.outcome.completed());
        results.push(finished);
    }
    assert_same_states(&results[0], &results[1], "static vs LOD dense");
    assert_same_states(&results[0], &results[2], "static vs hybrid dense");
    assert_same_states(&results[0], &results[3], "static vs steal dense");
}
