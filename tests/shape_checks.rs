//! Quick-scale checks that the qualitative shapes of the paper's evaluation
//! hold — the per-figure contracts the full harness reproduces at scale.

use streamline_bench::experiments::{run_sweep, SweepScale, Workload};
use streamline_core::{Algorithm, RunReport};
use streamline_field::dataset::Seeding;

fn pick(results: &[streamline_bench::CaseResult], algo: Algorithm, procs: usize) -> &RunReport {
    &results
        .iter()
        .find(|r| r.report.algorithm == algo && r.report.n_procs == procs)
        .expect("cell present")
        .report
}

#[test]
fn static_has_ideal_io_and_efficiency() {
    // Figures 6/7: Static loads each touched block once and never purges.
    let results = run_sweep(Workload::Astro, Seeding::Sparse, SweepScale::Quick, &[8], Some(200));
    let st = pick(&results, Algorithm::StaticAllocation, 8);
    assert_eq!(st.blocks_purged, 0);
    assert_eq!(st.block_efficiency(), 1.0);
    // And it never loads more blocks than exist.
    assert!(st.blocks_loaded <= 64);
}

#[test]
fn lod_never_communicates_but_rereads() {
    // Figure 6/8: Load On Demand has zero communication and strictly more
    // I/O than Static (blocks are read redundantly across ranks).
    let results = run_sweep(Workload::Astro, Seeding::Sparse, SweepScale::Quick, &[8], Some(200));
    let st = pick(&results, Algorithm::StaticAllocation, 8);
    let lod = pick(&results, Algorithm::LoadOnDemand, 8);
    assert_eq!(lod.msgs, 0);
    assert_eq!(lod.comm_time, 0.0);
    assert!(
        lod.io_time > st.io_time,
        "LOD io {} must exceed static io {}",
        lod.io_time,
        st.io_time
    );
    assert!(lod.blocks_loaded > st.blocks_loaded);
}

#[test]
fn static_communication_grows_with_dense_seeding() {
    // Figure 8's dense-vs-sparse separation: with concentrated seeds,
    // Static must push many more streamlines to block owners.
    let sparse = run_sweep(Workload::Fusion, Seeding::Sparse, SweepScale::Quick, &[8], Some(300));
    let dense = run_sweep(Workload::Fusion, Seeding::Dense, SweepScale::Quick, &[8], Some(300));
    let s = pick(&sparse, Algorithm::StaticAllocation, 8);
    let d = pick(&dense, Algorithm::StaticAllocation, 8);
    // Same streamline count, so per-streamline hand-off traffic comparison
    // is fair; dense runs at least as much communication.
    assert!(
        d.bytes_sent as f64 >= 0.8 * s.bytes_sent as f64,
        "dense comm bytes {} vs sparse {}",
        d.bytes_sent,
        s.bytes_sent
    );
}

#[test]
fn hybrid_completes_and_balances_every_workload() {
    for w in Workload::ALL {
        for seeding in [Seeding::Sparse, Seeding::Dense] {
            let results = run_sweep(w, seeding, SweepScale::Quick, &[8], Some(120));
            let h = pick(&results, Algorithm::HybridMasterSlave, 8);
            assert!(h.outcome.completed(), "{w:?}/{seeding:?}: {}", h.summary());
            assert_eq!(h.terminated, 120);
            // The hybrid must communicate (it is a coordinated algorithm)
            // and must do I/O through its slaves.
            assert!(h.msgs > 0);
            assert!(h.io_time > 0.0);
        }
    }
}

#[test]
fn every_completed_run_conserves_streamlines() {
    for w in Workload::ALL {
        let results = run_sweep(w, Seeding::Sparse, SweepScale::Quick, &[4, 8], Some(100));
        for r in &results {
            if r.report.outcome.completed() {
                assert_eq!(r.report.terminated, 100, "{}", r.report.summary());
            }
        }
    }
}

#[test]
fn wall_clock_improves_or_holds_with_more_processors() {
    // Coarse scalability sanity for the adaptive algorithm (Figure 5's
    // downward hybrid slope): 4 → 16 ranks must not slow down much.
    let results =
        run_sweep(Workload::Astro, Seeding::Sparse, SweepScale::Quick, &[4, 16], Some(400));
    let small = pick(&results, Algorithm::HybridMasterSlave, 4);
    let big = pick(&results, Algorithm::HybridMasterSlave, 16);
    assert!(
        big.wall < small.wall * 1.2,
        "hybrid wall at 16 ranks ({}) should not regress vs 4 ranks ({})",
        big.wall,
        small.wall
    );
}
