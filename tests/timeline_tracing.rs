//! Integration test for DES utilization tracing: traced runs must agree
//! with untraced runs, and the timeline must account for the busy time the
//! metrics report.

use std::sync::Arc;
use streamline_bench::experiments::{case_config, dataset_for, SweepScale, Workload};
use streamline_core::{build_procs, Algorithm};
use streamline_desim::Simulation;
use streamline_field::dataset::Seeding;
use streamline_iosim::{BlockStore, MemoryStore};

#[test]
fn tracing_does_not_change_the_run() {
    let dataset = dataset_for(Workload::Thermal, SweepScale::Quick);
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 64);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    for algo in Algorithm::ALL {
        let cfg = case_config(Workload::Thermal, Seeding::Sparse, algo, 6);
        let plain =
            Simulation::new(cfg.cost.net, build_procs(&dataset, &seeds, &cfg, Arc::clone(&store)))
                .run()
                .0;
        let (traced, _, timeline) =
            Simulation::new(cfg.cost.net, build_procs(&dataset, &seeds, &cfg, Arc::clone(&store)))
                .run_traced(0.01);
        assert_eq!(plain.wall, traced.wall, "{algo:?}");
        assert_eq!(plain.events, traced.events, "{algo:?}");

        // Timeline busy area equals the metrics' busy totals.
        let metric_busy: f64 = traced.ranks.iter().map(|m| m.busy()).sum();
        let timeline_busy: f64 = (0..timeline.n_ranks)
            .map(|r| {
                (0..timeline.n_buckets())
                    .map(|b| timeline.utilization(r, b) * timeline.bucket_width)
                    .sum::<f64>()
            })
            .sum();
        assert!(
            (metric_busy - timeline_busy).abs() < 1e-6 * metric_busy.max(1.0),
            "{algo:?}: metrics busy {metric_busy} vs timeline busy {timeline_busy}"
        );
        // Nothing is more than 100% busy (within fp tolerance).
        for r in 0..timeline.n_ranks {
            for b in 0..timeline.n_buckets() {
                assert!(timeline.utilization(r, b) <= 1.0 + 1e-9);
            }
        }
    }
}

#[test]
fn idle_fraction_matches_imbalance_story() {
    // A single-rank run has zero structural idle in its own timeline.
    let dataset = dataset_for(Workload::Thermal, SweepScale::Quick);
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 32);
    let cfg = case_config(Workload::Thermal, Seeding::Sparse, Algorithm::LoadOnDemand, 1);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let (_, _, timeline) =
        Simulation::new(cfg.cost.net, build_procs(&dataset, &seeds, &cfg, store)).run_traced(0.01);
    // One rank working continuously: idle fraction only from the trailing
    // partial bucket.
    assert!(timeline.idle_fraction() < 0.2, "{}", timeline.idle_fraction());
}
