//! End-to-end checks of the `streamline-serve` query service against the
//! single-shot driver: identical trajectories, typed overload rejection,
//! graceful drain.

use std::sync::Arc;
use std::time::Instant;
use streamline_repro::core::{run_simulated_detailed, Algorithm, MemoryBudget, RunConfig};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::integrate::StepLimits;
use streamline_repro::iosim::MemoryStore;
use streamline_repro::math::Vec3;
use streamline_repro::serve::{Outcome, Request, Service, ServiceConfig, SubmitError};

fn astro() -> Dataset {
    let cfg = DatasetConfig {
        blocks_per_axis: [4, 4, 4],
        cells_per_block: [8, 8, 8],
        ghost: 1,
        seed: 42,
    };
    Dataset::astrophysics(cfg)
}

fn limits() -> StepLimits {
    StepLimits { max_steps: 400, h0: 1e-3, h_max: 0.02, ..StepLimits::default() }
}

/// The tentpole guarantee: a streamline computed by the service is
/// *bit-identical* to the same seed integrated by the single-shot
/// Load-On-Demand driver — same positions, same step counts, same
/// termination, down to the last ulp. Both paths advance through
/// `streamline_core::advance::advance_in_block`, so any divergence is a
/// regression in one of them.
#[test]
fn served_streamlines_match_single_shot_driver_bitwise() {
    let ds = astro();
    let seeds = ds.seeds_with_count(Seeding::Sparse, 48);

    let mut cfg = RunConfig::new(Algorithm::LoadOnDemand, 1);
    cfg.limits = limits();
    cfg.memory = MemoryBudget::unlimited();
    let (report, reference) = run_simulated_detailed(&ds, &seeds, &cfg);
    assert!(report.outcome.completed());
    assert_eq!(reference.len(), 48);

    let store = Arc::new(MemoryStore::build(&ds));
    let svc = Service::start(
        ds.decomp,
        store,
        ServiceConfig { workers: 4, cache_blocks: 16, ..ServiceConfig::default() },
    );
    let resp = svc
        .submit(Request::new(seeds.points.clone()).with_limits(limits()))
        .expect("admitted")
        .wait()
        .expect("service answers");
    assert_eq!(resp.outcome, Outcome::Completed);
    assert_eq!(resp.streamlines.len(), reference.len());

    for (served, want) in resp.streamlines.iter().zip(reference.iter()) {
        assert_eq!(served.id, want.id);
        // Full struct equality: solver state (position/time/h/steps/arc
        // length, all f64-exact), status, geometry.
        assert_eq!(served, want, "streamline {:?} diverged from the driver", want.id);
    }
    svc.shutdown();
}

/// Requests larger than the admission queue are refused outright with the
/// typed error, and the refusal carries the numbers a client needs to size
/// its backoff.
#[test]
fn oversized_request_is_rejected_with_overloaded() {
    let ds = astro();
    let seeds = ds.seeds_with_count(Seeding::Dense, 33);
    let svc = Service::start(
        ds.decomp,
        Arc::new(MemoryStore::build(&ds)),
        ServiceConfig { queue_capacity: 32, ..ServiceConfig::default() },
    );
    match svc.submit(Request::new(seeds.points.clone())) {
        Err(SubmitError::Overloaded { queue_depth, capacity, requested }) => {
            assert_eq!((queue_depth, capacity, requested), (0, 32, 33));
        }
        Ok(_) => panic!("a 33-seed request cannot fit a 32-seed queue"),
        Err(other) => panic!("expected Overloaded, got {other:?}"),
    }
    let m = svc.shutdown();
    assert_eq!(m.rejected, 1);
    assert_eq!(m.submitted, 0);
}

/// A block store whose loads wait for the test to open a gate — pinning
/// the service's backlog in place so overload behaviour is deterministic.
struct GatedStore {
    inner: MemoryStore,
    gate: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl GatedStore {
    fn new(inner: MemoryStore) -> Self {
        GatedStore { inner, gate: std::sync::Mutex::new(false), cv: std::sync::Condvar::new() }
    }

    fn open(&self) {
        *self.gate.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl streamline_repro::iosim::BlockStore for GatedStore {
    fn try_load(
        &self,
        id: streamline_repro::field::block::BlockId,
    ) -> Result<Arc<streamline_repro::field::block::Block>, streamline_repro::iosim::StoreError>
    {
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
        drop(open);
        self.inner.try_load(id)
    }

    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }
}

/// With the queue full of work that cannot drain (loads are gated shut), a
/// concurrent request is turned away instead of queued unboundedly — and
/// admission reopens once the backlog drains.
#[test]
fn full_queue_rejects_then_recovers() {
    let ds = astro();
    let store = Arc::new(GatedStore::new(MemoryStore::build(&ds)));
    let svc = Service::start(
        ds.decomp,
        Arc::clone(&store) as Arc<dyn streamline_repro::iosim::BlockStore>,
        ServiceConfig { workers: 1, queue_capacity: 8, ..ServiceConfig::default() },
    );
    let occupant = ds.seeds_with_count(Seeding::Sparse, 8);
    let ticket = svc
        .submit(Request::new(occupant.points.clone()).with_limits(limits()))
        .expect("fills the queue exactly");

    // The gate is shut: none of the 8 seeds can resolve, so this must be
    // turned away no matter how the threads interleave.
    let extra = Request::new(vec![Vec3::splat(0.1)]).with_limits(limits());
    match svc.submit(extra.clone()) {
        Err(SubmitError::Overloaded { queue_depth, capacity, .. }) => {
            assert_eq!(queue_depth, 8, "rejection must report the live backlog");
            assert_eq!(capacity, 8);
        }
        Ok(_) => panic!("queue at capacity must reject"),
        Err(other) => panic!("expected Overloaded, got {other:?}"),
    }

    // Open the gate; once the occupant finishes, the same request fits.
    store.open();
    ticket.wait().expect("service answers");
    svc.submit(extra).expect("queue drained, admission reopens").wait().expect("service answers");
    let m = svc.shutdown();
    assert_eq!(m.completed, 2);
    assert_eq!(m.rejected, 1);
    assert_eq!(m.queue_depth, 0);
}

/// Deadlines cancel work mid-flight; shutdown still answers every ticket.
#[test]
fn deadline_and_drain_interact_cleanly() {
    let ds = astro();
    let svc = Service::start(
        ds.decomp,
        Arc::new(MemoryStore::build(&ds)),
        ServiceConfig { workers: 2, ..ServiceConfig::default() },
    );
    let seeds = ds.seeds_with_count(Seeding::Sparse, 12);
    let expired = svc
        .submit(
            Request::new(seeds.points.clone()).with_limits(limits()).with_deadline(Instant::now()),
        )
        .expect("admitted");
    let healthy =
        svc.submit(Request::new(seeds.points.clone()).with_limits(limits())).expect("admitted");
    let m = svc.shutdown();
    assert_eq!(m.completed, 2);
    assert_eq!(m.queue_depth, 0);

    match expired.wait().expect("service answers").outcome {
        Outcome::DeadlineExceeded { dropped } => assert!(dropped > 0),
        other => panic!("a deadline of now cannot complete 12 seeds: {other:?}"),
    }
    let resp = healthy.wait().expect("service answers");
    assert_eq!(resp.outcome, Outcome::Completed);
    assert_eq!(resp.streamlines.len(), 12);
}
