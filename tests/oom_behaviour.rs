//! The §5.3 out-of-memory behaviour: Static Allocation dies when a dense
//! seed set lands on one rank; the streamline-parallel algorithms survive
//! the identical problem under the identical budget.

use streamline_repro::core::{run_simulated, Algorithm, RunConfig, RunOutcome};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};

const N_SEEDS: usize = 2_000;

fn dense_config(algo: Algorithm, n_seeds: usize, n_procs: usize) -> RunConfig {
    let mut cfg = RunConfig::new(algo, n_procs);
    cfg.limits.max_steps = 200;
    cfg.limits.max_arc_length = 0.8;
    // Small caches so resident blocks stay well under the budget …
    cfg.cache_blocks = 4;
    // … and a budget sized so the whole seed set on one rank is fatal
    // (n · 64 KiB ≈ 131 MB for 2000 seeds) while a 1/n share plus cache
    // is comfortable.
    cfg.memory.bytes = Some(n_seeds as f64 * cfg.memory.stream_bytes * 0.9);
    cfg
}

#[test]
fn static_oom_on_dense_seeds_lod_and_hybrid_survive() {
    let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
    let n = N_SEEDS;
    let seeds = ds.seeds_with_count(Seeding::Dense, n);

    let st = run_simulated(&ds, &seeds, &dense_config(Algorithm::StaticAllocation, n, 16));
    assert!(
        matches!(st.outcome, RunOutcome::OutOfMemory { .. }),
        "static must OOM: {}",
        st.summary()
    );

    for algo in [Algorithm::LoadOnDemand, Algorithm::HybridMasterSlave] {
        let r = run_simulated(&ds, &seeds, &dense_config(algo, n, 16));
        assert!(r.outcome.completed(), "{algo:?} should survive: {}", r.summary());
        assert_eq!(r.terminated as usize, n);
    }
}

#[test]
fn static_oom_is_proc_count_independent() {
    // The paper's Figure 13 has no static-dense line at any processor count.
    let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
    let n = N_SEEDS;
    let seeds = ds.seeds_with_count(Seeding::Dense, n);
    for procs in [8, 16, 32] {
        let r = run_simulated(&ds, &seeds, &dense_config(Algorithm::StaticAllocation, n, procs));
        assert!(matches!(r.outcome, RunOutcome::OutOfMemory { .. }), "p={procs}: {}", r.summary());
    }
}

#[test]
fn sparse_seeding_fits_everywhere() {
    let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
    let seeds = ds.seeds_with_count(Seeding::Sparse, N_SEEDS);
    for algo in Algorithm::ALL {
        let r = run_simulated(&ds, &seeds, &dense_config(algo, N_SEEDS, 16));
        assert!(r.outcome.completed(), "{algo:?} sparse: {}", r.summary());
    }
}

#[test]
fn unlimited_budget_never_fails() {
    let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
    let seeds = ds.seeds_with_count(Seeding::Dense, N_SEEDS);
    let mut cfg = dense_config(Algorithm::StaticAllocation, 600, 8);
    cfg.memory.bytes = None;
    let r = run_simulated(&ds, &seeds, &cfg);
    assert!(r.outcome.completed());
    assert_eq!(r.terminated, N_SEEDS as u64);
}
