//! End-to-end output tests: real runs → writers → structural checks on the
//! produced artifacts.

use streamline_repro::core::{run_simulated_detailed, Algorithm, MemoryBudget, RunConfig};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::integrate::{advect, Dopri5, StepLimits, Streamline, StreamlineId};
use streamline_repro::math::Vec3;
use streamline_repro::output::{csv, obj, ppm, vtk};

fn traced_streamlines(n: usize) -> Vec<Streamline> {
    let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
    let seeds = ds.seeds_with_count(Seeding::Sparse, n);
    let field = &ds.field;
    let domain = ds.decomp.domain;
    let mut sample = |p: Vec3| Some(field.eval(p));
    let region = move |p: Vec3| domain.contains(p);
    let limits = StepLimits { max_steps: 200, ..Default::default() };
    seeds
        .points
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let mut sl = Streamline::new(StreamlineId(i as u32), p, limits.h0);
            advect(&mut sl, &mut sample, &region, &limits, &Dopri5);
            sl
        })
        .collect()
}

#[test]
fn vtk_output_is_structurally_consistent() {
    let streams = traced_streamlines(12);
    let mut buf = Vec::new();
    vtk::write_polylines(&mut buf, &streams).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let total_points: usize = streams.iter().map(|s| s.geometry.len()).sum();
    assert!(text.contains(&format!("POINTS {total_points} double")));
    assert!(text.contains(&format!("LINES {} {}", streams.len(), total_points + streams.len())));
    // Every point line parses as three floats.
    let start = text.lines().position(|l| l.starts_with("POINTS")).unwrap() + 1;
    for line in text.lines().skip(start).take(total_points) {
        let parts: Vec<f64> = line.split_whitespace().map(|t| t.parse().unwrap()).collect();
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn csv_row_count_matches_run() {
    let ds = Dataset::thermal_hydraulics(DatasetConfig::tiny());
    let seeds = ds.seeds_with_count(Seeding::Sparse, 30);
    let mut cfg = RunConfig::new(Algorithm::LoadOnDemand, 3);
    cfg.limits.max_steps = 200;
    cfg.memory = MemoryBudget::unlimited();
    let (report, finished) = run_simulated_detailed(&ds, &seeds, &cfg);
    assert!(report.outcome.completed());
    let mut buf = Vec::new();
    csv::write_summary(&mut buf, &finished).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), 31); // header + 30 rows
                                          // Ids are sorted and complete.
    let ids: Vec<u32> =
        text.lines().skip(1).map(|l| l.split(',').next().unwrap().parse().unwrap()).collect();
    assert_eq!(ids, (0..30).collect::<Vec<_>>());
}

#[test]
fn ppm_image_has_content_proportional_to_curves() {
    let streams = traced_streamlines(20);
    let d = Dataset::thermal_hydraulics(DatasetConfig::tiny()).decomp.domain;
    let mut canvas =
        ppm::Canvas::new(400, 400, (d.min.x, d.min.y), (d.max.x, d.max.y), ppm::Projection::DropZ);
    for (i, s) in streams.iter().enumerate() {
        canvas.draw_streamline(s, ppm::palette(i));
    }
    // 20 curves of hundreds of vertices must light a meaningful area.
    assert!(canvas.lit_pixels() > 500, "{}", canvas.lit_pixels());
    let mut buf = Vec::new();
    canvas.write_ppm(&mut buf).unwrap();
    assert_eq!(buf.len(), b"P6\n400 400\n255\n".len() + 400 * 400 * 3);
}

#[test]
fn obj_indices_are_in_bounds() {
    let streams = traced_streamlines(8);
    let mut buf = Vec::new();
    obj::write_lines(&mut buf, &streams).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let n_vertices = text.lines().filter(|l| l.starts_with("v ")).count();
    for line in text.lines().filter(|l| l.starts_with("l ")) {
        for idx in line[2..].split_whitespace() {
            let i: usize = idx.parse().unwrap();
            assert!(i >= 1 && i <= n_vertices, "index {i} out of 1..={n_vertices}");
        }
    }
}
