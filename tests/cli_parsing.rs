//! CLI behaviour through the library interface (parsing + cheap commands).

use streamline_cli::args::parse;
use streamline_cli::commands::execute;
use streamline_repro::iosim::testutil::TempDir;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

#[test]
fn info_and_help_have_zero_exit() {
    assert_eq!(execute(parse(&argv("info")).unwrap().command), 0);
    assert_eq!(execute(parse(&argv("help")).unwrap().command), 0);
}

#[test]
fn classify_runs_on_every_dataset_alias() {
    for ds in ["astro", "supernova", "fusion", "tokamak", "thermal"] {
        let cli = parse(&argv(&format!("classify --dataset {ds} --seeds 50"))).unwrap();
        assert_eq!(execute(cli.command), 0, "{ds}");
    }
}

#[test]
fn run_writes_json_report() {
    let dir = TempDir::new("slrepro-test");
    let path = dir.join("report.json");
    let cli = parse(&argv(&format!(
        "run --dataset thermal --algorithm lod --procs 4 --seeds 24 --cache 8 --json {}",
        path.display()
    )))
    .unwrap();
    assert_eq!(execute(cli.command), 0);
    let text = std::fs::read_to_string(&path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(v["terminated"], 24);
    assert_eq!(v["algorithm"], "LoadOnDemand");
}

#[test]
fn trace_produces_requested_formats() {
    let tmp = TempDir::new("slrepro-trace");
    let dir = tmp.join("out");
    let cli = parse(&argv(&format!(
        "trace --dataset thermal --seeds 8 --out {} --formats vtk,csv",
        dir.display()
    )))
    .unwrap();
    assert_eq!(execute(cli.command), 0);
    assert!(dir.join("thermal-hydraulics.vtk").exists());
    assert!(dir.join("thermal-hydraulics.csv").exists());
    assert!(!dir.join("thermal-hydraulics.obj").exists());
}

#[test]
fn bad_input_is_rejected_not_panicking() {
    assert!(parse(&argv("run --procs NaN")).is_err());
    assert!(parse(&argv("trace --seeds -3")).is_err());
    assert!(parse(&argv("nonsense")).is_err());
}

#[test]
fn steal_run_round_trips_through_json_report() {
    let dir = TempDir::new("slrepro-steal");
    let path = dir.join("report.json");
    let cli = parse(&argv(&format!(
        "run --dataset thermal --algorithm steal --procs 4 --seeds 24 --cache 8 \
         --neighbors 2 --diffusion-period 0.005 --steal-batch 4 --json {}",
        path.display()
    )))
    .unwrap();
    assert_eq!(execute(cli.command), 0);
    let text = std::fs::read_to_string(&path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(v["terminated"], 24);
    assert_eq!(v["algorithm"], "WorkStealing");
    // The scheduling diagnostics made it into the report JSON.
    assert!(v["pingpong_streamlines"].as_u64().is_some(), "{text}");
    assert!(v["balance_msgs"].as_u64().unwrap() > 0, "{text}");
    assert!(v["balance_bytes"].as_u64().unwrap() > 0, "{text}");
}

#[test]
fn steal_knob_misuse_is_a_parse_error_not_a_panic() {
    // Knobs without the steal driver.
    assert!(parse(&argv("run --algorithm static --neighbors 2")).is_err());
    assert!(parse(&argv("run --algorithm hybrid --diffusion-period 0.01")).is_err());
    assert!(parse(&argv("run --steal-batch 8")).is_err());
    // Invalid knob values with the right driver.
    assert!(parse(&argv("run --algorithm steal --neighbors 0")).is_err());
    assert!(parse(&argv("run --algorithm steal --steal-batch 0")).is_err());
    assert!(parse(&argv("run --algorithm steal --diffusion-period 0")).is_err());
    assert!(parse(&argv("run --algorithm steal --diffusion-period inf")).is_err());
}

#[test]
fn steal_chaos_run_completes_with_exact_accounting() {
    let dir = TempDir::new("slrepro-steal-chaos");
    let path = dir.join("report.json");
    let cli = parse(&argv(&format!(
        "run --dataset thermal --algorithm steal --procs 4 --seeds 24 --cache 8 \
         --chaos --chaos-seed 7 --json {}",
        path.display()
    )))
    .unwrap();
    assert_eq!(execute(cli.command), 0);
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    // Masterless: every seed retires on some rank even when the plan bites.
    assert_eq!(v["terminated"], 24);
}

#[test]
fn steal_trace_emits_schedule_series_that_obs_check_accepts() {
    let dir = TempDir::new("slrepro-steal-trace");
    let path = dir.join("trace.json");
    let cli = parse(&argv(&format!(
        "run --dataset thermal --algorithm steal --procs 4 --seeds 24 --cache 8 --trace {}",
        path.display()
    )))
    .unwrap();
    assert_eq!(execute(cli.command), 0);
    let text = std::fs::read_to_string(&path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    let sched = &v["schedule"];
    assert!(sched["participation"].as_array().is_some(), "{text}");
    assert!(sched["pingpong_cumulative"].as_array().is_some(), "{text}");
    assert!(sched["shares"]["comm"].as_f64().is_some(), "{text}");
    // The emitted file passes the observability gate.
    assert_eq!(
        execute(parse(&argv(&format!("obs-check --trace {}", path.display()))).unwrap().command),
        0
    );
}

#[test]
fn chaos_conflicts_are_usage_errors() {
    let run = |s: &str| execute(parse(&argv(s)).unwrap().command);
    assert_eq!(run("run --chaos --trace t.json"), 64);
    assert_eq!(run("run --chaos --checkpoint ck"), 64);
    assert_eq!(run("run --chaos --resume ck"), 64);
}
