//! CLI behaviour through the library interface (parsing + cheap commands).

use streamline_cli::args::parse;
use streamline_cli::commands::execute;
use streamline_repro::iosim::testutil::TempDir;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

#[test]
fn info_and_help_have_zero_exit() {
    assert_eq!(execute(parse(&argv("info")).unwrap().command), 0);
    assert_eq!(execute(parse(&argv("help")).unwrap().command), 0);
}

#[test]
fn classify_runs_on_every_dataset_alias() {
    for ds in ["astro", "supernova", "fusion", "tokamak", "thermal"] {
        let cli = parse(&argv(&format!("classify --dataset {ds} --seeds 50"))).unwrap();
        assert_eq!(execute(cli.command), 0, "{ds}");
    }
}

#[test]
fn run_writes_json_report() {
    let dir = TempDir::new("slrepro-test");
    let path = dir.join("report.json");
    let cli = parse(&argv(&format!(
        "run --dataset thermal --algorithm lod --procs 4 --seeds 24 --cache 8 --json {}",
        path.display()
    )))
    .unwrap();
    assert_eq!(execute(cli.command), 0);
    let text = std::fs::read_to_string(&path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(v["terminated"], 24);
    assert_eq!(v["algorithm"], "LoadOnDemand");
}

#[test]
fn trace_produces_requested_formats() {
    let tmp = TempDir::new("slrepro-trace");
    let dir = tmp.join("out");
    let cli = parse(&argv(&format!(
        "trace --dataset thermal --seeds 8 --out {} --formats vtk,csv",
        dir.display()
    )))
    .unwrap();
    assert_eq!(execute(cli.command), 0);
    assert!(dir.join("thermal-hydraulics.vtk").exists());
    assert!(dir.join("thermal-hydraulics.csv").exists());
    assert!(!dir.join("thermal-hydraulics.obj").exists());
}

#[test]
fn bad_input_is_rejected_not_panicking() {
    assert!(parse(&argv("run --procs NaN")).is_err());
    assert!(parse(&argv("trace --seeds -3")).is_err());
    assert!(parse(&argv("nonsense")).is_err());
}
