//! The §6 advisor's recommendations must actually win (or tie) their
//! scenarios in measured quick-scale runs — the heuristics are distilled
//! from the measurements, so the measurements must support them.

use streamline_bench::experiments::{case_config, dataset_for, SweepScale, Workload};
use streamline_core::{classify, recommend, run_simulated, Algorithm, FlowKnowledge, RunConfig};
use streamline_field::dataset::Seeding;

/// Quick-scale datasets have only 64 blocks; shrink the cache so the data
/// does *not* fit in one rank (the paper's large-data regime).
const CACHE: usize = 12;

fn measure(workload: Workload, seeding: Seeding, algo: Algorithm, n: usize) -> f64 {
    let dataset = dataset_for(workload, SweepScale::Quick);
    let seeds = dataset.seeds_with_count(seeding, n);
    let mut cfg = case_config(workload, seeding, algo, 8);
    cfg.cache_blocks = CACHE;
    let r = run_simulated(&dataset, &seeds, &cfg);
    assert!(r.outcome.completed(), "{}", r.summary());
    r.wall
}

fn classify_case(
    workload: Workload,
    seeding: Seeding,
    n: usize,
) -> streamline_core::ProblemProfile {
    let dataset = dataset_for(workload, SweepScale::Quick);
    let seeds = dataset.seeds_with_count(seeding, n);
    let mut cfg: RunConfig = case_config(workload, seeding, Algorithm::HybridMasterSlave, 8);
    cfg.cache_blocks = CACHE;
    classify(&dataset, &seeds, &cfg)
}

#[test]
fn hybrid_recommended_for_unknown_flow_is_competitive() {
    // For unknown flow the advisor says hybrid; measured, it must be within
    // a factor of the best algorithm on a scattered-seed case.
    let profile = classify_case(Workload::Astro, Seeding::Sparse, 400);
    let rec = recommend(&profile, FlowKnowledge::Unknown);
    assert_eq!(rec.algorithm, Algorithm::HybridMasterSlave);
    let walls: Vec<(Algorithm, f64)> = Algorithm::ALL
        .iter()
        .map(|&a| (a, measure(Workload::Astro, Seeding::Sparse, a, 400)))
        .collect();
    let best = walls.iter().map(|&(_, w)| w).fold(f64::INFINITY, f64::min);
    let hybrid = walls.iter().find(|(a, _)| *a == Algorithm::HybridMasterSlave).unwrap().1;
    assert!(
        hybrid <= best * 2.5,
        "hybrid {hybrid} vs best {best}: the general-purpose recommendation \
         must stay competitive ({walls:?})"
    );
}

#[test]
fn lod_recommended_for_dense_localized_actually_wins() {
    // The §5.3 thermal-dense crossover: advisor says Load On Demand, and the
    // measurement agrees it beats the hybrid there.
    let profile = classify_case(Workload::Thermal, Seeding::Dense, 1100);
    let rec = recommend(&profile, FlowKnowledge::Localized);
    assert_eq!(rec.algorithm, Algorithm::LoadOnDemand);
    let lod = measure(Workload::Thermal, Seeding::Dense, Algorithm::LoadOnDemand, 1100);
    let hybrid = measure(Workload::Thermal, Seeding::Dense, Algorithm::HybridMasterSlave, 1100);
    assert!(lod < hybrid, "LOD ({lod}) must beat hybrid ({hybrid}) on the dense thermal case");
}

#[test]
fn classification_flags_match_scenarios() {
    let dense = classify_case(Workload::Thermal, Seeding::Dense, 500);
    assert!(dense.seeds_dense);
    assert!(!dense.seed_set_small);
    let sparse = classify_case(Workload::Fusion, Seeding::Sparse, 500);
    assert!(!sparse.seeds_dense);
    assert!(sparse.seeded_block_fraction > dense.seeded_block_fraction);
}
