//! The same algorithm code on real OS threads must reach the same science
//! as the deterministic simulation (timings differ; results must not).

use std::sync::Arc;
use std::time::Duration;
use streamline_repro::core::{run_simulated, run_threaded, Algorithm, MemoryBudget, RunConfig};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::iosim::{BlockStore, MemoryStore};

fn dataset() -> Dataset {
    Dataset::thermal_hydraulics(DatasetConfig::tiny())
}

fn cfg(algo: Algorithm) -> RunConfig {
    let mut cfg = RunConfig::new(algo, 4);
    cfg.limits.max_steps = 300;
    cfg.memory = MemoryBudget::unlimited();
    cfg
}

#[test]
fn threads_match_simulation_for_every_algorithm() {
    let ds = dataset();
    let seeds = ds.seeds_with_count(Seeding::Sparse, 48);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&ds));
    for algo in Algorithm::ALL {
        let sim = run_simulated(&ds, &seeds, &cfg(algo));
        let thr =
            run_threaded(&ds, &seeds, &cfg(algo), Arc::clone(&store), Duration::from_secs(60));
        assert_eq!(thr.terminated, sim.terminated, "{algo:?}");
        assert_eq!(thr.total_steps, sim.total_steps, "{algo:?} steps must match exactly");
        assert!(thr.outcome.completed(), "{algo:?}");
    }
}

#[test]
fn threads_run_against_real_disk_store() {
    use streamline_repro::iosim::testutil::TempDir;
    use streamline_repro::iosim::DiskStore;
    let ds = dataset();
    let seeds = ds.seeds_with_count(Seeding::Sparse, 24);
    let dir = TempDir::new("sl-threads");
    let store: Arc<dyn BlockStore> = Arc::new(DiskStore::create(&ds, dir.path()).unwrap());
    let r =
        run_threaded(&ds, &seeds, &cfg(Algorithm::LoadOnDemand), store, Duration::from_secs(60));
    assert!(r.outcome.completed());
    assert_eq!(r.terminated, 24);
    assert!(r.wall > 0.0);
}
