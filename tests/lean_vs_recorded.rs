//! Lean (no-geometry) and recorded streamlines must agree on everything
//! except vertex storage — the lean mode is what the scaling experiments
//! rely on for memory sanity, so divergence would silently corrupt them.

use streamline_repro::field::dataset::{Dataset, DatasetConfig};
use streamline_repro::integrate::{advect, Dopri5, StepLimits, Streamline, StreamlineId};
use streamline_repro::math::Vec3;

#[test]
fn lean_and_recorded_traces_are_identical_in_state() {
    let ds = Dataset::astrophysics(DatasetConfig::tiny());
    let field = &ds.field;
    let domain = ds.decomp.domain;
    let mut sample = |p: Vec3| Some(field.eval(p));
    let region = move |p: Vec3| domain.contains(p);
    let limits = StepLimits { max_steps: 500, ..Default::default() };
    for i in 0..20u32 {
        let seed = domain.expanded(-0.2).from_unit(Vec3::new(
            (i as f64 * 0.37).fract(),
            (i as f64 * 0.61).fract(),
            (i as f64 * 0.83).fract(),
        ));
        let mut full = Streamline::new(StreamlineId(i), seed, limits.h0);
        let mut lean = Streamline::new_lean(StreamlineId(i), seed, limits.h0);
        let rf = advect(&mut full, &mut sample, &region, &limits, &Dopri5);
        let rl = advect(&mut lean, &mut sample, &region, &limits, &Dopri5);
        assert_eq!(rf.outcome, rl.outcome, "seed {i}");
        assert_eq!(full.state, lean.state, "seed {i}");
        assert_eq!(full.status, lean.status, "seed {i}");
        // Geometry: full records every vertex, lean only the seed.
        assert_eq!(full.geometry.len() as u64, full.vertex_count());
        assert_eq!(lean.geometry.len(), 1);
        assert_eq!(full.comm_bytes_full(), lean.comm_bytes_full(), "seed {i}");
    }
}

#[test]
fn recorded_geometry_is_causally_ordered() {
    // Vertices must be exactly the accepted step sequence: consecutive,
    // finite, starting at the seed, ending at the final position.
    let ds = Dataset::fusion(DatasetConfig::tiny());
    let field = &ds.field;
    let domain = ds.decomp.domain;
    let mut sample = |p: Vec3| Some(field.eval(p));
    let region = move |p: Vec3| domain.contains(p);
    let limits = StepLimits { max_steps: 400, h_max: 0.05, ..Default::default() };
    let seed = Vec3::new(3.2, 0.0, 0.1);
    let mut sl = Streamline::new(StreamlineId(0), seed, limits.h0);
    advect(&mut sl, &mut sample, &region, &limits, &Dopri5);
    assert_eq!(sl.geometry[0], seed);
    assert_eq!(*sl.geometry.last().unwrap(), sl.state.position);
    let mut arc = 0.0;
    for w in sl.geometry.windows(2) {
        assert!(w[0].is_finite() && w[1].is_finite());
        arc += w[0].distance(w[1]);
    }
    assert!((arc - sl.state.arc_length).abs() < 1e-9 * arc.max(1.0));
}
