//! Cross-crate integration tests for the §8 pathline extension.

use std::sync::Arc;
use streamline_repro::field::decomp::BlockDecomposition;
use streamline_repro::field::timedecomp::TimeBlockDecomposition;
use streamline_repro::field::unsteady::{TimeSeriesField, UnsteadyDoubleGyre, UnsteadyField};
use streamline_repro::integrate::tracer::StepLimits;
use streamline_repro::integrate::unsteady::advect_pathline;
use streamline_repro::integrate::{Streamline, StreamlineId};
use streamline_repro::math::{Aabb, Vec3};
use streamline_repro::pathline::{run_time_sweep, PathlineConfig, SpaceTimeStore};

/// The blocked, snapshot-interpolated pathline must track the analytic
/// pathline (same field, no decomposition) within discretization error.
#[test]
fn blocked_pathlines_track_analytic_reference() {
    let field = UnsteadyDoubleGyre::standard();
    let space = BlockDecomposition::new(
        Aabb::new(Vec3::ZERO, Vec3::new(2.0, 1.0, 0.25)),
        [4, 2, 1],
        [10, 10, 4],
        1,
    );
    // Fine snapshots keep the linear-in-time error small.
    let decomp = TimeBlockDecomposition::new(space, 81, 0.0, field.duration);
    let store = SpaceTimeStore::new(decomp, Arc::new(field));
    let seeds = [Vec3::new(0.6, 0.4, 0.12), Vec3::new(1.4, 0.7, 0.12)];
    let cfg = PathlineConfig {
        limits: StepLimits { h0: 1e-2, h_max: 0.05, max_steps: 200_000, ..Default::default() },
        ..Default::default()
    };
    let result = run_time_sweep(&store, &seeds, &cfg);

    for (sl, &seed) in result.pathlines.iter().zip(seeds.iter()) {
        // Analytic reference: integrate the exact field directly.
        let sample = |p: Vec3, t: f64| Some(field.eval(p, t));
        let region = |_p: Vec3, _t: f64| true;
        let mut reference = Streamline::new_lean(StreamlineId(0), seed, 1e-2);
        advect_pathline(&mut reference, &sample, &region, field.duration, &cfg.limits);
        let err = sl.state.position.distance(reference.state.position);
        // Chaotic advection amplifies small differences; at 81 snapshots and
        // this grid the endpoints stay close over 20 time units.
        assert!(err < 0.2, "endpoint error {err} for seed {seed:?}");
        // Both end at the final time.
        assert!((sl.state.time - field.duration).abs() < 1e-6);
    }
}

/// Coarser snapshots mean more time-interpolation error, never less.
#[test]
fn snapshot_count_controls_accuracy() {
    let field = UnsteadyDoubleGyre::standard();
    let seed = [Vec3::new(0.9, 0.55, 0.12)];
    let endpoint = |snapshots: usize| {
        let space = BlockDecomposition::new(
            Aabb::new(Vec3::ZERO, Vec3::new(2.0, 1.0, 0.25)),
            [4, 2, 1],
            [10, 10, 4],
            1,
        );
        let decomp = TimeBlockDecomposition::new(space, snapshots, 0.0, field.duration);
        let store = SpaceTimeStore::new(decomp, Arc::new(field));
        let cfg = PathlineConfig {
            limits: StepLimits { h0: 1e-2, h_max: 0.05, max_steps: 200_000, ..Default::default() },
            ..Default::default()
        };
        run_time_sweep(&store, &seed, &cfg).pathlines[0].state.position
    };
    let sample = |p: Vec3, t: f64| Some(field.eval(p, t));
    let region = |_p: Vec3, _t: f64| true;
    let mut reference = Streamline::new_lean(StreamlineId(0), seed[0], 1e-2);
    let limits = StepLimits { h0: 1e-2, h_max: 0.05, max_steps: 200_000, ..Default::default() };
    advect_pathline(&mut reference, &sample, &region, field.duration, &limits);
    let fine = endpoint(161).distance(reference.state.position);
    let coarse = endpoint(6).distance(reference.state.position);
    assert!(fine < coarse, "more snapshots must not hurt: fine err {fine} vs coarse err {coarse}");
}

/// The discretized time-series field agrees with the analytic one well
/// enough that pathlines through either stay close.
#[test]
fn time_series_field_is_usable_for_pathlines() {
    let g = UnsteadyDoubleGyre::standard();
    let ts = TimeSeriesField::discretize(&g, 100);
    let limits = StepLimits { h0: 1e-2, h_max: 0.05, max_steps: 200_000, ..Default::default() };
    let region = |_p: Vec3, _t: f64| true;
    let seed = Vec3::new(1.1, 0.3, 0.0);

    let mut a = Streamline::new_lean(StreamlineId(0), seed, 1e-2);
    let fa = |p: Vec3, t: f64| Some(g.eval(p, t));
    advect_pathline(&mut a, &fa, &region, 10.0, &limits);

    let mut b = Streamline::new_lean(StreamlineId(0), seed, 1e-2);
    let fb = |p: Vec3, t: f64| Some(ts.eval(p, t));
    advect_pathline(&mut b, &fb, &region, 10.0, &limits);

    let err = a.state.position.distance(b.state.position);
    assert!(err < 0.05, "discretized-field pathline drifted {err}");
}
