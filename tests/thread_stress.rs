//! Heavier thread-runtime exercise: every algorithm, several rank counts,
//! repeated runs — shaking out races the single-shot tests would miss.

use std::sync::Arc;
use std::time::Duration;
use streamline_repro::core::{run_simulated, run_threaded, Algorithm, MemoryBudget, RunConfig};
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::iosim::{BlockStore, MemoryStore};

#[test]
fn repeated_threaded_runs_are_reliable() {
    let ds = Dataset::fusion(DatasetConfig::tiny());
    let seeds = ds.seeds_with_count(Seeding::Sparse, 60);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&ds));
    for algo in Algorithm::ALL {
        let mut cfg = RunConfig::new(algo, 6);
        cfg.limits.max_steps = 250;
        cfg.memory = MemoryBudget::unlimited();
        let reference = run_simulated(&ds, &seeds, &cfg);
        for round in 0..3 {
            let r = run_threaded(&ds, &seeds, &cfg, Arc::clone(&store), Duration::from_secs(60));
            assert!(r.outcome.completed(), "{algo:?} round {round}");
            assert_eq!(r.terminated, 60, "{algo:?} round {round}");
            assert_eq!(
                r.total_steps, reference.total_steps,
                "{algo:?} round {round}: threaded work differs from simulated"
            );
        }
    }
}

#[test]
fn threaded_rank_counts_vary() {
    let ds = Dataset::astrophysics(DatasetConfig::tiny());
    let seeds = ds.seeds_with_count(Seeding::Dense, 80);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&ds));
    for procs in [2usize, 5, 12] {
        let mut cfg = RunConfig::new(Algorithm::HybridMasterSlave, procs);
        cfg.limits.max_steps = 250;
        cfg.memory = MemoryBudget::unlimited();
        let r = run_threaded(&ds, &seeds, &cfg, Arc::clone(&store), Duration::from_secs(60));
        assert!(r.outcome.completed(), "p={procs}");
        assert_eq!(r.terminated, 80, "p={procs}");
    }
}
