//! Physics validation: the tokamak field's measured rotational transform
//! (from Poincaré punctures) must match its analytic safety-factor profile —
//! closing the loop between the synthetic dataset and flux-surface theory.

use streamline_repro::field::analytic::VectorField;
use streamline_repro::field::tokamak::TokamakField;
use streamline_repro::integrate::poincare::{punctures, SectionPlane};
use streamline_repro::math::Vec3;

/// Measure q = (toroidal transits) / (poloidal turns) from punctures of the
/// φ = 0 half-plane.
fn measured_q(field: &TokamakField, minor_r: f64) -> f64 {
    let f = |p: Vec3| Some(field.eval(p));
    let plane = SectionPlane::new(Vec3::ZERO, Vec3::Y);
    let accept = |p: Vec3| p.x > 0.0;
    let seed = Vec3::new(field.r_major + minor_r, 0.0, 0.0);
    let pts = punctures(&f, seed, plane, &accept, 60, 5_000_000, 0.01);
    assert!(pts.len() >= 40, "only {} punctures at r = {minor_r}", pts.len());
    // Accumulate the poloidal angle advance between consecutive punctures.
    let theta = |p: Vec3| {
        let rho = (p.x * p.x + p.y * p.y).sqrt();
        p.z.atan2(rho - field.r_major)
    };
    let mut total = 0.0;
    for w in pts.windows(2) {
        let mut d = theta(w[1]) - theta(w[0]);
        // θ advances monotonically (B_θ > 0) by less than one full poloidal
        // turn per transit for q > 1: normalize the advance into [0, 2π).
        while d < 0.0 {
            d += std::f64::consts::TAU;
        }
        while d >= std::f64::consts::TAU {
            d -= std::f64::consts::TAU;
        }
        total += d;
    }
    let transits = (pts.len() - 1) as f64;
    let poloidal_turns = total / std::f64::consts::TAU;
    transits / poloidal_turns
}

#[test]
fn measured_safety_factor_matches_analytic_profile() {
    let mut field = TokamakField::standard(3.0, 1.0);
    field.perturbation = 0.0; // intact flux surfaces
    for minor_r in [0.3, 0.5, 0.7] {
        let q_measured = measured_q(&field, minor_r);
        let q_analytic = field.q(minor_r);
        let rel = (q_measured - q_analytic).abs() / q_analytic;
        assert!(
            rel < 0.05,
            "at r = {minor_r}: measured q = {q_measured:.3}, analytic q = {q_analytic:.3}"
        );
    }
}

#[test]
fn q_increases_outward() {
    let mut field = TokamakField::standard(3.0, 1.0);
    field.perturbation = 0.0;
    let q_inner = measured_q(&field, 0.3);
    let q_outer = measured_q(&field, 0.7);
    assert!(q_outer > q_inner, "q profile must increase outward: {q_inner} vs {q_outer}");
}

#[test]
fn perturbation_spreads_punctures_radially() {
    // The resonant perturbation tears outer surfaces: the radial spread of
    // punctures grows by an order of magnitude vs the integrable field.
    let spread = |perturbation: f64| {
        let mut field = TokamakField::standard(3.0, 1.0);
        field.perturbation = perturbation;
        let f = |p: Vec3| Some(field.eval(p));
        let plane = SectionPlane::new(Vec3::ZERO, Vec3::Y);
        let accept = |p: Vec3| p.x > 0.0;
        let seed = Vec3::new(3.85, 0.0, 0.0);
        let pts = punctures(&f, seed, plane, &accept, 80, 5_000_000, 0.01);
        let minor: Vec<f64> =
            pts.iter().map(|p| ((p.x - 3.0).powi(2) + p.z * p.z).sqrt()).collect();
        let mean = minor.iter().sum::<f64>() / minor.len() as f64;
        (minor.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / minor.len() as f64).sqrt()
    };
    let integrable = spread(0.0);
    let chaotic = spread(0.03);
    assert!(
        chaotic > 5.0 * integrable.max(1e-6),
        "perturbation must destroy outer surfaces: {integrable} vs {chaotic}"
    );
}
