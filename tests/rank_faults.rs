//! Rank fail-stop faults: for ANY seeded death schedule, every scheduling
//! driver must terminate and account for every seed exactly once —
//! `completed + unavailable + rank_lost == total` — with or without a
//! permanent block-fault overlay. Survivors of a death must be
//! bit-identical to the fault-free run, and resilient mode with no deaths
//! must be invisible in the results.

use proptest::prelude::*;
use std::sync::Arc;
use streamline_repro::core::{
    run_simulated_detailed_with_store, Algorithm, MemoryBudget, RankChaos, RunConfig,
};
use streamline_repro::field::block::BlockId;
use streamline_repro::field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_repro::integrate::{Streamline, StreamlineStatus, Termination};
use streamline_repro::iosim::{BlockStore, FaultPlan, FaultStore, MemoryStore};

fn dataset() -> Dataset {
    Dataset::thermal_hydraulics(DatasetConfig::tiny())
}

fn cfg(algo: Algorithm) -> RunConfig {
    let mut cfg = RunConfig::new(algo, 6);
    cfg.limits.max_steps = 300;
    cfg.memory = MemoryBudget::unlimited();
    cfg
}

/// `(completed, unavailable, rank_lost)` — panics on a still-active
/// streamline, which the collect path must never emit.
fn buckets(lines: &[Streamline]) -> (u64, u64, u64) {
    let (mut done, mut unavail, mut lost) = (0, 0, 0);
    for sl in lines {
        match sl.status {
            StreamlineStatus::Terminated(Termination::RankLost) => lost += 1,
            StreamlineStatus::Terminated(Termination::BlockUnavailable) => unavail += 1,
            StreamlineStatus::Terminated(_) => done += 1,
            StreamlineStatus::Active => panic!("active streamline {:?} after collect", sl.id),
        }
    }
    (done, unavail, lost)
}

fn assert_same_streamline(got: &Streamline, want: &Streamline, ctx: &str) {
    assert_eq!(got.id, want.id, "{ctx}: id");
    assert_eq!(got.status, want.status, "{ctx}: status of {:?}", got.id);
    assert_eq!(got.state.position, want.state.position, "{ctx}: position of {:?}", got.id);
    assert_eq!(got.geometry, want.geometry, "{ctx}: geometry of {:?}", got.id);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The tentpole invariant, property-tested: any seeded death schedule,
    /// all four drivers, optional permanent block faults on top — the run
    /// terminates (no deadlock inside the DES) and every seed comes back
    /// exactly once with a typed outcome.
    #[test]
    fn any_rank_death_schedule_conserves_work_and_terminates(
        seed in 0u64..u64::MAX,
        kill_prob in 0.0f64..1.0,
        window_end in 1.0e-3f64..0.5,
        overlay_block_faults in prop::bool::ANY,
    ) {
        let ds = dataset();
        let seeds = ds.seeds_with_count(Seeding::Sparse, 24);
        let n = seeds.points.len() as u64;
        let mut chaos = RankChaos::seeded(seed);
        chaos.kill_prob = kill_prob;
        chaos.window = (0.0, window_end);
        for algo in Algorithm::ALL {
            let mut cfg = cfg(algo);
            cfg.rank_chaos = Some(chaos);
            let store: Arc<dyn BlockStore> = if overlay_block_faults {
                let mut plan = FaultPlan::new();
                for i in (0..ds.decomp.num_blocks()).step_by(5) {
                    plan = plan.permanent(BlockId(i as u32));
                }
                Arc::new(FaultStore::new(Arc::new(MemoryStore::build(&ds)), plan))
            } else {
                Arc::new(MemoryStore::build(&ds))
            };
            let (report, lines) = run_simulated_detailed_with_store(&ds, &seeds, &cfg, store);
            prop_assert_eq!(lines.len() as u64, n, "{:?}: one result per seed", algo);
            let (done, unavail, lost) = buckets(&lines);
            prop_assert_eq!(done + unavail + lost, n, "{:?}: buckets cover every seed", algo);
            prop_assert_eq!(report.terminated, n, "{:?}: report agrees", algo);
            prop_assert_eq!(
                report.rank_lost_streamlines, lost,
                "{:?}: reported rank-lost matches the curves", algo
            );
            if report.rank_deaths.is_empty() {
                prop_assert_eq!(lost, 0, "{:?}: no deaths, nothing lost", algo);
            }
        }
    }
}

/// Resilient mode armed but no rank ever killed: heartbeats fly, yet the
/// science is bit-identical to a run with the fault model off entirely.
#[test]
fn resilient_mode_without_deaths_is_bit_identical() {
    let ds = dataset();
    let seeds = ds.seeds_with_count(Seeding::Sparse, 24);
    for algo in Algorithm::ALL {
        let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&ds));
        let (_, want) = run_simulated_detailed_with_store(&ds, &seeds, &cfg(algo), store);
        let mut rcfg = cfg(algo);
        let mut chaos = RankChaos::seeded(1);
        chaos.kill_prob = 0.0;
        rcfg.rank_chaos = Some(chaos);
        let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&ds));
        let (report, got) = run_simulated_detailed_with_store(&ds, &seeds, &rcfg, store);
        assert!(report.rank_deaths.is_empty(), "{algo:?}: kill_prob 0 must kill nobody");
        assert_eq!(report.rank_lost_streamlines, 0, "{algo:?}");
        assert_eq!(got.len(), want.len(), "{algo:?}");
        for (g, w) in got.iter().zip(&want) {
            assert_same_streamline(g, w, &format!("{algo:?} resilient-but-lucky"));
        }
    }
}

/// One pinned death on every driver: each streamline that survives — on its
/// original owner or re-run on an adopter — is bit-identical to the
/// fault-free reference, across all four drivers.
#[test]
fn survivors_of_a_rank_death_are_bit_identical_across_drivers() {
    let ds = dataset();
    let seeds = ds.seeds_with_count(Seeding::Sparse, 24);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&ds));
    let (_, reference) =
        run_simulated_detailed_with_store(&ds, &seeds, &cfg(Algorithm::LoadOnDemand), store);
    for algo in Algorithm::ALL {
        let mut c = cfg(algo);
        c.rank_chaos = Some(RankChaos::one_kill(3, 2.0e-3));
        let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&ds));
        let (report, lines) = run_simulated_detailed_with_store(&ds, &seeds, &c, store);
        assert_eq!(report.rank_deaths, vec![(3, 2.0e-3)], "{algo:?}: the kill fired");
        let mut survivors = 0;
        for sl in &lines {
            if sl.status == StreamlineStatus::Terminated(Termination::RankLost) {
                continue;
            }
            let want = &reference[sl.id.0 as usize];
            assert_same_streamline(sl, want, &format!("{algo:?} survivor"));
            survivors += 1;
        }
        assert!(survivors > 0, "{algo:?}: every streamline died with one rank");
    }
}
