//! Cross-crate property-based tests: invariants that must hold for arbitrary
//! problems, not just the curated datasets.

use proptest::prelude::*;
use std::sync::Arc;
use streamline_repro::core::{
    run_simulated_detailed, run_simulated_detailed_with_store, Algorithm, MemoryBudget, RunConfig,
    StealParams,
};
use streamline_repro::field::analytic::{AbcFlow, Uniform, VectorField};
use streamline_repro::field::dataset::{Dataset, DatasetConfig};
use streamline_repro::field::decomp::BlockDecomposition;
use streamline_repro::field::sample::SamplingMode;
use streamline_repro::field::seeds::SeedSet;
use streamline_repro::integrate::StreamlineStatus;
use streamline_repro::iosim::{BlockStore, ChaosParams, FaultPlan, FaultStore, MemoryStore};
use streamline_repro::math::{Aabb, Vec3};

/// A throwaway dataset over the unit cube with an arbitrary constant field
/// direction, 2×2×2 blocks.
fn uniform_dataset(dir: Vec3) -> Dataset {
    let cfg =
        DatasetConfig { blocks_per_axis: [2, 2, 2], cells_per_block: [4, 4, 4], ghost: 1, seed: 1 };
    Dataset::custom(
        "prop-uniform",
        BlockDecomposition::new(Aabb::unit(), cfg.blocks_per_axis, cfg.cells_per_block, cfg.ghost),
        Arc::new(Uniform(dir)),
        SamplingMode::Direct,
        cfg,
    )
}

fn abc_dataset() -> Dataset {
    let cfg =
        DatasetConfig { blocks_per_axis: [2, 2, 2], cells_per_block: [4, 4, 4], ghost: 1, seed: 1 };
    let domain = Aabb::new(Vec3::ZERO, Vec3::splat(std::f64::consts::TAU));
    Dataset::custom(
        "prop-abc",
        BlockDecomposition::new(domain, cfg.blocks_per_axis, cfg.cells_per_block, cfg.ghost),
        Arc::new(AbcFlow::classic()),
        SamplingMode::Direct,
        cfg,
    )
}

fn seed_set(dataset: &Dataset, raw: &[(f64, f64, f64)]) -> SeedSet {
    let b = dataset.decomp.domain.expanded(-1e-3);
    SeedSet {
        label: "prop".into(),
        points: raw.iter().map(|&(x, y, z)| b.from_unit(Vec3::new(x, y, z))).collect(),
    }
}

fn base_cfg(algo: Algorithm, procs: usize) -> RunConfig {
    let mut cfg = RunConfig::new(algo, procs);
    cfg.limits.max_steps = 150;
    cfg.memory = MemoryBudget::unlimited();
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every seed terminates exactly once, under any algorithm, any field
    /// direction, any rank count.
    #[test]
    fn no_streamline_lost_or_duplicated(
        dx in -1.0f64..1.0,
        dy in -1.0f64..1.0,
        dz in -1.0f64..1.0,
        raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..40),
        procs in 1usize..6,
        algo_idx in 0usize..4,
    ) {
        let dir = Vec3::new(dx, dy, dz);
        prop_assume!(dir.norm() > 1e-3);
        let algo = Algorithm::ALL[algo_idx];
        prop_assume!(!(algo == Algorithm::HybridMasterSlave && procs < 2));
        let ds = uniform_dataset(dir);
        let seeds = seed_set(&ds, &raw);
        let (report, finished) = run_simulated_detailed(&ds, &seeds, &base_cfg(algo, procs));
        prop_assert!(report.outcome.completed());
        prop_assert_eq!(report.terminated as usize, raw.len());
        prop_assert_eq!(finished.len(), raw.len());
        // Ids unique and complete.
        let mut ids: Vec<u32> = finished.iter().map(|s| s.id.0).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), raw.len());
    }

    /// In a uniform field every streamline is a straight line: the final
    /// position must lie along the seed + t*dir ray and outside the domain.
    #[test]
    fn uniform_field_gives_straight_exits(
        raw in prop::collection::vec((0.05f64..0.95, 0.05f64..0.95, 0.05f64..0.95), 1..20),
    ) {
        let dir = Vec3::new(1.0, 0.25, -0.5);
        let ds = uniform_dataset(dir);
        let seeds = seed_set(&ds, &raw);
        let mut cfg = base_cfg(Algorithm::LoadOnDemand, 2);
        cfg.limits.max_steps = 100_000;
        let (report, finished) = run_simulated_detailed(&ds, &seeds, &cfg);
        prop_assert!(report.outcome.completed());
        for (s, &(x, y, z)) in finished.iter().zip(raw.iter()) {
            let seed = ds.decomp.domain.expanded(-1e-3).from_unit(Vec3::new(x, y, z));
            let d = s.state.position - seed;
            // Collinear with dir (cross product ~ 0) — interpolation of a
            // constant field is exact, integration of a constant is exact.
            prop_assert!(d.cross(dir).norm() < 1e-6 * d.norm().max(1.0));
            // Exited through a face.
            prop_assert!(!ds.decomp.domain.contains_eps(s.state.position, -1e-9));
        }
    }

    /// Simulated runs are a pure function of their inputs (any algorithm,
    /// chaotic field, arbitrary seeds).
    #[test]
    fn simulation_is_deterministic(
        raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..24),
        algo_idx in 0usize..4,
    ) {
        let algo = Algorithm::ALL[algo_idx];
        let ds = abc_dataset();
        let seeds = seed_set(&ds, &raw);
        let cfg = base_cfg(algo, 4);
        let (r1, f1) = run_simulated_detailed(&ds, &seeds, &cfg);
        let (r2, f2) = run_simulated_detailed(&ds, &seeds, &cfg);
        prop_assert_eq!(r1.wall, r2.wall);
        prop_assert_eq!(r1.msgs, r2.msgs);
        prop_assert_eq!(r1.total_steps, r2.total_steps);
        for (a, b) in f1.iter().zip(f2.iter()) {
            prop_assert_eq!(a.state.position, b.state.position);
            prop_assert_eq!(a.state.steps, b.state.steps);
        }
    }

    /// Total integration work is invariant across algorithms.
    #[test]
    fn total_steps_invariant_across_algorithms(
        raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 4..24),
    ) {
        let ds = abc_dataset();
        let seeds = seed_set(&ds, &raw);
        let mut totals = Vec::new();
        for algo in Algorithm::ALL {
            let (report, _) = run_simulated_detailed(&ds, &seeds, &base_cfg(algo, 4));
            prop_assert!(report.outcome.completed());
            totals.push(report.total_steps);
        }
        prop_assert_eq!(totals[0], totals[1]);
        prop_assert_eq!(totals[0], totals[2]);
        prop_assert_eq!(totals[0], totals[3]);
    }

    /// The decentralized work-stealing driver never deadlocks and conserves
    /// work exactly: for any seed placement, lifeline/diffusion/batch knobs
    /// and injected fault plan, the simulation drains with every streamline
    /// terminal — work created equals work retired, nothing lost to an
    /// un-passed termination token or a streamline parked forever.
    #[test]
    fn steal_driver_never_deadlocks_and_conserves_work(
        raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..32),
        procs in 1usize..9,
        neighbor_degree in 1usize..5,
        diffusion_period in 1e-4f64..1e-1,
        steal_batch in 1usize..12,
        fault_seed in 0u64..1024,
        inject in prop::bool::ANY,
    ) {
        let ds = abc_dataset();
        let seeds = seed_set(&ds, &raw);
        let mut cfg = base_cfg(Algorithm::WorkStealing, procs);
        cfg.steal = StealParams { neighbor_degree, diffusion_period, steal_batch };
        prop_assert!(cfg.steal.validate().is_ok());
        let store: Arc<dyn BlockStore> = if inject {
            let plan = FaultPlan::random(fault_seed, ds.decomp.num_blocks(), &ChaosParams::default())
                .expect("default chaos params are valid");
            Arc::new(FaultStore::new(Arc::new(MemoryStore::build(&ds)), plan))
        } else {
            Arc::new(MemoryStore::build(&ds))
        };
        let (report, finished) = run_simulated_detailed_with_store(&ds, &seeds, &cfg, store);
        // The event queue drained and the Safra wave fired — a deadlocked
        // ring would instead trip the simulator's livelock guard.
        prop_assert!(report.outcome.completed(), "{}", report.summary());
        // Work conservation: every created streamline retired exactly once,
        // even the ones a fault plan cost (they retire as BlockUnavailable
        // on whichever rank held them — there is no master pool to prune).
        prop_assert_eq!(report.terminated as usize, raw.len());
        prop_assert_eq!(finished.len(), raw.len());
        let mut ids: Vec<u32> = finished.iter().map(|s| s.id.0).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), raw.len());
        for s in &finished {
            prop_assert!(
                matches!(s.status, StreamlineStatus::Terminated(_)),
                "{:?} not terminal: {:?}", s.id, s.status
            );
        }
    }
}

#[test]
fn abc_dataset_field_is_the_analytic_field_at_nodes() {
    // Sanity for the property harness itself: sampled blocks reproduce the
    // analytic field to f32 precision at node points.
    let ds = abc_dataset();
    let block = ds.build_block(streamline_repro::field::BlockId(3));
    let f = AbcFlow::classic();
    let c = block.bounds.center();
    let v = block.sample(c).unwrap();
    assert!(v.distance(f.eval(c)) < 1e-3, "sampled {v:?} vs analytic {:?}", f.eval(c));
}
