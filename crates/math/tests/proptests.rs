//! Property-based tests for the math substrate.

use proptest::prelude::*;
use streamline_math::{Aabb, Vec3};

fn vec3() -> impl Strategy<Value = Vec3> {
    (-1e3f64..1e3, -1e3f64..1e3, -1e3f64..1e3).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn add_commutes(a in vec3(), b in vec3()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn dot_bilinear(a in vec3(), b in vec3(), s in -100f64..100.0) {
        let lhs = (a * s).dot(b);
        let rhs = s * a.dot(b);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn cross_is_orthogonal(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        let scale = a.norm() * b.norm();
        prop_assume!(scale > 1e-9);
        prop_assert!(c.dot(a).abs() <= 1e-9 * scale * a.norm().max(1.0));
        prop_assert!(c.dot(b).abs() <= 1e-9 * scale * b.norm().max(1.0));
    }

    #[test]
    fn cauchy_schwarz(a in vec3(), b in vec3()) {
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() * (1.0 + 1e-12));
    }

    #[test]
    fn triangle_inequality(a in vec3(), b in vec3()) {
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn normalized_is_unit(a in vec3()) {
        prop_assume!(a.norm() > 1e-6);
        let n = a.normalized().unwrap();
        prop_assert!((n.norm() - 1.0).abs() < 1e-12);
        // Same direction.
        prop_assert!(n.dot(a) > 0.0);
    }

    #[test]
    fn lerp_stays_on_segment(a in vec3(), b in vec3(), t in 0f64..1.0) {
        let p = a.lerp(b, t);
        // p - a and b - a are parallel.
        let d = (p - a).cross(b - a).norm();
        prop_assert!(d <= 1e-6 * (b - a).norm_sq().max(1.0));
    }

    #[test]
    fn aabb_contains_its_samples(a in vec3(), b in vec3(), u in 0f64..1.0, v in 0f64..1.0, w in 0f64..1.0) {
        let bb = Aabb::new(a, b);
        let p = bb.from_unit(Vec3::new(u, v, w));
        prop_assert!(bb.contains_eps(p, 1e-9 * bb.size().max_abs_component().max(1.0)));
    }

    #[test]
    fn aabb_clamp_is_inside_and_idempotent(a in vec3(), b in vec3(), p in vec3()) {
        let bb = Aabb::new(a, b);
        let q = bb.clamp_point(p);
        prop_assert!(bb.contains(q));
        prop_assert_eq!(bb.clamp_point(q), q);
    }

    #[test]
    fn aabb_union_contains_both(a in vec3(), b in vec3(), c in vec3(), d in vec3()) {
        let x = Aabb::new(a, b);
        let y = Aabb::new(c, d);
        let u = x.union(&y);
        prop_assert!(u.contains(x.min) && u.contains(x.max));
        prop_assert!(u.contains(y.min) && u.contains(y.max));
    }

    #[test]
    fn expanded_monotone(a in vec3(), b in vec3(), d in 0f64..10.0, p in vec3()) {
        let bb = Aabb::new(a, b);
        if bb.contains(p) {
            prop_assert!(bb.expanded(d).contains(p));
        }
    }
}
