//! Floating-point comparison helpers used by tests and step-size control.

/// Absolute-difference comparison: `|a - b| <= tol`.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Combined absolute/relative comparison, the form used by the adaptive
/// integrator's error norm: `|a - b| <= atol + rtol * max(|a|, |b|)`.
#[inline]
pub fn approx_eq_rel(a: f64, b: f64, atol: f64, rtol: f64) -> bool {
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

/// Clamp `v` into `[lo, hi]`.
///
/// Unlike `f64::clamp` this does not panic on `lo > hi`; it returns `lo`,
/// which is the safe choice inside the step-size controller.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    if lo > hi {
        return lo;
    }
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-10));
    }

    #[test]
    fn approx_eq_rel_scales() {
        // 1e6 vs 1e6+1 passes at rtol 1e-5 but fails at pure atol 1e-3.
        assert!(approx_eq_rel(1.0e6, 1.0e6 + 1.0, 1e-3, 1e-5));
        assert!(!approx_eq(1.0e6, 1.0e6 + 1.0, 1e-3));
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        // Degenerate interval does not panic.
        assert_eq!(clamp(0.5, 2.0, 1.0), 2.0);
    }
}
