//! Summary statistics for the benchmark harness.
//!
//! The figure binaries report per-rank distributions (load imbalance, idle
//! time), so we need means, percentiles and a tiny online accumulator.

use serde::{Deserialize, Serialize};

/// Summary of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub std_dev: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` on an empty sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        // total_cmp: NaN sorts to the high end instead of panicking, so a
        // poisoned sample degrades to NaN statistics rather than aborting
        // the whole harness run.
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            std_dev: var.sqrt(),
        })
    }

    /// Ratio of the largest per-rank value to the mean — the classic load
    /// imbalance factor (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max / self.mean
        }
    }
}

/// Linear-interpolated percentile of an already sorted sample; `q` in `[0,1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// A fixed-bin histogram over `[min, max)`; out-of-range samples clamp to
/// the edge bins. Used by the harness for step-count and arc-length
/// distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    pub min: f64,
    pub max: f64,
    pub counts: Vec<u64>,
    pub total: u64,
}

impl Histogram {
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(bins >= 1 && max > min);
        Histogram { min, max, counts: vec![0; bins], total: 0 }
    }

    pub fn push(&mut self, v: f64) {
        let bins = self.counts.len();
        let x = (v - self.min) / (self.max - self.min) * bins as f64;
        let idx = (x.floor().max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Lower edge of bin `i`.
    pub fn edge(&self, i: usize) -> f64 {
        self.min + (self.max - self.min) * i as f64 / self.counts.len() as f64
    }

    /// One-line sparkline of the distribution.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.counts
            .iter()
            .map(|&c| {
                let level = (c as f64 / max as f64 * (GLYPHS.len() - 1) as f64).round() as usize;
                GLYPHS[level]
            })
            .collect()
    }
}

/// Online mean/max accumulator (Welford), used for per-rank counters that are
/// folded as events stream in.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    max: f64,
    total: f64,
}

impl Accumulator {
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.total += v;
        let d = v - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (v - self.mean);
        if self.count == 1 || v > self.max {
            self.max = v;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn total(&self) -> f64 {
        self.total
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(approx_eq(s.mean, 2.5, 1e-12));
        assert!(approx_eq(s.p50, 2.5, 1e-12));
    }

    #[test]
    fn summary_with_nan_does_not_panic() {
        // Regression: `sort_by(partial_cmp.expect(...))` panicked on NaN.
        // NaN now sorts last (total order), so max/p95 go NaN while the
        // clean prefix still orders correctly — and nothing aborts.
        let s = Summary::of(&[2.0, f64::NAN, 1.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert!(s.max.is_nan());
        assert!(s.mean.is_nan());
        let all_nan = Summary::of(&[f64::NAN, f64::NAN]).unwrap();
        assert!(all_nan.min.is_nan() && all_nan.max.is_nan());
    }

    #[test]
    fn summary_unordered_input() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!(approx_eq(percentile_sorted(&sorted, 0.25), 2.5, 1e-12));
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn imbalance_of_uniform_is_one() {
        let s = Summary::of(&[2.0, 2.0, 2.0]).unwrap();
        assert!(approx_eq(s.imbalance(), 1.0, 1e-12));
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.5, 1.0, 2.5, 9.9, -3.0, 42.0] {
            h.push(v);
        }
        assert_eq!(h.total, 6);
        // -3.0 clamps into bin 0; 42.0 into the last bin.
        assert_eq!(h.counts, vec![3, 1, 0, 0, 2]);
        assert_eq!(h.edge(0), 0.0);
        assert_eq!(h.edge(4), 8.0);
    }

    #[test]
    fn histogram_sparkline_shape() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for _ in 0..8 {
            h.push(0.5);
        }
        h.push(1.5);
        let s: Vec<char> = h.sparkline().chars().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], '█');
        assert!(s[1] < s[0]);
    }

    #[test]
    fn accumulator_matches_batch() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut acc = Accumulator::default();
        for v in data {
            acc.push(v);
        }
        let s = Summary::of(&data).unwrap();
        assert!(approx_eq(acc.mean(), s.mean, 1e-12));
        assert!(approx_eq(acc.variance().sqrt(), s.std_dev, 1e-12));
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.total(), data.iter().sum::<f64>());
    }
}
