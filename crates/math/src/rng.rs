//! Deterministic RNG streams.
//!
//! Every randomized part of the system (seed-point placement, field
//! perturbation phases, tie-breaking in the hybrid master) draws from a
//! ChaCha8 stream derived from a master experiment seed plus a purpose label,
//! so that experiments reproduce bit-for-bit across runs and platforms and
//! independent subsystems never share a stream.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::vec3::Vec3;
use crate::Aabb;

/// The RNG used throughout the workspace.
pub type Stream = ChaCha8Rng;

/// Derive an independent RNG stream from `(master_seed, label)`.
///
/// The label is hashed with FNV-1a so that distinct purposes ("seeds",
/// "perturbation", ...) get decorrelated streams even for adjacent seeds.
pub fn stream(master_seed: u64, label: &str) -> Stream {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(master_seed ^ h)
}

/// Uniform point inside a box.
pub fn point_in_aabb(rng: &mut impl Rng, b: &Aabb) -> Vec3 {
    Vec3::new(
        rng.gen_range(b.min.x..=b.max.x),
        rng.gen_range(b.min.y..=b.max.y),
        rng.gen_range(b.min.z..=b.max.z),
    )
}

/// Uniform point inside a ball of radius `r` around `center`
/// (rejection-sampled, so exactly uniform).
pub fn point_in_ball(rng: &mut impl Rng, center: Vec3, r: f64) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen_range(-1.0..=1.0),
            rng.gen_range(-1.0..=1.0),
            rng.gen_range(-1.0..=1.0),
        );
        if v.norm_sq() <= 1.0 {
            return center + v * r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = stream(42, "seeds");
        let mut b = stream(42, "seeds");
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn labels_decorrelate() {
        let mut a = stream(42, "seeds");
        let mut b = stream(42, "perturbation");
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn point_in_aabb_is_contained() {
        let b = Aabb::new(Vec3::new(-2.0, 0.0, 5.0), Vec3::new(3.0, 1.0, 9.0));
        let mut rng = stream(7, "t");
        for _ in 0..200 {
            assert!(b.contains(point_in_aabb(&mut rng, &b)));
        }
    }

    #[test]
    fn point_in_ball_is_contained() {
        let c = Vec3::new(1.0, 2.0, 3.0);
        let mut rng = stream(7, "t");
        for _ in 0..200 {
            assert!(point_in_ball(&mut rng, c, 0.5).distance(c) <= 0.5 + 1e-12);
        }
    }
}
