//! Axis-aligned bounding boxes.
//!
//! Blocks of the decomposed mesh are axis-aligned boxes; point-in-block tests
//! during advection are the hottest geometric query in the system.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned box `[min, max]`, inclusive on all faces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// Build from two corners; the corners need not be ordered.
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb { min: a.min(b), max: a.max(b) }
    }

    /// The unit cube `[0,1]^3`.
    pub fn unit() -> Self {
        Aabb { min: Vec3::ZERO, max: Vec3::splat(1.0) }
    }

    /// A cube centred at the origin with half-width `h`.
    pub fn centered_cube(h: f64) -> Self {
        Aabb { min: Vec3::splat(-h), max: Vec3::splat(h) }
    }

    #[inline]
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// Inclusive containment test (points on faces count as inside).
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Containment with boundary tolerance `eps` (expands the box by `eps`).
    #[inline]
    pub fn contains_eps(&self, p: Vec3, eps: f64) -> bool {
        self.expanded(eps).contains(p)
    }

    /// The box grown by `d` on every face (shrunk when `d < 0`).
    pub fn expanded(&self, d: f64) -> Aabb {
        Aabb { min: self.min - Vec3::splat(d), max: self.max + Vec3::splat(d) }
    }

    /// True when the two boxes overlap (inclusive of shared faces).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Smallest box containing both.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Closest point of the box to `p` (equals `p` when `p` is inside).
    pub fn clamp_point(&self, p: Vec3) -> Vec3 {
        p.max(self.min).min(self.max)
    }

    /// Map a point in the box to normalized `[0,1]^3` coordinates.
    pub fn to_unit(&self, p: Vec3) -> Vec3 {
        (p - self.min).div_elem(self.size())
    }

    /// Map normalized `[0,1]^3` coordinates back into the box.
    pub fn from_unit(&self, u: Vec3) -> Vec3 {
        self.min + u.mul_elem(self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_orders_corners() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 5.0), Vec3::new(0.0, 2.0, 4.0));
        assert_eq!(b.min, Vec3::new(0.0, -1.0, 4.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 5.0));
    }

    #[test]
    fn contains_boundary_inclusive() {
        let b = Aabb::unit();
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(!b.contains(Vec3::new(1.0 + 1e-12, 0.5, 0.5)));
    }

    #[test]
    fn contains_eps_expands() {
        let b = Aabb::unit();
        assert!(b.contains_eps(Vec3::new(1.0 + 1e-9, 0.5, 0.5), 1e-8));
        assert!(!b.contains_eps(Vec3::new(1.1, 0.5, 0.5), 1e-8));
    }

    #[test]
    fn volume_and_center() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.volume(), 24.0);
        assert_eq!(b.center(), Vec3::new(1.0, 1.5, 2.0));
    }

    #[test]
    fn intersects_shared_face() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        let c = Aabb::new(Vec3::new(1.5, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Vec3::splat(0.5)));
        assert!(u.contains(Vec3::splat(2.5)));
    }

    #[test]
    fn clamp_point_inside_is_identity() {
        let b = Aabb::unit();
        let p = Vec3::splat(0.25);
        assert_eq!(b.clamp_point(p), p);
        assert_eq!(b.clamp_point(Vec3::new(2.0, -1.0, 0.5)), Vec3::new(1.0, 0.0, 0.5));
    }

    #[test]
    fn unit_coordinate_roundtrip() {
        let b = Aabb::new(Vec3::new(-1.0, 2.0, 0.0), Vec3::new(3.0, 6.0, 8.0));
        let p = Vec3::new(1.0, 3.0, 2.0);
        let u = b.to_unit(p);
        assert_eq!(b.from_unit(u), p);
        assert_eq!(b.to_unit(b.min), Vec3::ZERO);
        assert_eq!(b.to_unit(b.max), Vec3::splat(1.0));
    }
}
