//! Small math substrate shared by every crate in the streamline workspace.
//!
//! Provides the 3-component vector type used for positions and field values,
//! axis-aligned bounding boxes used for block extents, summary statistics used
//! by the benchmark harness, and deterministic RNG streams so every experiment
//! is reproducible bit-for-bit.

pub mod aabb;
pub mod float;
pub mod rng;
pub mod stats;
pub mod vec3;

pub use aabb::Aabb;
pub use vec3::Vec3;
