//! A minimal 3-component `f64` vector.
//!
//! Positions, velocities and magnetic-field samples are all `Vec3`. The type is
//! `Copy` and 24 bytes, so it is passed by value everywhere.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component double-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to `rhs`.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Unit vector in the same direction; `None` when the norm is not a
    /// positive finite number (zero, NaN or infinite input).
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n.is_finite() && n > 0.0 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Component-wise product (Hadamard product).
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise quotient.
    #[inline]
    pub fn div_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x / rhs.x, self.y / rhs.y, self.z / rhs.z)
    }

    /// Linear interpolation: `self` at `t = 0`, `rhs` at `t = 1`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// Largest absolute component.
    #[inline]
    pub fn max_abs_component(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// True when all three components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as an array, for serialization and indexed access.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }

    /// Lossy narrowing to `f32` components, used by the on-disk block format.
    #[inline]
    pub fn to_f32_array(self) -> [f32; 3] {
        [self.x as f32, self.y as f32, self.z as f32]
    }

    #[inline]
    pub fn from_f32_array(a: [f32; 3]) -> Vec3 {
        Vec3::new(a[0] as f64, a[1] as f64, a[2] as f64)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn add_sub_roundtrip() {
        let a = Vec3::new(1.0, -2.0, 3.5);
        let b = Vec3::new(0.25, 4.0, -1.5);
        assert_eq!(a + b - b, a);
    }

    #[test]
    fn dot_orthogonal_axes() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::Y.dot(Vec3::Z), 0.0);
        assert_eq!(Vec3::X.dot(Vec3::X), 1.0);
    }

    #[test]
    fn cross_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_anticommutative() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
    }

    #[test]
    fn norm_of_345() {
        assert!(approx_eq(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0, 1e-15));
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        assert!(Vec3::new(f64::NAN, 0.0, 0.0).normalized().is_none());
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vec3::new(2.0, -7.0, 0.3).normalized().unwrap();
        assert!(approx_eq(v.norm(), 1.0, 1e-14));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(3.0, 0.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 0.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(3.0, 5.0, -1.0));
    }

    #[test]
    fn index_matches_fields() {
        let v = Vec3::new(9.0, 8.0, 7.0);
        assert_eq!(v[0], 9.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 7.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn f32_roundtrip_is_close() {
        let v = Vec3::new(1.25, -3.5, 0.0625);
        // Values exactly representable in f32 roundtrip exactly.
        assert_eq!(Vec3::from_f32_array(v.to_f32_array()), v);
    }

    #[test]
    fn sum_of_iter() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f64)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }
}
