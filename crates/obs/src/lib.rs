//! Unified observability for the streamline workspace.
//!
//! The paper's entire evaluation (§5) is observability — wall-clock, total
//! I/O time, total communication time, block efficiency `E = (B_L − B_P)/B_L`
//! (Eq. 2), and the Gantt-style utilization analysis behind §8's "processor
//! starvation". This crate is the shared substrate all of it reports
//! through:
//!
//! - [`MetricsRegistry`]: named counters, gauges, and log2 histograms with
//!   lock-free updates through cloned handles. Registration takes a short
//!   mutex; the hot path is one relaxed atomic op. Stable metric names live
//!   in [`names`].
//! - [`PhaseTimeline`]: per-rank, fixed-width-bucket accounting of the four
//!   phases ([`Phase::Compute`], [`Phase::Io`], [`Phase::Comm`],
//!   [`Phase::Idle`]). The desim drivers fill it with *virtual* seconds;
//!   [`WallTimeline`] wraps it behind a mutex and an epoch so threaded and
//!   serve runs can fill it with *wall* seconds. Either exports the same
//!   JSON [`TraceFile`] (schema [`TRACE_SCHEMA`]).
//! - [`prom`]: Prometheus text exposition of a registry snapshot, plus a
//!   parser for it so tests (and the CI smoke step) can reconcile the
//!   export against the legacy report structs bit-for-bit.

pub mod names;
pub mod prom;
pub mod registry;
pub mod timeline;

pub use registry::{Counter, Gauge, Histogram, MetricValue, MetricsRegistry, HIST_BUCKETS};
pub use timeline::{
    Phase, PhaseTimeline, PhaseTotals, RankTrace, ScheduleTrace, TraceFile, WallTimeline,
    TRACE_SCHEMA,
};
