//! The metric registry: named counters, gauges, and log2 histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! the registered storage: fetch them once at startup and every subsequent
//! update is a single relaxed atomic operation, uncontended across threads.
//! The registry mutex is only taken to register/fetch by name and to
//! snapshot.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two histogram buckets. Bucket `i > 0` covers integer
/// values in `[2^(i-1), 2^i)`; bucket 0 holds exact zeros. With nanosecond
/// values, 2^63 ns ≈ 292 years, so the top bucket is unreachable in
/// practice.
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing `u64` metric.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful in tests and as a
    /// struct-field default).
    pub fn standalone() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value. Only for mirroring a legacy snapshot struct into
    /// the registry; live instrumentation should use [`Counter::inc`]/
    /// [`Counter::add`].
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An `f64` metric that can move in either direction (stored as bits in an
/// `AtomicU64`).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn standalone() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[derive(Debug)]
struct HistogramCore {
    counts: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

/// A fixed-size log2 histogram of `u64` samples (typically nanoseconds).
///
/// Recording is two relaxed atomic increments; quantiles are approximate,
/// resolved to the geometric midpoint of a power-of-two bucket (within
/// ~±41% of the true value — ample for separating microseconds from
/// milliseconds from seconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn standalone() -> Self {
        Histogram::default()
    }

    /// The bucket a value lands in: 0 for 0, else `floor(log2(v)) + 1`.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    pub fn record(&self, value: u64) {
        self.0.counts[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// The value at quantile `q` in `[0, 1]`, or `None` if nothing has been
    /// recorded. Resolved to the geometric midpoint of the bucket containing
    /// the q-th sample.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let snapshot = self.bucket_counts();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in snapshot.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Geometric midpoint of [2^(i-1), 2^i); bucket 0 is exact.
                return Some(if i == 0 { 0 } else { 2f64.powf(i as f64 - 0.5) as u64 });
            }
        }
        unreachable!("rank <= total")
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time reading of one metric, as produced by
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    /// Per-bucket (non-cumulative) counts plus the running sum.
    Histogram {
        count: u64,
        sum: u64,
        buckets: Vec<u64>,
    },
}

/// Named metrics, keyed by Prometheus-legal names (see [`crate::names`] for
/// the stable ones used across the workspace).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn validate_name(name: &str) {
        let mut chars = name.chars();
        let ok = match chars.next() {
            Some(c) => {
                (c.is_ascii_alphabetic() || c == '_' || c == ':')
                    && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            }
            None => false,
        };
        assert!(ok, "invalid metric name `{name}`: must match [a-zA-Z_:][a-zA-Z0-9_:]*");
    }

    /// Register-or-fetch a counter. Panics if `name` is already registered
    /// as a different kind or is not a legal metric name.
    pub fn counter(&self, name: &str) -> Counter {
        Self::validate_name(name);
        let mut metrics = self.metrics.lock();
        let m = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::standalone()));
        match m {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Register-or-fetch a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Self::validate_name(name);
        let mut metrics = self.metrics.lock();
        let m =
            metrics.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Gauge::standalone()));
        match m {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Register-or-fetch a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        Self::validate_name(name);
        let mut metrics = self.metrics.lock();
        let m = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::standalone()));
        match m {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Convenience: register-or-fetch and overwrite in one call (for
    /// mirroring legacy snapshot structs).
    pub fn set_counter(&self, name: &str, v: u64) {
        self.counter(name).set(v);
    }

    pub fn add_counter(&self, name: &str, v: u64) {
        self.counter(name).add(v);
    }

    pub fn set_gauge(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Read one metric, or `None` if nothing is registered under `name`.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        let metrics = self.metrics.lock();
        metrics.get(name).map(Self::read)
    }

    fn read(m: &Metric) -> MetricValue {
        match m {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => MetricValue::Histogram {
                count: h.count(),
                sum: h.sum(),
                buckets: h.bucket_counts(),
            },
        }
    }

    /// Read every metric. Per-metric reads are atomic; the snapshot as a
    /// whole is not (concurrent writers may land between reads).
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        let metrics = self.metrics.lock();
        metrics.iter().map(|(name, m)| (name.clone(), Self::read(m))).collect()
    }

    /// Render every metric in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        crate::prom::render(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_storage() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.get("requests_total"), Some(MetricValue::Counter(3)));
    }

    #[test]
    fn gauge_set_add_roundtrip() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(1.5);
        g.add(-0.25);
        assert_eq!(g.get(), 1.25);
        assert_eq!(reg.get("depth"), Some(MetricValue::Gauge(1.25)));
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let h = Histogram::standalone();
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1028);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1, "zero lands in bucket 0");
        assert_eq!(counts[1], 1, "1 lands in [1,2)");
        assert_eq!(counts[2], 1, "3 lands in [2,4)");
        assert_eq!(counts[11], 1, "1024 lands in [1024,2048)");
    }

    #[test]
    fn histogram_quantiles_match_legacy_latency_semantics() {
        let h = Histogram::standalone();
        for _ in 0..90 {
            h.record(100_000); // ~100 us in ns
        }
        for _ in 0..10 {
            h.record(50_000_000); // 50 ms
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!((50_000..=200_000).contains(&p50), "p50 = {p50}");
        assert!((25_000_000..=100_000_000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0).unwrap(), p99);
        assert!(Histogram::standalone().quantile(0.5).is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").inc();
        reg.gauge("a_gauge").set(2.0);
        reg.histogram("c_hist").record(5);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a_gauge", "b_total", "c_hist"]);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x_total");
        reg.gauge("x_total");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        MetricsRegistry::new().counter("1bad name");
    }
}
