//! Per-rank phase timelines: virtual-time (desim) and wall-clock (threads,
//! serve) utilization accounting over fixed-width buckets, and the JSON
//! trace file both export.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Schema tag written into every [`TraceFile`].
pub const TRACE_SCHEMA: &str = "streamline-trace-v1";

/// What a span of time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Compute,
    Io,
    Comm,
    Idle,
}

impl Phase {
    pub const ALL: [Phase; 4] = [Phase::Compute, Phase::Io, Phase::Comm, Phase::Idle];

    pub fn index(self) -> usize {
        match self {
            Phase::Compute => 0,
            Phase::Io => 1,
            Phase::Comm => 2,
            Phase::Idle => 3,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Io => "io",
            Phase::Comm => "comm",
            Phase::Idle => "idle",
        }
    }
}

/// Per-rank, per-bucket seconds, split by phase.
///
/// Buckets are fixed-width windows of the run's time axis (virtual seconds
/// in desim runs, wall seconds since the epoch in threaded/serve runs). The
/// result is a utilization heat map over (rank, time) — the direct
/// visualization of load imbalance and of §8's "processor starvation".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTimeline {
    pub bucket_width: f64,
    pub n_ranks: usize,
    /// `[rank][bucket] = [compute, io, comm, idle]` seconds.
    buckets: Vec<Vec<[f64; 4]>>,
}

impl PhaseTimeline {
    pub fn new(n_ranks: usize, bucket_width: f64) -> Self {
        assert!(bucket_width > 0.0 && bucket_width.is_finite());
        PhaseTimeline { bucket_width, n_ranks, buckets: vec![Vec::new(); n_ranks] }
    }

    /// Record `dt` seconds of `phase` starting at `t0` on `rank`,
    /// distributing it across the buckets it spans.
    ///
    /// Bucket selection is integer arithmetic with an explicit boundary
    /// correction, not a floating-point epsilon nudge: `t0 / width` can land
    /// one bucket off in either direction once its magnitude is large enough
    /// that an absolute nudge (the old `+ 1e-9`) is below one ulp of the
    /// quotient. The correction loops walk to the unique bucket `b` with
    /// `b*width <= t0 < (b+1)*width` under the same rounding the readers
    /// use, so a charge starting exactly on a boundary lands in the bucket
    /// it opens — at any magnitude — and no bucket is ever skipped.
    pub fn add(&mut self, rank: usize, phase: Phase, t0: f64, dt: f64) {
        debug_assert!(rank < self.n_ranks);
        debug_assert!(t0 >= 0.0 && t0.is_finite());
        if dt <= 0.0 || !dt.is_finite() || !t0.is_finite() || t0 < 0.0 {
            return;
        }
        let k = phase.index();
        let w = self.bucket_width;
        let end = t0 + dt;
        let mut b = (t0 / w) as usize;
        while (b + 1) as f64 * w <= t0 {
            b += 1;
        }
        while b > 0 && b as f64 * w > t0 {
            b -= 1;
        }
        let row = &mut self.buckets[rank];
        loop {
            let b_end = (b + 1) as f64 * w;
            let lo = t0.max(b as f64 * w);
            let hi = end.min(b_end);
            if hi > lo {
                if row.len() <= b {
                    row.resize(b + 1, [0.0; 4]);
                }
                row[b][k] += hi - lo;
            }
            if end <= b_end {
                break;
            }
            b += 1;
        }
    }

    /// Number of buckets in the longest rank row.
    pub fn n_buckets(&self) -> usize {
        self.buckets.iter().map(|r| r.len()).max().unwrap_or(0)
    }

    /// Busy fraction (compute + I/O + comm; recorded idle excluded) of one
    /// (rank, bucket) cell, in `[0, 1+ε]`.
    pub fn utilization(&self, rank: usize, bucket: usize) -> f64 {
        self.buckets[rank]
            .get(bucket)
            .map(|b| (b[0] + b[1] + b[2]) / self.bucket_width)
            .unwrap_or(0.0)
    }

    /// Mean utilization across ranks for one bucket.
    pub fn mean_utilization(&self, bucket: usize) -> f64 {
        (0..self.n_ranks).map(|r| self.utilization(r, bucket)).sum::<f64>() / self.n_ranks as f64
    }

    /// Seconds of `phase` recorded for `rank`, across all buckets.
    pub fn phase_total(&self, rank: usize, phase: Phase) -> f64 {
        let k = phase.index();
        self.buckets[rank].iter().map(|b| b[k]).sum()
    }

    /// Per-phase seconds summed over all ranks.
    pub fn totals(&self) -> PhaseTotals {
        let mut t = PhaseTotals::default();
        for rank in 0..self.n_ranks {
            t.compute += self.phase_total(rank, Phase::Compute);
            t.io += self.phase_total(rank, Phase::Io);
            t.comm += self.phase_total(rank, Phase::Comm);
            t.idle += self.phase_total(rank, Phase::Idle);
        }
        t
    }

    /// ASCII heat map: one row per rank, one column per bucket (columns are
    /// merged down to at most `max_cols`). `#` ≈ fully busy, space = idle.
    pub fn render(&self, max_cols: usize) -> String {
        let nb = self.n_buckets().max(1);
        let merge = nb.div_ceil(max_cols.max(1));
        let cols = nb.div_ceil(merge);
        let shades = [' ', '.', ':', 'x', '#'];
        let mut out = String::new();
        for rank in 0..self.n_ranks {
            let mut row = String::with_capacity(cols + 8);
            row.push_str(&format!("{rank:>4} |"));
            for c in 0..cols {
                let mut u = 0.0;
                for b in c * merge..((c + 1) * merge).min(nb) {
                    u += self.utilization(rank, b);
                }
                u /= merge as f64;
                let level =
                    ((u * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
                row.push(shades[level]);
            }
            row.push('|');
            out.push_str(&row);
            out.push('\n');
        }
        out
    }

    /// Fraction of total (rank × time) area that was not busy — the headline
    /// starvation number. Derived from the busy phases (independent of
    /// whether idle spans were recorded explicitly).
    pub fn idle_fraction(&self) -> f64 {
        let nb = self.n_buckets();
        if nb == 0 {
            return 0.0;
        }
        let total = (nb * self.n_ranks) as f64 * self.bucket_width;
        let busy: f64 =
            self.buckets.iter().flat_map(|r| r.iter()).map(|b| b[0] + b[1] + b[2]).sum();
        (1.0 - busy / total).max(0.0)
    }

    /// Export as a [`TraceFile`]. `clock` should be `"virtual"` (desim) or
    /// `"wall"` (threads/serve).
    pub fn to_trace(&self, clock: &str) -> TraceFile {
        let nb = self.n_buckets();
        let ranks: Vec<RankTrace> = (0..self.n_ranks)
            .map(|rank| {
                let mut buckets = self.buckets[rank].clone();
                buckets.resize(nb, [0.0; 4]);
                RankTrace {
                    rank,
                    totals: PhaseTotals {
                        compute: self.phase_total(rank, Phase::Compute),
                        io: self.phase_total(rank, Phase::Io),
                        comm: self.phase_total(rank, Phase::Comm),
                        idle: self.phase_total(rank, Phase::Idle),
                    },
                    buckets,
                }
            })
            .collect();
        TraceFile {
            schema: TRACE_SCHEMA.to_string(),
            clock: clock.to_string(),
            bucket_width: self.bucket_width,
            n_ranks: self.n_ranks,
            phases: Phase::ALL.iter().map(|p| p.name().to_string()).collect(),
            totals: self.totals(),
            ranks,
            schedule: None,
        }
    }
}

/// Scheduling-diagnostics series (the follow-up load-balancing papers'
/// quantities), derived from a [`PhaseTimeline`] plus the run's ping-pong
/// arrival times. Rides inside a [`TraceFile`] as an optional section so
/// pre-existing traces still parse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleTrace {
    /// Per-bucket participation: mean over ranks of the fraction of the
    /// bucket spent computing, in `[0, 1]`. The follow-up literature's
    /// headline scheduling curve ("what fraction of the machine is actually
    /// integrating right now").
    pub participation: Vec<f64>,
    /// Cumulative ping-pong arrivals at the end of each bucket (monotone
    /// nondecreasing; last value = total ping-pong events).
    pub pingpong_cumulative: Vec<u64>,
    /// Each phase's share of the total `ranks × buckets × width` area;
    /// the four shares sum to at most 1 (uncharged time is unattributed).
    pub shares: PhaseTotals,
    /// Rank fail-stop deaths applied during the run, as raw
    /// `(rank, virtual time)` events. Empty on fault-free runs;
    /// `#[serde(default)]` keeps pre-existing traces parsing.
    #[serde(default)]
    pub rank_deaths: Vec<(usize, f64)>,
    /// Cumulative applied rank deaths at the end of each bucket, aligned
    /// with the other series. Empty unless deaths were recorded.
    #[serde(default)]
    pub rank_deaths_cumulative: Vec<u64>,
    /// Cumulative ingest epochs that have *arrived* by the end of each
    /// bucket — the open-vs-closed signature series: a closed run never
    /// records it (empty), an open run shows a staircase climbing while
    /// work is already draining. `#[serde(default)]` keeps older traces
    /// parsing.
    #[serde(default)]
    pub ingest_epochs_cumulative: Vec<u64>,
    /// Cumulative ingest epochs the termination frontier has *confirmed
    /// complete* by the end of each bucket, aligned with the arrival
    /// staircase (always at or below it — an epoch cannot complete before
    /// it arrives). Empty on closed runs and under the closed-set detector.
    #[serde(default)]
    pub frontier_epochs_cumulative: Vec<u64>,
}

impl ScheduleTrace {
    /// Derive the series from a recorded timeline and the sorted virtual
    /// times of ping-pong arrivals. Arrivals past the last bucket are
    /// counted in the last bucket (they happened by end of run).
    pub fn from_timeline(timeline: &PhaseTimeline, pingpong_times: &[f64]) -> Self {
        let nb = timeline.n_buckets();
        let w = timeline.bucket_width;
        let participation: Vec<f64> = (0..nb)
            .map(|b| {
                let sum: f64 = (0..timeline.n_ranks)
                    .map(|r| {
                        timeline.buckets[r]
                            .get(b)
                            .map(|cell| (cell[Phase::Compute.index()] / w).clamp(0.0, 1.0))
                            .unwrap_or(0.0)
                    })
                    .sum();
                if timeline.n_ranks == 0 {
                    0.0
                } else {
                    sum / timeline.n_ranks as f64
                }
            })
            .collect();
        let mut pingpong_cumulative = vec![0u64; nb];
        if nb > 0 {
            for &t in pingpong_times {
                let b = ((t / w) as usize).min(nb - 1);
                pingpong_cumulative[b] += 1;
            }
            for b in 1..nb {
                pingpong_cumulative[b] += pingpong_cumulative[b - 1];
            }
        }
        let area = (timeline.n_ranks * nb) as f64 * w;
        let totals = timeline.totals();
        let shares = if area > 0.0 {
            PhaseTotals {
                compute: totals.compute / area,
                io: totals.io / area,
                comm: totals.comm / area,
                idle: totals.idle / area,
            }
        } else {
            PhaseTotals::default()
        };
        ScheduleTrace {
            participation,
            pingpong_cumulative,
            shares,
            rank_deaths: Vec::new(),
            rank_deaths_cumulative: Vec::new(),
            ingest_epochs_cumulative: Vec::new(),
            frontier_epochs_cumulative: Vec::new(),
        }
    }

    /// Attach a run's applied rank-death schedule: the raw `(rank, time)`
    /// events plus a cumulative per-bucket series aligned with the other
    /// curves. A death past the last bucket counts in the last bucket (it
    /// happened by end of run). No-op when `deaths` is empty, so fault-free
    /// traces stay byte-identical.
    pub fn with_rank_deaths(mut self, timeline: &PhaseTimeline, deaths: &[(usize, f64)]) -> Self {
        if deaths.is_empty() {
            return self;
        }
        let nb = timeline.n_buckets();
        let w = timeline.bucket_width;
        let mut cumulative = vec![0u64; nb];
        if nb > 0 {
            for &(_, t) in deaths {
                let b = ((t / w) as usize).min(nb - 1);
                cumulative[b] += 1;
            }
            for b in 1..nb {
                cumulative[b] += cumulative[b - 1];
            }
        }
        self.rank_deaths = deaths.to_vec();
        self.rank_deaths_cumulative = cumulative;
        self
    }

    /// Attach a run's ingest schedule: cumulative arrived epochs and
    /// cumulative frontier-confirmed epochs per bucket. An event past the
    /// last bucket counts in the last bucket. No-op on closed schedules
    /// (one epoch or fewer), so closed traces stay byte-identical.
    pub fn with_ingest(
        mut self,
        timeline: &PhaseTimeline,
        arrivals: &[f64],
        completions: &[f64],
    ) -> Self {
        if arrivals.len() <= 1 {
            return self;
        }
        let nb = timeline.n_buckets();
        let w = timeline.bucket_width;
        let staircase = |times: &[f64]| -> Vec<u64> {
            let mut c = vec![0u64; nb];
            if nb > 0 {
                for &t in times {
                    let b = ((t / w) as usize).min(nb - 1);
                    c[b] += 1;
                }
                for b in 1..nb {
                    c[b] += c[b - 1];
                }
            }
            c
        };
        self.ingest_epochs_cumulative = staircase(arrivals);
        self.frontier_epochs_cumulative = staircase(completions);
        self
    }
}

/// Seconds per phase, summed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTotals {
    pub compute: f64,
    pub io: f64,
    pub comm: f64,
    pub idle: f64,
}

impl PhaseTotals {
    /// compute + io + comm.
    pub fn busy(&self) -> f64 {
        self.compute + self.io + self.comm
    }
}

/// One rank's share of a [`TraceFile`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankTrace {
    pub rank: usize,
    pub totals: PhaseTotals,
    /// `[compute, io, comm, idle]` seconds per bucket; every rank row is
    /// padded to the same length.
    pub buckets: Vec<[f64; 4]>,
}

/// The JSON trace emitted by `streamline run --trace` and
/// `serve-bench --trace`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceFile {
    /// Always [`TRACE_SCHEMA`].
    pub schema: String,
    /// `"virtual"` (desim) or `"wall"` (threads/serve).
    pub clock: String,
    /// Seconds per bucket.
    pub bucket_width: f64,
    pub n_ranks: usize,
    /// Phase names, in bucket-array order.
    pub phases: Vec<String>,
    pub totals: PhaseTotals,
    pub ranks: Vec<RankTrace>,
    /// Scheduling-diagnostics series; absent in traces written before the
    /// section existed.
    #[serde(default)]
    pub schedule: Option<ScheduleTrace>,
}

impl TraceFile {
    /// Structural sanity: schema/clock tags, consistent rank rows, finite
    /// non-negative samples, and per-rank totals that match the buckets.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != TRACE_SCHEMA {
            return Err(format!("unknown schema `{}`", self.schema));
        }
        if self.clock != "virtual" && self.clock != "wall" {
            return Err(format!("unknown clock `{}`", self.clock));
        }
        if !(self.bucket_width > 0.0 && self.bucket_width.is_finite()) {
            return Err(format!("bad bucket_width {}", self.bucket_width));
        }
        if self.phases != ["compute", "io", "comm", "idle"] {
            return Err(format!("unexpected phases {:?}", self.phases));
        }
        if self.ranks.len() != self.n_ranks {
            return Err(format!("{} rank rows for n_ranks {}", self.ranks.len(), self.n_ranks));
        }
        let nb = self.ranks.first().map(|r| r.buckets.len()).unwrap_or(0);
        let mut sum = PhaseTotals::default();
        for (i, r) in self.ranks.iter().enumerate() {
            if r.rank != i {
                return Err(format!("rank row {i} labeled {}", r.rank));
            }
            if r.buckets.len() != nb {
                return Err(format!("rank {i} has {} buckets, expected {nb}", r.buckets.len()));
            }
            let mut t = PhaseTotals::default();
            for b in &r.buckets {
                if b.iter().any(|v| !v.is_finite() || *v < 0.0) {
                    return Err(format!("rank {i} has a non-finite or negative sample"));
                }
                t.compute += b[0];
                t.io += b[1];
                t.comm += b[2];
                t.idle += b[3];
            }
            for (name, got, stated) in [
                ("compute", t.compute, r.totals.compute),
                ("io", t.io, r.totals.io),
                ("comm", t.comm, r.totals.comm),
                ("idle", t.idle, r.totals.idle),
            ] {
                if (got - stated).abs() > 1e-9 * (1.0 + stated.abs()) {
                    return Err(format!("rank {i} {name}: buckets sum {got}, totals {stated}"));
                }
            }
            sum.compute += t.compute;
            sum.io += t.io;
            sum.comm += t.comm;
            sum.idle += t.idle;
        }
        for (name, got, stated) in [
            ("compute", sum.compute, self.totals.compute),
            ("io", sum.io, self.totals.io),
            ("comm", sum.comm, self.totals.comm),
            ("idle", sum.idle, self.totals.idle),
        ] {
            if (got - stated).abs() > 1e-9 * (1.0 + stated.abs()) {
                return Err(format!("global {name}: ranks sum {got}, totals {stated}"));
            }
        }
        if let Some(s) = &self.schedule {
            if s.participation.len() != nb {
                return Err(format!(
                    "schedule participation has {} buckets, trace has {nb}",
                    s.participation.len()
                ));
            }
            if s.pingpong_cumulative.len() != nb {
                return Err(format!(
                    "schedule ping-pong series has {} buckets, trace has {nb}",
                    s.pingpong_cumulative.len()
                ));
            }
            for (b, &p) in s.participation.iter().enumerate() {
                if !p.is_finite() || !(0.0..=1.0 + 1e-9).contains(&p) {
                    return Err(format!("participation[{b}] = {p} outside [0, 1]"));
                }
            }
            for w in s.pingpong_cumulative.windows(2) {
                if w[1] < w[0] {
                    return Err(format!("ping-pong series not monotone: {} then {}", w[0], w[1]));
                }
            }
            let shares = [s.shares.compute, s.shares.io, s.shares.comm, s.shares.idle];
            if shares.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err("schedule shares must be finite and non-negative".into());
            }
            let sum: f64 = shares.iter().sum();
            if sum > 1.0 + 1e-6 {
                return Err(format!("schedule shares sum to {sum} > 1"));
            }
            if !s.rank_deaths.is_empty() || !s.rank_deaths_cumulative.is_empty() {
                if s.rank_deaths_cumulative.len() != nb {
                    return Err(format!(
                        "schedule rank-death series has {} buckets, trace has {nb}",
                        s.rank_deaths_cumulative.len()
                    ));
                }
                for w in s.rank_deaths_cumulative.windows(2) {
                    if w[1] < w[0] {
                        return Err(format!(
                            "rank-death series not monotone: {} then {}",
                            w[0], w[1]
                        ));
                    }
                }
                let total = s.rank_deaths_cumulative.last().copied().unwrap_or(0);
                if total != s.rank_deaths.len() as u64 {
                    return Err(format!(
                        "rank-death series totals {total}, but {} deaths listed",
                        s.rank_deaths.len()
                    ));
                }
                for &(_, t) in &s.rank_deaths {
                    if !t.is_finite() || t < 0.0 {
                        return Err(format!("rank death at non-finite or negative time {t}"));
                    }
                }
            }
            if !s.ingest_epochs_cumulative.is_empty() || !s.frontier_epochs_cumulative.is_empty() {
                if s.ingest_epochs_cumulative.len() != nb {
                    return Err(format!(
                        "ingest series has {} buckets, trace has {nb}",
                        s.ingest_epochs_cumulative.len()
                    ));
                }
                if !s.frontier_epochs_cumulative.is_empty()
                    && s.frontier_epochs_cumulative.len() != nb
                {
                    return Err(format!(
                        "frontier series has {} buckets, trace has {nb}",
                        s.frontier_epochs_cumulative.len()
                    ));
                }
                for (name, series) in [
                    ("ingest", &s.ingest_epochs_cumulative),
                    ("frontier", &s.frontier_epochs_cumulative),
                ] {
                    for w in series.windows(2) {
                        if w[1] < w[0] {
                            return Err(format!(
                                "{name} series not monotone: {} then {}",
                                w[0], w[1]
                            ));
                        }
                    }
                }
                for (b, (&f, &i)) in
                    s.frontier_epochs_cumulative.iter().zip(&s.ingest_epochs_cumulative).enumerate()
                {
                    if f > i {
                        return Err(format!(
                            "bucket {b}: {f} epochs complete but only {i} arrived"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A [`PhaseTimeline`] over wall-clock time, shared across threads.
///
/// Spans are timestamped relative to the `epoch` captured at construction.
/// Recording takes a short mutex — callers record one span per handled
/// event/batch, not per sample, so contention is negligible next to the
/// work being traced.
pub struct WallTimeline {
    epoch: Instant,
    inner: Mutex<PhaseTimeline>,
}

impl WallTimeline {
    pub fn new(n_ranks: usize, bucket_width: Duration) -> Self {
        WallTimeline {
            epoch: Instant::now(),
            inner: Mutex::new(PhaseTimeline::new(n_ranks, bucket_width.as_secs_f64())),
        }
    }

    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Record `dur` of `phase` on `rank`, starting at wall instant `start`.
    pub fn record(&self, rank: usize, phase: Phase, start: Instant, dur: Duration) {
        let t0 = start.saturating_duration_since(self.epoch).as_secs_f64();
        self.inner.lock().add(rank, phase, t0, dur.as_secs_f64());
    }

    /// Record a span and split it across the busy phases proportionally to
    /// `weights = [compute, io, comm]` (e.g. the virtual-cost deltas a
    /// handler charged). A span with no weights is attributed to compute.
    pub fn record_weighted(&self, rank: usize, start: Instant, dur: Duration, weights: [f64; 3]) {
        let t0 = start.saturating_duration_since(self.epoch).as_secs_f64();
        let dt = dur.as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        let mut inner = self.inner.lock();
        if total <= 0.0 {
            inner.add(rank, Phase::Compute, t0, dt);
            return;
        }
        let mut offset = 0.0;
        for (phase, w) in [Phase::Compute, Phase::Io, Phase::Comm].into_iter().zip(weights) {
            if w.is_finite() && w > 0.0 {
                let share = dt * w / total;
                inner.add(rank, phase, t0 + offset, share);
                offset += share;
            }
        }
    }

    /// Copy out the timeline accumulated so far.
    pub fn snapshot(&self) -> PhaseTimeline {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_splits_across_buckets() {
        let mut t = PhaseTimeline::new(2, 1.0);
        t.add(0, Phase::Compute, 0.75, 2.5);
        assert!((t.utilization(0, 0) - 0.25).abs() < 1e-12);
        assert!((t.utilization(0, 1) - 1.0).abs() < 1e-12);
        assert!((t.utilization(0, 2) - 1.0).abs() < 1e-12);
        assert!((t.utilization(0, 3) - 0.25).abs() < 1e-12);
        assert_eq!(t.utilization(1, 1), 0.0);
    }

    #[test]
    fn boundary_exact_start_at_large_t0_lands_in_the_bucket_it_opens() {
        // Regression for the old `+ 1e-9` nudge: once `t0 / width` exceeds
        // ~2e7, one ulp of the quotient is bigger than the nudge, so a
        // charge starting exactly on a bucket boundary under-selected the
        // *previous* bucket — and the `bucket_end <= t` fallback then
        // charged it there and skipped the right bucket entirely.
        let w = 0.0001;
        let b0: usize = 20_480_004;
        let t0 = b0 as f64 * w;
        assert!(
            (t0 / w + 1e-9) as usize == b0 - 1,
            "premise: the nudged quotient must under-select for this regression to bite"
        );
        let mut t = PhaseTimeline::new(1, w);
        t.add(0, Phase::Compute, t0, w);
        assert!(t.utilization(0, b0) > 1.0 - 1e-6, "got {}", t.utilization(0, b0));
        assert!(t.utilization(0, b0 - 1) < 1e-9, "charge leaked into the previous bucket");
        assert!(t.utilization(0, b0) <= 1.0 + 1e-6, "no double-charging");
    }

    #[test]
    fn sub_boundary_charge_is_not_nudged_across() {
        // The nudge also failed in the other direction at any magnitude: a
        // charge lying strictly inside bucket 3, within 1e-9 of the 4.0
        // boundary, was pushed into bucket 4.
        let w = 1.0;
        let t0 = f64::from_bits(4.0f64.to_bits() - 4); // a couple of ulps below 4.0
        let dt = 4.0 - t0; // ends exactly on the boundary
        assert!(t0 < 4.0 && t0 + dt == 4.0);
        assert!((t0 / w + 1e-9) as usize == 4, "premise: the old nudge crossed the boundary");
        let mut t = PhaseTimeline::new(1, w);
        t.add(0, Phase::Compute, t0, dt);
        assert_eq!(t.utilization(0, 4), 0.0, "charge strictly before 4.0 belongs to bucket 3");
        assert!((t.utilization(0, 3) * w - dt).abs() < 1e-18);
    }

    #[test]
    fn boundary_exact_charges_conserve_time_at_small_t0() {
        // 0.03 / 0.01 = 2.999... — the case the old nudge existed for.
        let mut t = PhaseTimeline::new(1, 0.01);
        t.add(0, Phase::Io, 0.03, 0.01);
        assert!((t.utilization(0, 3) - 1.0).abs() < 1e-9);
        assert!(t.utilization(0, 2) < 1e-12);
        assert!(t.utilization(0, 4) < 1e-12);
    }

    #[test]
    fn idle_phase_tracks_separately_from_utilization() {
        let mut t = PhaseTimeline::new(1, 1.0);
        t.add(0, Phase::Compute, 0.0, 0.5);
        t.add(0, Phase::Idle, 0.5, 0.5);
        assert!((t.utilization(0, 0) - 0.5).abs() < 1e-12, "idle is not busy");
        assert!((t.phase_total(0, Phase::Idle) - 0.5).abs() < 1e-12);
        let totals = t.totals();
        assert!((totals.busy() - 0.5).abs() < 1e-12);
        assert!((totals.idle - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trace_file_roundtrip_and_validate() {
        let mut t = PhaseTimeline::new(2, 0.5);
        t.add(0, Phase::Compute, 0.0, 1.2);
        t.add(1, Phase::Io, 0.25, 0.5);
        t.add(1, Phase::Idle, 0.75, 0.25);
        let trace = t.to_trace("virtual");
        trace.validate().expect("fresh trace validates");
        assert_eq!(trace.ranks.len(), 2);
        assert_eq!(trace.ranks[0].buckets.len(), trace.ranks[1].buckets.len());
        let json = serde_json::to_string(&trace).unwrap();
        let back: TraceFile = serde_json::from_str(&json).unwrap();
        back.validate().expect("roundtripped trace validates");
        assert!((back.totals.compute - 1.2).abs() < 1e-12);
        assert!((back.totals.io - 0.5).abs() < 1e-12);
        assert!((back.totals.idle - 0.25).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_corruption() {
        let mut t = PhaseTimeline::new(1, 1.0);
        t.add(0, Phase::Compute, 0.0, 1.0);
        let good = t.to_trace("virtual");

        let mut bad = good.clone();
        bad.schema = "bogus".into();
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.clock = "sundial".into();
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.ranks[0].totals.compute += 1.0;
        assert!(bad.validate().is_err(), "totals must match buckets");

        let mut bad = good.clone();
        bad.ranks[0].buckets[0][1] = f64::NAN;
        assert!(bad.validate().is_err());

        let mut bad = good;
        bad.n_ranks = 2;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn schedule_trace_series_from_timeline() {
        let mut t = PhaseTimeline::new(2, 1.0);
        // Rank 0 computes the whole first bucket; rank 1 half of it.
        t.add(0, Phase::Compute, 0.0, 1.0);
        t.add(1, Phase::Compute, 0.0, 0.5);
        t.add(1, Phase::Comm, 0.5, 0.5);
        t.add(0, Phase::Idle, 1.0, 1.0);
        let s = ScheduleTrace::from_timeline(&t, &[0.25, 0.75, 5.0]);
        assert_eq!(s.participation.len(), 2);
        assert!((s.participation[0] - 0.75).abs() < 1e-12);
        assert_eq!(s.participation[1], 0.0);
        // Two ping-pongs in bucket 0; the arrival past the end clamps into
        // the final bucket.
        assert_eq!(s.pingpong_cumulative, vec![2, 3]);
        // Area = 2 ranks × 2 buckets × 1s.
        assert!((s.shares.compute - 1.5 / 4.0).abs() < 1e-12);
        assert!((s.shares.comm - 0.5 / 4.0).abs() < 1e-12);
        assert!((s.shares.idle - 1.0 / 4.0).abs() < 1e-12);
        let total = s.shares.compute + s.shares.io + s.shares.comm + s.shares.idle;
        assert!(total <= 1.0 + 1e-9, "shares sum {total}");
    }

    #[test]
    fn trace_with_schedule_validates_and_old_traces_still_parse() {
        let mut t = PhaseTimeline::new(2, 0.5);
        t.add(0, Phase::Compute, 0.0, 1.2);
        t.add(1, Phase::Io, 0.25, 0.5);
        let mut trace = t.to_trace("virtual");
        assert!(trace.schedule.is_none(), "schedule is opt-in");
        trace.schedule = Some(ScheduleTrace::from_timeline(&t, &[0.3]));
        trace.validate().expect("schedule section validates");
        let json = serde_json::to_string(&trace).unwrap();
        let back: TraceFile = serde_json::from_str(&json).unwrap();
        back.validate().expect("roundtrip validates");
        assert_eq!(back.schedule, trace.schedule);
        // A trace written before the section existed parses to None.
        let sched_json = serde_json::to_string(&trace.schedule).unwrap();
        let stripped = json.replace(&format!(",\"schedule\":{sched_json}"), "");
        assert_ne!(json, stripped, "test must actually remove the section");
        let old: TraceFile = serde_json::from_str(&stripped).unwrap();
        assert!(old.schedule.is_none());
        old.validate().expect("schedule-less trace validates");
    }

    #[test]
    fn validate_rejects_malformed_schedule_series() {
        let mut t = PhaseTimeline::new(1, 1.0);
        t.add(0, Phase::Compute, 0.0, 2.0);
        let mut trace = t.to_trace("virtual");
        trace.schedule = Some(ScheduleTrace::from_timeline(&t, &[]));
        trace.validate().expect("good schedule");

        let mut bad = trace.clone();
        bad.schedule.as_mut().unwrap().participation = vec![0.5]; // wrong length
        assert!(bad.validate().is_err());

        let mut bad = trace.clone();
        bad.schedule.as_mut().unwrap().participation[0] = 1.5;
        assert!(bad.validate().is_err(), "participation above 1 rejected");

        let mut bad = trace.clone();
        bad.schedule.as_mut().unwrap().pingpong_cumulative = vec![3, 1];
        assert!(bad.validate().is_err(), "non-monotone ping-pong rejected");

        let mut bad = trace.clone();
        bad.schedule.as_mut().unwrap().shares.comm = 0.9; // pushes sum past 1
        assert!(bad.validate().is_err(), "shares summing past 1 rejected");

        let mut bad = trace;
        bad.schedule.as_mut().unwrap().shares.io = f64::NAN;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn rank_death_series_accumulates_and_validates() {
        let mut t = PhaseTimeline::new(2, 1.0);
        t.add(0, Phase::Compute, 0.0, 1.0);
        t.add(1, Phase::Compute, 1.0, 1.0);
        // Two deaths in bucket 0, one past the end (clamped to the last).
        let deaths = vec![(0, 0.2), (1, 0.7), (3, 9.0)];
        let s = ScheduleTrace::from_timeline(&t, &[]).with_rank_deaths(&t, &deaths);
        assert_eq!(s.rank_deaths_cumulative, vec![2, 3]);
        assert_eq!(s.rank_deaths, deaths);
        let mut trace = t.to_trace("virtual");
        trace.schedule = Some(s);
        trace.validate().expect("rank-death series validates");
        // No deaths → the series stays empty and the trace byte-identical.
        let empty = ScheduleTrace::from_timeline(&t, &[]).with_rank_deaths(&t, &[]);
        assert_eq!(empty, ScheduleTrace::from_timeline(&t, &[]));
        // Corruption is rejected: non-monotone series, count mismatch.
        let mut bad = trace.clone();
        bad.schedule.as_mut().unwrap().rank_deaths_cumulative = vec![3, 2];
        assert!(bad.validate().is_err(), "non-monotone rank-death series rejected");
        let mut bad = trace;
        bad.schedule.as_mut().unwrap().rank_deaths.pop();
        assert!(bad.validate().is_err(), "death-count mismatch rejected");
    }

    #[test]
    fn ingest_series_accumulates_and_validates() {
        let mut t = PhaseTimeline::new(2, 1.0);
        t.add(0, Phase::Compute, 0.0, 2.0);
        t.add(1, Phase::Compute, 0.0, 2.0);
        // Three epochs: base at 0, arrivals in buckets 0 and 1; the last
        // completion lands past the end and clamps to the final bucket.
        let arrivals = [0.0, 0.4, 1.2];
        let completions = [0.9, 1.5, 7.0];
        let s = ScheduleTrace::from_timeline(&t, &[]).with_ingest(&t, &arrivals, &completions);
        assert_eq!(s.ingest_epochs_cumulative, vec![2, 3]);
        assert_eq!(s.frontier_epochs_cumulative, vec![1, 3]);
        let mut trace = t.to_trace("virtual");
        trace.schedule = Some(s);
        trace.validate().expect("ingest series validates");
        // A closed schedule records nothing, keeping the trace byte-identical.
        let closed = ScheduleTrace::from_timeline(&t, &[]).with_ingest(&t, &[0.0], &[2.0]);
        assert_eq!(closed, ScheduleTrace::from_timeline(&t, &[]));
        // Corruption is rejected: completions outrunning arrivals.
        let mut bad = trace.clone();
        bad.schedule.as_mut().unwrap().frontier_epochs_cumulative = vec![3, 3];
        assert!(bad.validate().is_err(), "frontier past ingest rejected");
        let mut bad = trace;
        bad.schedule.as_mut().unwrap().ingest_epochs_cumulative = vec![3, 2];
        assert!(bad.validate().is_err(), "non-monotone ingest series rejected");
    }

    #[test]
    fn wall_timeline_records_relative_to_epoch() {
        let tl = WallTimeline::new(2, Duration::from_millis(10));
        let e = tl.epoch();
        tl.record(0, Phase::Io, e, Duration::from_millis(25));
        tl.record(1, Phase::Idle, e + Duration::from_millis(5), Duration::from_millis(10));
        let snap = tl.snapshot();
        assert!((snap.phase_total(0, Phase::Io) - 0.025).abs() < 1e-9);
        assert!((snap.phase_total(1, Phase::Idle) - 0.010).abs() < 1e-9);
        assert!(snap.utilization(0, 0) > 0.99, "first 10ms bucket is all I/O");
    }

    #[test]
    fn weighted_record_apportions_by_charge_deltas() {
        let tl = WallTimeline::new(1, Duration::from_millis(100));
        let e = tl.epoch();
        tl.record_weighted(0, e, Duration::from_millis(90), [2.0, 1.0, 0.0]);
        let snap = tl.snapshot();
        assert!((snap.phase_total(0, Phase::Compute) - 0.060).abs() < 1e-9);
        assert!((snap.phase_total(0, Phase::Io) - 0.030).abs() < 1e-9);
        assert_eq!(snap.phase_total(0, Phase::Comm), 0.0);
        // No weights at all -> compute.
        tl.record_weighted(0, e, Duration::from_millis(10), [0.0, 0.0, 0.0]);
        assert!((tl.snapshot().phase_total(0, Phase::Compute) - 0.070).abs() < 1e-9);
    }
}
