//! Prometheus text exposition format: render a registry snapshot, and parse
//! one back for reconciliation tests.

use crate::registry::MetricValue;
use std::collections::BTreeMap;

/// Format an `f64` sample value. Rust's `{}` formatting is
/// shortest-roundtrip, so `parse::<f64>()` of the output recovers the exact
/// bits — which is what lets the integration tests reconcile the export
/// against the legacy structs bit-for-bit.
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Upper bound of log2 bucket `i` as a `le` label: bucket 0 holds exact
/// zeros, bucket `i` covers integer values up to `2^i - 1`.
fn le_bound(i: usize) -> String {
    if i == 0 {
        "0".to_string()
    } else {
        format!("{}", (1u128 << i) - 1)
    }
}

/// Render a snapshot in Prometheus text exposition format. Histograms emit
/// cumulative `_bucket{le=...}` series up to the highest non-empty bucket,
/// then `+Inf`, `_sum`, and `_count`.
pub fn render(snapshot: &BTreeMap<String, MetricValue>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (name, value) in snapshot {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", fmt_f64(*v));
            }
            MetricValue::Histogram { count, sum, buckets } => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let top = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
                let mut cumulative = 0u64;
                for (i, &c) in buckets.iter().enumerate().take(top + 1) {
                    cumulative += c;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", le_bound(i));
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                let _ = writeln!(out, "{name}_sum {sum}");
                let _ = writeln!(out, "{name}_count {count}");
            }
        }
    }
    out
}

/// Parse Prometheus text back into `name (with labels) -> value`. Supports
/// exactly the subset [`render`] emits: `#` comment lines, then
/// `name[{labels}] value` samples. Duplicate sample names are an error.
pub fn parse_text(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let Some((name, value)) = line.rsplit_once(|c: char| c.is_ascii_whitespace()) else {
            return Err(format!("line {lineno}: expected `name value`, got `{line}`"));
        };
        let name = name.trim_end();
        if name.is_empty() {
            return Err(format!("line {lineno}: empty metric name"));
        }
        let v = match value {
            "+Inf" | "Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            _ => value
                .parse::<f64>()
                .map_err(|e| format!("line {lineno}: bad value `{value}`: {e}"))?,
        };
        if out.insert(name.to_string(), v).is_some() {
            return Err(format!("line {lineno}: duplicate sample `{name}`"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn render_and_parse_roundtrip_counters_and_gauges() {
        let reg = MetricsRegistry::new();
        reg.counter("jobs_total").add(42);
        reg.gauge("ratio").set(0.1 + 0.2); // not exactly 0.3 in binary
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("# TYPE ratio gauge"));
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed["jobs_total"], 42.0);
        // Bit-for-bit: shortest-roundtrip print + parse is the identity.
        assert_eq!(parsed["ratio"].to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns");
        h.record(0);
        h.record(1);
        h.record(1);
        h.record(900); // bucket 10: [512, 1024)
        let text = reg.render_prometheus();
        let parsed = parse_text(&text).unwrap();
        assert_eq!(parsed["lat_ns_bucket{le=\"0\"}"], 1.0);
        assert_eq!(parsed["lat_ns_bucket{le=\"1\"}"], 3.0);
        assert_eq!(parsed["lat_ns_bucket{le=\"1023\"}"], 4.0);
        assert_eq!(parsed["lat_ns_bucket{le=\"+Inf\"}"], 4.0);
        assert_eq!(parsed["lat_ns_sum"], 902.0);
        assert_eq!(parsed["lat_ns_count"], 4.0);
        // Cumulative counts never decrease.
        let mut last = 0.0;
        for i in 0..=10usize {
            let le = if i == 0 { "0".to_string() } else { format!("{}", (1u64 << i) - 1) };
            if let Some(&v) = parsed.get(&format!("lat_ns_bucket{{le=\"{le}\"}}")) {
                assert!(v >= last);
                last = v;
            }
        }
    }

    #[test]
    fn special_values_roundtrip() {
        assert_eq!(parse_text("a +Inf\n").unwrap()["a"], f64::INFINITY);
        assert_eq!(parse_text("a -Inf\n").unwrap()["a"], f64::NEG_INFINITY);
        assert!(parse_text("a NaN\n").unwrap()["a"].is_nan());
    }

    #[test]
    fn parse_rejects_garbage_and_duplicates() {
        assert!(parse_text("loneword\n").is_err());
        assert!(parse_text("a notanumber\n").is_err());
        assert!(parse_text("a 1\na 2\n").is_err());
        assert!(parse_text("# just comments\n\n").unwrap().is_empty());
    }
}
