//! Stable metric names.
//!
//! Everything the workspace exports is registered under one of these
//! constants, so dashboards and tests can rely on the names across
//! releases. Conventions follow Prometheus: `_total` for counters, a unit
//! suffix (`_seconds`, `_nanoseconds`, `_blocks`) for gauges and
//! histograms.
//!
//! Three namespaces:
//! - `streamline_run_*` — one batch run (any driver), mirrored from
//!   `RunReport`. These are the paper's §5 quantities: wall-clock, total
//!   I/O, total communication, block efficiency (Eq. 2), load imbalance.
//! - `streamline_cache_*` / `streamline_faults_*` — block cache and fault
//!   injection counters (`CacheStats`, `FaultCounters`).
//! - `streamline_serve_*` — the live query service; these update while the
//!   service runs and are what `Service::dump_metrics` exposes for
//!   scraping.
//! - `streamline_ckpt_*` — the checkpoint/restart subsystem: snapshots
//!   written and restored, bytes moved, and time spent doing it.

// One batch run (RunReport).
pub const RUN_WALL_SECONDS: &str = "streamline_run_wall_seconds";
pub const RUN_COMPUTE_SECONDS: &str = "streamline_run_compute_seconds";
pub const RUN_IO_SECONDS: &str = "streamline_run_io_seconds";
pub const RUN_COMM_SECONDS: &str = "streamline_run_comm_seconds";
pub const RUN_IDLE_SECONDS: &str = "streamline_run_idle_seconds";
pub const RUN_RANKS: &str = "streamline_run_ranks";
pub const RUN_EVENTS_TOTAL: &str = "streamline_run_events_total";
pub const RUN_MSGS_TOTAL: &str = "streamline_run_messages_total";
pub const RUN_BYTES_SENT_TOTAL: &str = "streamline_run_bytes_sent_total";
pub const RUN_BLOCKS_LOADED_TOTAL: &str = "streamline_run_blocks_loaded_total";
pub const RUN_BLOCKS_PURGED_TOTAL: &str = "streamline_run_blocks_purged_total";
pub const RUN_STEPS_TOTAL: &str = "streamline_run_steps_total";
pub const RUN_STREAMLINES_TERMINATED_TOTAL: &str = "streamline_run_streamlines_terminated_total";
pub const RUN_SAMPLER_HITS_TOTAL: &str = "streamline_run_sampler_hits_total";
pub const RUN_SAMPLER_MISSES_TOTAL: &str = "streamline_run_sampler_misses_total";
// Batch advection kernel: lanes advanced batched, and the mean filled
// fraction of the configured batch width.
pub const RUN_BATCHED_LANES_TOTAL: &str = "streamline_run_batched_lanes_total";
pub const RUN_BATCH_OCCUPANCY: &str = "streamline_run_batch_occupancy";
pub const RUN_LOAD_RETRIES_TOTAL: &str = "streamline_run_load_retries_total";
pub const RUN_LOAD_FAILURES_TOTAL: &str = "streamline_run_load_failures_total";
pub const RUN_UNAVAILABLE_TERMINATIONS_TOTAL: &str =
    "streamline_run_unavailable_terminations_total";
pub const RUN_BLOCK_EFFICIENCY: &str = "streamline_run_block_efficiency";
pub const RUN_LOAD_IMBALANCE: &str = "streamline_run_load_imbalance";
// Scheduling diagnostics (the follow-up load-balancing literature):
// ping-pong streamlines, balancing-protocol traffic, participation and
// communication-overhead share.
pub const RUN_PINGPONG_STREAMLINES_TOTAL: &str = "streamline_run_pingpong_streamlines_total";
pub const RUN_BALANCE_MSGS_TOTAL: &str = "streamline_run_balance_messages_total";
pub const RUN_BALANCE_BYTES_TOTAL: &str = "streamline_run_balance_bytes_total";
pub const RUN_PARTICIPATION_RATIO: &str = "streamline_run_participation_ratio";
pub const RUN_COMM_OVERHEAD_SHARE: &str = "streamline_run_comm_overhead_share";
// Streaming ingestion: epochs in the run's seed schedule, epochs the
// folded termination frontier confirmed complete, and the
// arrival→completion lag over confirmed epochs.
pub const RUN_INGEST_EPOCHS: &str = "streamline_run_ingest_epochs";
pub const RUN_FRONTIER_EPOCHS: &str = "streamline_run_frontier_epochs";
pub const RUN_FRONTIER_LAG_MEAN_SECONDS: &str = "streamline_run_frontier_lag_mean_seconds";
pub const RUN_FRONTIER_LAG_MAX_SECONDS: &str = "streamline_run_frontier_lag_max_seconds";

// Block cache (CacheStats).
pub const CACHE_LOADED_TOTAL: &str = "streamline_cache_loaded_total";
pub const CACHE_PURGED_TOTAL: &str = "streamline_cache_purged_total";
pub const CACHE_HITS_TOTAL: &str = "streamline_cache_hits_total";
pub const CACHE_FAILED_LOADS_TOTAL: &str = "streamline_cache_failed_loads_total";

// Fault injection (FaultCounters).
pub const FAULTS_ATTEMPTS_TOTAL: &str = "streamline_faults_attempts_total";
pub const FAULTS_SERVED_TOTAL: &str = "streamline_faults_served_total";
pub const FAULTS_IO_INJECTED_TOTAL: &str = "streamline_faults_io_injected_total";
pub const FAULTS_DECODE_INJECTED_TOTAL: &str = "streamline_faults_decode_injected_total";
pub const FAULTS_LATENCY_INJECTED_TOTAL: &str = "streamline_faults_latency_injected_total";

// Rank fail-stop faults (RunReport resilience accounting).
pub const FAULTS_RANK_DEATHS_TOTAL: &str = "streamline_faults_rank_deaths_total";
pub const FAULTS_RANK_LOST_STREAMLINES_TOTAL: &str =
    "streamline_faults_rank_lost_streamlines_total";
pub const FAULTS_RANK_REASSIGNED_STREAMLINES_TOTAL: &str =
    "streamline_faults_rank_reassigned_streamlines_total";
pub const FAULTS_RANK_DROPPED_EVENTS_TOTAL: &str = "streamline_faults_rank_dropped_events_total";
pub const FAULTS_RANK_DETECTION_LATENCY_MEAN_SECONDS: &str =
    "streamline_faults_rank_detection_latency_mean_seconds";
pub const FAULTS_RANK_DETECTION_LATENCY_MAX_SECONDS: &str =
    "streamline_faults_rank_detection_latency_max_seconds";

// The live query service.
pub const SERVE_WORKERS: &str = "streamline_serve_workers";
pub const SERVE_UPTIME_SECONDS: &str = "streamline_serve_uptime_seconds";
pub const SERVE_SUBMITTED_TOTAL: &str = "streamline_serve_requests_submitted_total";
pub const SERVE_COMPLETED_TOTAL: &str = "streamline_serve_requests_completed_total";
pub const SERVE_REJECTED_TOTAL: &str = "streamline_serve_requests_rejected_total";
pub const SERVE_DEADLINE_EXPIRED_TOTAL: &str = "streamline_serve_requests_deadline_expired_total";
pub const SERVE_PARTIAL_TOTAL: &str = "streamline_serve_requests_partial_total";
pub const SERVE_LOAD_RETRIES_TOTAL: &str = "streamline_serve_load_retries_total";
pub const SERVE_LOAD_FAILURES_TOTAL: &str = "streamline_serve_load_failures_total";
pub const SERVE_BREAKER_FAST_FAILS_TOTAL: &str = "streamline_serve_breaker_fast_fails_total";
pub const SERVE_BREAKER_TRIPS_TOTAL: &str = "streamline_serve_breaker_trips_total";
pub const SERVE_BLOCKS_QUARANTINED: &str = "streamline_serve_blocks_quarantined";
pub const SERVE_STREAMLINES_COMPLETED_TOTAL: &str = "streamline_serve_streamlines_completed_total";
pub const SERVE_STREAMLINES_UNAVAILABLE_TOTAL: &str =
    "streamline_serve_streamlines_unavailable_total";
pub const SERVE_STEPS_TOTAL: &str = "streamline_serve_steps_total";
pub const SERVE_SAMPLER_HITS_TOTAL: &str = "streamline_serve_sampler_hits_total";
pub const SERVE_SAMPLER_MISSES_TOTAL: &str = "streamline_serve_sampler_misses_total";
pub const SERVE_BATCHED_LANES_TOTAL: &str = "streamline_serve_batched_lanes_total";
pub const SERVE_QUEUE_DEPTH: &str = "streamline_serve_queue_depth";
pub const SERVE_QUEUE_CAPACITY: &str = "streamline_serve_queue_capacity";
pub const SERVE_CACHE_RESIDENT_BLOCKS: &str = "streamline_serve_cache_resident_blocks";
pub const SERVE_CACHE_CAPACITY_BLOCKS: &str = "streamline_serve_cache_capacity_blocks";
pub const SERVE_CACHE_LOADED_TOTAL: &str = "streamline_serve_cache_loaded_total";
pub const SERVE_CACHE_PURGED_TOTAL: &str = "streamline_serve_cache_purged_total";
pub const SERVE_CACHE_HITS_TOTAL: &str = "streamline_serve_cache_hits_total";
pub const SERVE_CACHE_FAILED_LOADS_TOTAL: &str = "streamline_serve_cache_failed_loads_total";
pub const SERVE_BLOCK_EFFICIENCY: &str = "streamline_serve_block_efficiency";
pub const SERVE_LATENCY_NANOSECONDS: &str = "streamline_serve_request_latency_nanoseconds";
pub const SERVE_WORKER_PANICS_TOTAL: &str = "streamline_serve_worker_panics_total";
pub const SERVE_REQUESTS_GONE_TOTAL: &str = "streamline_serve_requests_gone_total";

// Checkpoint/restart.
pub const CKPT_SNAPSHOTS_TOTAL: &str = "streamline_ckpt_snapshots_total";
pub const CKPT_RESTORES_TOTAL: &str = "streamline_ckpt_restores_total";
pub const CKPT_WRITE_BYTES_TOTAL: &str = "streamline_ckpt_write_bytes_total";
pub const CKPT_RESTORE_BYTES_TOTAL: &str = "streamline_ckpt_restore_bytes_total";
pub const CKPT_WRITE_SECONDS_TOTAL: &str = "streamline_ckpt_write_seconds_total";
pub const CKPT_RESTORE_SECONDS_TOTAL: &str = "streamline_ckpt_restore_seconds_total";
pub const CKPT_WARM_START_BLOCKS: &str = "streamline_ckpt_warm_start_blocks";

// The sharded serve cluster: N replicas behind a consistent-hash block
// router, trajectories handed off between them when they cross shard
// boundaries. Aggregates first, then per-replica series produced by
// suffixing the `CLUSTER_REPLICA_*` bases with [`per_replica`].
pub const CLUSTER_REPLICAS: &str = "streamline_cluster_replicas";
pub const CLUSTER_REPLICAS_ALIVE: &str = "streamline_cluster_replicas_alive";
pub const CLUSTER_SUBMITTED_TOTAL: &str = "streamline_cluster_requests_submitted_total";
pub const CLUSTER_COMPLETED_TOTAL: &str = "streamline_cluster_requests_completed_total";
pub const CLUSTER_REJECTED_TOTAL: &str = "streamline_cluster_requests_rejected_total";
pub const CLUSTER_REQUESTS_GONE_TOTAL: &str = "streamline_cluster_requests_gone_total";
pub const CLUSTER_STREAMLINES_COMPLETED_TOTAL: &str =
    "streamline_cluster_streamlines_completed_total";
pub const CLUSTER_STREAMLINES_UNAVAILABLE_TOTAL: &str =
    "streamline_cluster_streamlines_unavailable_total";
pub const CLUSTER_STEPS_TOTAL: &str = "streamline_cluster_steps_total";
pub const CLUSTER_HANDOFFS_TOTAL: &str = "streamline_cluster_handoffs_total";
pub const CLUSTER_HANDOFF_BYTES_TOTAL: &str = "streamline_cluster_handoff_bytes_total";
pub const CLUSTER_REDISPATCHES_TOTAL: &str = "streamline_cluster_redispatches_total";
pub const CLUSTER_REDISPATCH_BYTES_TOTAL: &str = "streamline_cluster_redispatch_bytes_total";
pub const CLUSTER_REPLICA_DEATHS_TOTAL: &str = "streamline_cluster_replica_deaths_total";
pub const CLUSTER_HOT_LOCAL_HITS_TOTAL: &str = "streamline_cluster_hot_local_hits_total";
pub const CLUSTER_HOT_BLOCKS: &str = "streamline_cluster_hot_blocks";
pub const CLUSTER_WORKER_PANICS_TOTAL: &str = "streamline_cluster_worker_panics_total";
pub const CLUSTER_LATENCY_NANOSECONDS: &str = "streamline_cluster_request_latency_nanoseconds";

// Per-replica bases (suffix with [`per_replica`]).
pub const CLUSTER_REPLICA_ALIVE: &str = "streamline_cluster_replica_alive";
pub const CLUSTER_REPLICA_STREAMLINES_COMPLETED_TOTAL: &str =
    "streamline_cluster_replica_streamlines_completed_total";
pub const CLUSTER_REPLICA_HANDOFFS_OUT_TOTAL: &str =
    "streamline_cluster_replica_handoffs_out_total";
pub const CLUSTER_REPLICA_QUEUE_DEPTH: &str = "streamline_cluster_replica_queue_depth";
pub const CLUSTER_REPLICA_CACHE_HIT_RATE: &str = "streamline_cluster_replica_cache_hit_rate";
pub const CLUSTER_REPLICA_CACHE_RESIDENT_BLOCKS: &str =
    "streamline_cluster_replica_cache_resident_blocks";
pub const CLUSTER_REPLICA_BLOCKS_QUARANTINED: &str =
    "streamline_cluster_replica_blocks_quarantined";
pub const CLUSTER_REPLICA_LATENCY_NANOSECONDS: &str =
    "streamline_cluster_replica_latency_nanoseconds";

/// The registry has no label dimension, so per-replica series embed the
/// replica index in the metric name: `per_replica(base, 3)` = `{base}_r3`.
/// Dashboards match them with the `streamline_cluster_replica_*` prefix.
pub fn per_replica(base: &str, replica: usize) -> String {
    format!("{base}_r{replica}")
}
