//! Property-based tests for the integrators and the tracer.

use proptest::prelude::*;
use streamline_integrate::tracer::{advect, AdvectOutcome, StepLimits};
use streamline_integrate::{euler::Euler, rk4::Rk4};
use streamline_integrate::{Dopri5, Stepper, Streamline, StreamlineId, Termination, Tolerances};
use streamline_math::{Aabb, Vec3};

proptest! {
    /// On a rigid rotation, every scheme conserves the orbit radius to its
    /// order-appropriate tolerance over a quarter turn.
    #[test]
    fn rotation_radius_conservation(r0 in 0.1f64..5.0, omega in 0.1f64..3.0) {
        let mut f = move |p: Vec3| Some(Vec3::new(-omega * p.y, omega * p.x, 0.0));
        let quarter = std::f64::consts::FRAC_PI_2 / omega;
        let n = 200usize;
        let h = quarter / n as f64;
        let tol = Tolerances::default();
        for (stepper, budget) in [
            (&Euler as &dyn Stepper, 0.2),
            (&Rk4, 1e-6),
            (&Dopri5, 1e-8),
        ] {
            let mut y = Vec3::new(r0, 0.0, 0.0);
            for _ in 0..n {
                y = stepper.step(&mut f, y, h, &tol).unwrap().y;
            }
            let drift = (y.norm() - r0).abs() / r0;
            prop_assert!(drift < budget, "{}: relative drift {drift}", stepper.name());
        }
    }

    /// Dopri5's solution is at least as accurate as RK4 at equal step size
    /// on a smooth nonlinear field.
    #[test]
    fn dopri_beats_rk4(x0 in -0.5f64..0.5, y0 in -0.5f64..0.5) {
        let mut f = |p: Vec3| Some(Vec3::new(p.y, -p.x.sin(), 0.1));
        let start = Vec3::new(x0, y0, 0.0);
        let tol = Tolerances::default();
        let mut run = |s: &dyn Stepper, h: f64, n: usize| {
            let mut y = start;
            for _ in 0..n {
                y = s.step(&mut f, y, h, &tol).unwrap().y;
            }
            y
        };
        // Reference: very fine Dopri5.
        let reference = run(&Dopri5, 1e-3, 2000);
        let d5 = run(&Dopri5, 0.1, 20).distance(reference);
        let r4 = run(&Rk4, 0.1, 20).distance(reference);
        prop_assert!(d5 <= r4 * 1.5 + 1e-12, "dopri {d5} vs rk4 {r4}");
    }

    /// The tracer always terminates and always returns a sound outcome:
    /// LeftRegion ⇒ position outside region; Terminated ⇒ status set.
    #[test]
    fn tracer_outcomes_are_sound(
        sx in 0.05f64..0.95, sy in 0.05f64..0.95, sz in 0.05f64..0.95,
        vx in -1f64..1.0, vy in -1f64..1.0, vz in -1f64..1.0,
        swirl in 0f64..3.0,
    ) {
        let v0 = Vec3::new(vx, vy, vz);
        let mut f = move |p: Vec3| {
            Some(v0 + Vec3::new(-swirl * (p.y - 0.5), swirl * (p.x - 0.5), 0.0))
        };
        let bounds = Aabb::unit();
        let region = move |p: Vec3| bounds.contains(p);
        let limits = StepLimits { max_steps: 500, ..Default::default() };
        let mut sl = Streamline::new(StreamlineId(0), Vec3::new(sx, sy, sz), limits.h0);
        let r = advect(&mut sl, &mut f, &region, &limits, &Dopri5);
        match r.outcome {
            AdvectOutcome::LeftRegion => {
                prop_assert!(!bounds.contains(sl.state.position));
                prop_assert!(sl.is_active());
            }
            AdvectOutcome::Terminated(t) => {
                prop_assert!(!sl.is_active());
                // Only these terminations are reachable here.
                prop_assert!(matches!(
                    t,
                    Termination::MaxSteps | Termination::ZeroVelocity | Termination::StepUnderflow
                ), "unexpected termination {t:?}");
            }
        }
        // Work accounting is consistent.
        prop_assert_eq!(r.steps, sl.state.steps);
        prop_assert_eq!(sl.geometry.len() as u64, sl.vertex_count());
        // Arc length is at least the net displacement.
        prop_assert!(sl.state.arc_length + 1e-9 >= sl.seed.distance(sl.state.position));
    }

    /// Geometry vertices are exactly steps + 1 and monotone in time for the
    /// recorded variant.
    #[test]
    fn geometry_accounting(n_moves in 1usize..50) {
        let mut sl = Streamline::new(StreamlineId(3), Vec3::ZERO, 1e-2);
        let mut t = 0.0;
        for i in 0..n_moves {
            t += 0.1;
            sl.push_step(Vec3::splat(i as f64 * 0.01), 0.1);
            prop_assert!((sl.state.time - t).abs() < 1e-12);
        }
        prop_assert_eq!(sl.vertex_count() as usize, n_moves + 1);
        prop_assert_eq!(sl.geometry.len(), n_moves + 1);
    }
}
