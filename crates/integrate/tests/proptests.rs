//! Property-based tests for the integrators and the tracer.

use proptest::prelude::*;
use streamline_integrate::tracer::{advect, AdvectOutcome, StepLimits};
use streamline_integrate::{advect_batch, StreamlineBatch};
use streamline_integrate::{euler::Euler, rk4::Rk4};
use streamline_integrate::{Dopri5, Stepper, Streamline, StreamlineId, Termination, Tolerances};
use streamline_math::{Aabb, Vec3};

proptest! {
    /// On a rigid rotation, every scheme conserves the orbit radius to its
    /// order-appropriate tolerance over a quarter turn.
    #[test]
    fn rotation_radius_conservation(r0 in 0.1f64..5.0, omega in 0.1f64..3.0) {
        let mut f = move |p: Vec3| Some(Vec3::new(-omega * p.y, omega * p.x, 0.0));
        let quarter = std::f64::consts::FRAC_PI_2 / omega;
        let n = 200usize;
        let h = quarter / n as f64;
        let tol = Tolerances::default();
        for (stepper, budget) in [
            (&Euler as &dyn Stepper, 0.2),
            (&Rk4, 1e-6),
            (&Dopri5, 1e-8),
        ] {
            let mut y = Vec3::new(r0, 0.0, 0.0);
            for _ in 0..n {
                y = stepper.step(&mut f, y, h, &tol).unwrap().y;
            }
            let drift = (y.norm() - r0).abs() / r0;
            prop_assert!(drift < budget, "{}: relative drift {drift}", stepper.name());
        }
    }

    /// Dopri5's solution is at least as accurate as RK4 at equal step size
    /// on a smooth nonlinear field.
    #[test]
    fn dopri_beats_rk4(x0 in -0.5f64..0.5, y0 in -0.5f64..0.5) {
        let mut f = |p: Vec3| Some(Vec3::new(p.y, -p.x.sin(), 0.1));
        let start = Vec3::new(x0, y0, 0.0);
        let tol = Tolerances::default();
        let mut run = |s: &dyn Stepper, h: f64, n: usize| {
            let mut y = start;
            for _ in 0..n {
                y = s.step(&mut f, y, h, &tol).unwrap().y;
            }
            y
        };
        // Reference: very fine Dopri5.
        let reference = run(&Dopri5, 1e-3, 2000);
        let d5 = run(&Dopri5, 0.1, 20).distance(reference);
        let r4 = run(&Rk4, 0.1, 20).distance(reference);
        prop_assert!(d5 <= r4 * 1.5 + 1e-12, "dopri {d5} vs rk4 {r4}");
    }

    /// The tracer always terminates and always returns a sound outcome:
    /// LeftRegion ⇒ position outside region; Terminated ⇒ status set.
    #[test]
    fn tracer_outcomes_are_sound(
        sx in 0.05f64..0.95, sy in 0.05f64..0.95, sz in 0.05f64..0.95,
        vx in -1f64..1.0, vy in -1f64..1.0, vz in -1f64..1.0,
        swirl in 0f64..3.0,
    ) {
        let v0 = Vec3::new(vx, vy, vz);
        let mut f = move |p: Vec3| {
            Some(v0 + Vec3::new(-swirl * (p.y - 0.5), swirl * (p.x - 0.5), 0.0))
        };
        let bounds = Aabb::unit();
        let region = move |p: Vec3| bounds.contains(p);
        let limits = StepLimits { max_steps: 500, ..Default::default() };
        let mut sl = Streamline::new(StreamlineId(0), Vec3::new(sx, sy, sz), limits.h0);
        let r = advect(&mut sl, &mut f, &region, &limits, &Dopri5);
        match r.outcome {
            AdvectOutcome::LeftRegion => {
                prop_assert!(!bounds.contains(sl.state.position));
                prop_assert!(sl.is_active());
            }
            AdvectOutcome::Terminated(t) => {
                prop_assert!(!sl.is_active());
                // Only these terminations are reachable here.
                prop_assert!(matches!(
                    t,
                    Termination::MaxSteps | Termination::ZeroVelocity | Termination::StepUnderflow
                ), "unexpected termination {t:?}");
            }
        }
        // Work accounting is consistent.
        prop_assert_eq!(r.steps, sl.state.steps);
        prop_assert_eq!(sl.geometry.len() as u64, sl.vertex_count());
        // Arc length is at least the net displacement.
        prop_assert!(sl.state.arc_length + 1e-9 >= sl.seed.distance(sl.state.position));
    }

    /// Geometry vertices are exactly steps + 1 and monotone in time for the
    /// recorded variant.
    #[test]
    fn geometry_accounting(n_moves in 1usize..50) {
        let mut sl = Streamline::new(StreamlineId(3), Vec3::ZERO, 1e-2);
        let mut t = 0.0;
        for i in 0..n_moves {
            t += 0.1;
            sl.push_step(Vec3::splat(i as f64 * 0.01), 0.1);
            prop_assert!((sl.state.time - t).abs() < 1e-12);
        }
        prop_assert_eq!(sl.vertex_count() as usize, n_moves + 1);
        prop_assert_eq!(sl.geometry.len(), n_moves + 1);
    }
}

proptest! {
    /// The batch kernel is bit-identical to the scalar tracer for any lane
    /// count (1 included — a partial chunk), any seed cloud and a random
    /// swirl-plus-drain field whose lanes finish in different ways mid
    /// flight: some hit the step budget, some drain into the stagnation
    /// point, some leave the domain box. Every lane's final state, step
    /// size, recorded geometry and outcome must match the scalar run
    /// bit for bit.
    #[test]
    fn batch_matches_scalar_bitwise(
        n in 1usize..24,
        seed_jitter in prop::collection::vec((0.05f64..0.95, 0.05f64..0.95, 0.05f64..0.95), 24),
        swirl in 0.2f64..3.0,
        drain in 0.0f64..1.5,
        drift in -0.4f64..0.4,
        max_steps in 8u64..120,
    ) {
        let bounds = Aabb::unit();
        let center = Vec3::splat(0.5);
        let field = move |p: Vec3| {
            if !bounds.contains(p) {
                return None;
            }
            let r = p - center;
            let v = Vec3::new(-swirl * r.y, swirl * r.x, drift) - r * drain;
            Some(v)
        };
        let region = move |p: Vec3| bounds.contains(p);
        let limits = StepLimits { max_steps, ..Default::default() };
        let seeds: Vec<Vec3> =
            seed_jitter.iter().take(n).map(|&(x, y, z)| Vec3::new(x, y, z)).collect();

        let mut scalar: Vec<Streamline> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| Streamline::new(StreamlineId(i as u32), s, limits.h0))
            .collect();
        let scalar_outcomes: Vec<AdvectOutcome> = scalar
            .iter_mut()
            .map(|sl| {
                let mut sample = |p: Vec3| field(p);
                advect(sl, &mut sample, &region, &limits, &Dopri5).outcome
            })
            .collect();

        let mut batched: Vec<Streamline> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| Streamline::new(StreamlineId(i as u32), s, limits.h0))
            .collect();
        let mut scratch = StreamlineBatch::new();
        let r = advect_batch(
            &mut batched,
            &mut scratch,
            &mut |_lane: usize, p: Vec3| field(p),
            &region,
            &limits,
        );

        prop_assert_eq!(&r.outcomes, &scalar_outcomes);
        for (a, b) in scalar.iter().zip(&batched) {
            prop_assert_eq!(a.status, b.status, "lane {:?}", a.id);
            prop_assert_eq!(a.state.steps, b.state.steps, "lane {:?}", a.id);
            prop_assert_eq!(a.state.position.x.to_bits(), b.state.position.x.to_bits());
            prop_assert_eq!(a.state.position.y.to_bits(), b.state.position.y.to_bits());
            prop_assert_eq!(a.state.position.z.to_bits(), b.state.position.z.to_bits());
            prop_assert_eq!(a.state.h.to_bits(), b.state.h.to_bits(), "lane {:?}", a.id);
            prop_assert_eq!(a.state.time.to_bits(), b.state.time.to_bits());
            prop_assert_eq!(a.state.arc_length.to_bits(), b.state.arc_length.to_bits());
            prop_assert_eq!(a.geometry.len(), b.geometry.len());
            for (p, q) in a.geometry.iter().zip(&b.geometry) {
                prop_assert_eq!(p.x.to_bits(), q.x.to_bits());
                prop_assert_eq!(p.y.to_bits(), q.y.to_bits());
                prop_assert_eq!(p.z.to_bits(), q.z.to_bits());
            }
        }
    }
}
