//! Classical fourth-order Runge–Kutta — fixed-step reference scheme.

use crate::ode::{Rhs, StageFail, StepResult, Stepper, Tolerances};
use streamline_math::Vec3;

/// The classical RK4 scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rk4;

impl Stepper for Rk4 {
    fn step(
        &self,
        f: Rhs<'_>,
        y: Vec3,
        h: f64,
        _tol: &Tolerances,
    ) -> Result<StepResult, StageFail> {
        let k1 = f(y).ok_or(StageFail)?;
        let k2 = f(y + k1 * (h * 0.5)).ok_or(StageFail)?;
        let k3 = f(y + k2 * (h * 0.5)).ok_or(StageFail)?;
        let k4 = f(y + k3 * h).ok_or(StageFail)?;
        let y1 = y + (k1 + (k2 + k3) * 2.0 + k4) * (h / 6.0);
        Ok(StepResult { y: y1, error: 0.0 })
    }

    fn order(&self) -> usize {
        4
    }

    fn name(&self) -> &'static str {
        "rk4"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_radius_nearly_conserved() {
        // y' = omega x-hat rotation: RK4 with a modest step keeps the radius
        // to ~1e-8 over a quarter turn.
        let omega = 1.0;
        let mut f = |p: Vec3| Some(Vec3::new(-omega * p.y, omega * p.x, 0.0));
        let mut y = Vec3::new(1.0, 0.0, 0.0);
        let h = 0.01;
        let steps = (std::f64::consts::FRAC_PI_2 / h) as usize;
        for _ in 0..steps {
            y = Rk4.step(&mut f, y, h, &Tolerances::default()).unwrap().y;
        }
        assert!((y.norm() - 1.0).abs() < 1e-8, "radius drift: {}", (y.norm() - 1.0).abs());
    }

    #[test]
    fn stage_failure_when_any_stage_outside() {
        // Field defined only for x <= 1: a step that probes beyond fails.
        let mut f = |p: Vec3| if p.x <= 1.0 { Some(Vec3::X) } else { None };
        let ok = Rk4.step(&mut f, Vec3::new(0.0, 0.0, 0.0), 0.5, &Tolerances::default());
        assert!(ok.is_ok());
        let fail = Rk4.step(&mut f, Vec3::new(0.9, 0.0, 0.0), 0.5, &Tolerances::default());
        assert!(fail.is_err());
    }
}
