//! Forward Euler — first-order reference scheme.

use crate::ode::{Rhs, StageFail, StepResult, Stepper, Tolerances};
use streamline_math::Vec3;

/// Explicit Euler: `y1 = y + h f(y)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Euler;

impl Stepper for Euler {
    fn step(
        &self,
        f: Rhs<'_>,
        y: Vec3,
        h: f64,
        _tol: &Tolerances,
    ) -> Result<StepResult, StageFail> {
        let k = f(y).ok_or(StageFail)?;
        Ok(StepResult { y: y + k * h, error: 0.0 })
    }

    fn order(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "euler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_field_is_exact_per_step() {
        // y' = c is integrated exactly by Euler.
        let c = Vec3::new(1.0, -2.0, 0.5);
        let mut f = |_: Vec3| Some(c);
        let r = Euler.step(&mut f, Vec3::ZERO, 0.25, &Tolerances::default()).unwrap();
        assert_eq!(r.y, c * 0.25);
        assert_eq!(r.error, 0.0);
    }

    #[test]
    fn stage_failure_propagates() {
        let mut f = |_: Vec3| None;
        assert!(Euler.step(&mut f, Vec3::ZERO, 0.1, &Tolerances::default()).is_err());
    }
}
