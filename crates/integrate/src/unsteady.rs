//! Time-dependent integration for pathlines (§8).
//!
//! A pathline solves the non-autonomous ODE `x'(t) = v(x(t), t)`. The same
//! Dormand–Prince 5(4) tableau applies, with stage evaluations at
//! `t + c_i·h`; the tracer additionally respects the field's time range and
//! the snapshot-interval structure (a particle "leaves" its space-time
//! block either spatially or by crossing into the next snapshot interval).

use crate::dopri5;
use crate::ode::{StageFail, StepResult, Tolerances};
use crate::streamline::{Streamline, Termination};
use crate::tracer::{AdvectOutcome, Advected, StepLimits};
use streamline_math::float::clamp;
use streamline_math::Vec3;

/// Right-hand side of the pathline ODE; `None` when `(p, t)` is outside the
/// resident data.
pub type RhsT<'a> = &'a dyn Fn(Vec3, f64) -> Option<Vec3>;

/// One Dormand–Prince 5(4) step of the non-autonomous system.
pub fn dopri5_step_t(
    f: RhsT<'_>,
    y: Vec3,
    t: f64,
    h: f64,
    tol: &Tolerances,
) -> Result<StepResult, StageFail> {
    let (a, b5, e, c) = dopri5::tableau();
    let mut k = [Vec3::ZERO; 7];
    k[0] = f(y, t).ok_or(StageFail)?;
    for s in 1..7 {
        let mut arg = y;
        for (j, kj) in k.iter().enumerate().take(s) {
            if a[s][j] != 0.0 {
                arg += *kj * (a[s][j] * h);
            }
        }
        k[s] = f(arg, t + c[s] * h).ok_or(StageFail)?;
    }
    let mut y1 = y;
    let mut err = Vec3::ZERO;
    for (s, ks) in k.iter().enumerate() {
        if b5[s] != 0.0 {
            y1 += *ks * (b5[s] * h);
        }
        if e[s] != 0.0 {
            err += *ks * (e[s] * h);
        }
    }
    Ok(StepResult { y: y1, error: tol.error_norm(err, y, y1) })
}

/// Advance a pathline while `region(position, time)` holds and the field is
/// defined, with adaptive step control. Mirrors
/// [`crate::tracer::advect`] for the unsteady case; steps are clipped so
/// integration never overshoots `t_end`.
pub fn advect_pathline(
    sl: &mut Streamline,
    sample: RhsT<'_>,
    region: &dyn Fn(Vec3, f64) -> bool,
    t_end: f64,
    limits: &StepLimits,
) -> Advected {
    let mut steps_this = 0u64;
    let done = |sl: &mut Streamline, why: Termination, steps: u64| {
        sl.terminate(why);
        Advected { outcome: AdvectOutcome::Terminated(why), steps }
    };
    loop {
        let pos = sl.state.position;
        let t = sl.state.time;
        if !region(pos, t) {
            return Advected { outcome: AdvectOutcome::LeftRegion, steps: steps_this };
        }
        if t >= t_end - 1e-12 {
            return done(sl, Termination::MaxTime, steps_this);
        }
        if sl.state.steps >= limits.max_steps {
            return done(sl, Termination::MaxSteps, steps_this);
        }
        if sl.state.arc_length >= limits.max_arc_length {
            return done(sl, Termination::MaxArcLength, steps_this);
        }
        let v = match sample(pos, t) {
            Some(v) => v,
            None => return done(sl, Termination::ExitedDomain, steps_this),
        };
        if v.norm() < limits.min_speed {
            return done(sl, Termination::ZeroVelocity, steps_this);
        }

        let mut h = clamp(sl.state.h, limits.h_min, limits.h_max).min(t_end - t);
        let mut attempts = 0;
        let accepted = loop {
            match dopri5_step_t(sample, pos, t, h, &limits.tol) {
                Err(StageFail) => {
                    attempts += 1;
                    if attempts > 8 || h <= limits.h_min * 1.0001 {
                        break None;
                    }
                    h *= 0.5;
                }
                Ok(res) => {
                    if res.error > 1.0 {
                        attempts += 1;
                        h *= clamp(0.9 * res.error.powf(-0.2), 0.2, 0.9);
                        if h < limits.h_min {
                            return done(sl, Termination::StepUnderflow, steps_this);
                        }
                        continue;
                    }
                    break Some(res);
                }
            }
        };
        match accepted {
            Some(res) => {
                sl.push_step(res.y, h);
                steps_this += 1;
                let err = res.error.max(1e-10);
                sl.state.h =
                    clamp(h * clamp(0.9 * err.powf(-0.2), 0.2, 5.0), limits.h_min, limits.h_max);
            }
            None => {
                // Edge of resident data: Euler nudge toward the hand-off.
                sl.push_step(pos + v * h, h);
                steps_this += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streamline::StreamlineId;

    fn fresh(seed: Vec3) -> Streamline {
        Streamline::new(StreamlineId(0), seed, 1e-2)
    }

    #[test]
    fn nonautonomous_accuracy() {
        // x' = t  =>  x(T) = x0 + T^2/2, exactly representable by an
        // order-5 scheme.
        let f = |_p: Vec3, t: f64| Some(Vec3::new(t, 0.0, 0.0));
        let mut y = Vec3::ZERO;
        let mut t = 0.0;
        let tol = Tolerances::default();
        for _ in 0..10 {
            y = dopri5_step_t(&f, y, t, 0.1, &tol).unwrap().y;
            t += 0.1;
        }
        assert!((y.x - 0.5).abs() < 1e-12, "x = {}", y.x);
    }

    #[test]
    fn nonautonomous_convergence_order() {
        // x' = sin(t) x  =>  x(T) = x0 exp(1 - cos T), at T = 2.
        let f = |p: Vec3, t: f64| Some(p * t.sin());
        let exact = (1.0 - 2.0f64.cos()).exp();
        let err = |h: f64| {
            let n = (2.0 / h).round() as usize;
            let mut y = Vec3::new(1.0, 0.0, 0.0);
            let mut t = 0.0;
            for _ in 0..n {
                y = dopri5_step_t(&f, y, t, h, &Tolerances::default()).unwrap().y;
                t += h;
            }
            (y.x - exact).abs()
        };
        // Compare in the truncation-dominated regime (errors at h = 0.1
        // already approach accumulated roundoff for this problem).
        let rate = (err(0.4) / err(0.2)).log2();
        assert!(rate > 4.5, "observed order {rate}");
    }

    #[test]
    fn pathline_stops_at_time_end() {
        let f = |_p: Vec3, _t: f64| Some(Vec3::X);
        let region = |_p: Vec3, _t: f64| true;
        let mut sl = fresh(Vec3::ZERO);
        let r = advect_pathline(&mut sl, &f, &region, 2.0, &StepLimits::default());
        assert_eq!(r.outcome, AdvectOutcome::Terminated(Termination::MaxTime));
        // Exactly integrated to t = 2 (steps clipped at the boundary).
        assert!((sl.state.time - 2.0).abs() < 1e-9);
        assert!((sl.state.position.x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pathline_leaves_region() {
        let f = |_p: Vec3, _t: f64| Some(Vec3::X);
        let region = |p: Vec3, _t: f64| p.x < 0.5;
        let mut sl = fresh(Vec3::ZERO);
        let r = advect_pathline(&mut sl, &f, &region, 100.0, &StepLimits::default());
        assert_eq!(r.outcome, AdvectOutcome::LeftRegion);
        assert!(sl.state.position.x >= 0.5);
        assert!(sl.is_active());
    }

    #[test]
    fn time_interval_region_hands_off_between_snapshots() {
        // Region = time interval [0, 1): the pathline must stop right at
        // the snapshot boundary so the caller can load the next pair.
        let f = |_p: Vec3, _t: f64| Some(Vec3::X);
        let region = |_p: Vec3, t: f64| t < 1.0;
        let mut sl = fresh(Vec3::ZERO);
        let r = advect_pathline(&mut sl, &f, &region, 100.0, &StepLimits::default());
        assert_eq!(r.outcome, AdvectOutcome::LeftRegion);
        assert!(sl.state.time >= 1.0 && sl.state.time < 1.6);
    }

    #[test]
    fn pathline_differs_from_streamline_in_unsteady_field() {
        // In v = (cos t, 0, 0) the pathline from 0 follows sin(t); the
        // streamline of the frozen t=0 field goes straight.
        let f = |_p: Vec3, t: f64| Some(Vec3::new(t.cos(), 0.0, 0.0));
        let region = |_p: Vec3, _t: f64| true;
        let mut sl = fresh(Vec3::ZERO);
        let limits = StepLimits { h_max: 0.05, ..Default::default() };
        advect_pathline(&mut sl, &f, &region, std::f64::consts::PI, &limits);
        // x(pi) = sin(pi) = 0 — the pathline came back.
        assert!(sl.state.position.x.abs() < 1e-6, "x = {}", sl.state.position.x);
        assert!(sl.state.arc_length > 1.5, "it did travel");
    }
}
