//! Dormand–Prince 5(4) embedded Runge–Kutta pair (DOPRI5).
//!
//! The scheme the paper uses (§2.1, reference \[18\] — Prince & Dormand,
//! "High order embedded Runge-Kutta formulae"). Seven stages, fifth-order
//! solution with an embedded fourth-order estimate whose difference drives
//! adaptive step-size control in the tracer.

use crate::ode::{FsalCache, Rhs, StageFail, StepResult, Stepper, Tolerances};
use streamline_math::Vec3;

// Butcher tableau (c nodes, a coefficients, b fifth-order weights,
// e = b − b̂ error weights).
const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];

const A: [[f64; 6]; 7] = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [19372.0 / 6561.0, -25360.0 / 2187.0, 64448.0 / 6561.0, -212.0 / 729.0, 0.0, 0.0],
    [9017.0 / 3168.0, -355.0 / 33.0, 46732.0 / 5247.0, 49.0 / 176.0, -5103.0 / 18656.0, 0.0],
    [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0],
];

const B5: [f64; 7] =
    [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0, 0.0];

// Error weights: b5 − b4 (the embedded 4th-order weights folded in).
const E: [f64; 7] = [
    71.0 / 57600.0,
    0.0,
    -71.0 / 16695.0,
    71.0 / 1920.0,
    -17253.0 / 339200.0,
    22.0 / 525.0,
    -1.0 / 40.0,
];

/// The `(a, b5, e, c)` tableau references, shared with the non-autonomous
/// stepper in [`crate::unsteady`].
pub(crate) type Tableau =
    (&'static [[f64; 6]; 7], &'static [f64; 7], &'static [f64; 7], &'static [f64; 7]);

pub(crate) fn tableau() -> Tableau {
    (&A, &B5, &E, &C)
}

/// The Dormand–Prince 5(4) stepper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dopri5;

impl Stepper for Dopri5 {
    fn step(&self, f: Rhs<'_>, y: Vec3, h: f64, tol: &Tolerances) -> Result<StepResult, StageFail> {
        self.step_fsal(f, y, h, tol, &mut FsalCache::new())
    }

    /// FSAL stepping: `A[6]` (the seventh-stage abscissa weights) equals
    /// `B5[..6]` with `B5[6] = 0`, and both loops skip zero weights and
    /// accumulate in the same order — so the seventh stage's argument *is*
    /// the fifth-order solution, bit for bit. That makes `k7 = f(y1)` the
    /// next step's `k1`, which the memo hands back whenever the next
    /// invocation starts from `y1` exactly (accepted step) or retries `y`
    /// exactly (rejected step).
    fn step_fsal(
        &self,
        f: Rhs<'_>,
        y: Vec3,
        h: f64,
        tol: &Tolerances,
        fsal: &mut FsalCache,
    ) -> Result<StepResult, StageFail> {
        let mut k = [Vec3::ZERO; 7];
        k[0] = match fsal.lookup(y) {
            Some(k1) => k1,
            None => f(y).ok_or(StageFail)?,
        };
        fsal.note_start(y, k[0]);
        for s in 1..6 {
            let mut arg = y;
            for (j, kj) in k.iter().enumerate().take(s) {
                let a = A[s][j];
                if a != 0.0 {
                    arg += *kj * (a * h);
                }
            }
            k[s] = f(arg).ok_or(StageFail)?;
        }
        // Seventh stage argument == y1 (see above).
        let mut y1 = y;
        for (j, kj) in k.iter().enumerate().take(6) {
            let a = A[6][j];
            if a != 0.0 {
                y1 += *kj * (a * h);
            }
        }
        k[6] = f(y1).ok_or(StageFail)?;
        fsal.note_end(y1, k[6]);
        let mut err = Vec3::ZERO;
        for (s, ks) in k.iter().enumerate() {
            if E[s] != 0.0 {
                err += *ks * (E[s] * h);
            }
        }
        Ok(StepResult { y: y1, error: tol.error_norm(err, y, y1) })
    }

    fn order(&self) -> usize {
        5
    }

    fn adaptive(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "dopri5"
    }
}

/// DOPRI5 with FSAL reuse disabled: every step evaluates all seven stages
/// afresh. Trajectories are bit-identical to [`Dopri5`]'s; this exists as
/// the no-reuse baseline for benchmarks and bit-identity tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dopri5NoReuse;

impl Stepper for Dopri5NoReuse {
    fn step(&self, f: Rhs<'_>, y: Vec3, h: f64, tol: &Tolerances) -> Result<StepResult, StageFail> {
        Dopri5.step(f, y, h, tol)
    }

    // The default `step_fsal` clears the memo and delegates here, so the
    // tracer's speed check cannot reuse stages either — a true baseline.

    fn order(&self) -> usize {
        5
    }

    fn adaptive(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "dopri5-noreuse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Integrate the saddle field y' = (x, −y, 0) whose exact solution is
    /// exponential, and return the error at t = 1 with fixed step h.
    fn saddle_error(h: f64) -> f64 {
        let mut f = |p: Vec3| Some(Vec3::new(p.x, -p.y, 0.0));
        let mut y = Vec3::new(1.0, 1.0, 0.0);
        let n = (1.0 / h).round() as usize;
        for _ in 0..n {
            y = Dopri5.step(&mut f, y, h, &Tolerances::default()).unwrap().y;
        }
        let exact = Vec3::new(1f64.exp(), (-1f64).exp(), 0.0);
        y.distance(exact)
    }

    #[test]
    fn fifth_order_convergence() {
        // Halving h should reduce the error by about 2^5 = 32.
        let e1 = saddle_error(0.1);
        let e2 = saddle_error(0.05);
        let rate = (e1 / e2).log2();
        assert!(rate > 4.5, "observed order {rate}, e1={e1}, e2={e2}");
    }

    #[test]
    fn error_estimate_tracks_true_error() {
        // For a nonlinear field the embedded estimate should be within a
        // couple of orders of magnitude of the true one-step error.
        let mut f = |p: Vec3| Some(Vec3::new(p.y * p.z + 1.0, -p.x, (p.x * 0.5).sin()));
        let y = Vec3::new(0.3, 0.7, -0.2);
        let h = 0.2;
        let tol = Tolerances { abs: 1.0, rel: 0.0 }; // error_norm == |err| in max-norm
        let big = Dopri5.step(&mut f, y, h, &tol).unwrap();
        // Reference: 100 small steps.
        let mut r = y;
        for _ in 0..100 {
            r = Dopri5.step(&mut f, r, h / 100.0, &tol).unwrap().y;
        }
        let true_err = big.y.distance(r);
        assert!(big.error > 0.0);
        assert!(
            big.error / true_err < 100.0 && true_err / big.error < 100.0,
            "estimate {} vs true {}",
            big.error,
            true_err
        );
    }

    #[test]
    fn consistency_b5_sums_to_one() {
        let s: f64 = B5.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
        // Row sums of A equal the C nodes (stage consistency).
        for i in 0..7 {
            let row: f64 = A[i].iter().sum();
            assert!((row - C[i]).abs() < 1e-12, "row {i}: {row} vs {}", C[i]);
        }
    }

    #[test]
    fn uniform_field_has_zero_error_estimate() {
        let mut f = |_: Vec3| Some(Vec3::new(2.0, 0.0, 0.0));
        let r = Dopri5.step(&mut f, Vec3::ZERO, 0.5, &Tolerances::default()).unwrap();
        // Exact up to the rounding of the tableau-weight sums.
        assert!(r.y.distance(Vec3::new(1.0, 0.0, 0.0)) < 1e-14);
        assert!(r.error < 1e-6);
    }

    #[test]
    fn fsal_tableau_identity_holds() {
        // The property everything rests on: the seventh-stage abscissa
        // weights are the fifth-order solution weights.
        for j in 0..6 {
            assert_eq!(A[6][j].to_bits(), B5[j].to_bits(), "A[6][{j}] != B5[{j}]");
        }
        assert_eq!(B5[6], 0.0);
    }

    #[test]
    fn fsal_chain_is_bit_identical_and_saves_one_stage() {
        let field = |p: Vec3| Some(Vec3::new(p.y * p.z + 1.0, (-p.x * 0.7).cos(), p.x - p.z));
        let tol = Tolerances::default();
        let h = 0.05;
        let n = 40;

        let plain_evals = std::cell::Cell::new(0u64);
        let mut plain = Vec3::new(0.2, -0.1, 0.4);
        let mut f = |p: Vec3| {
            plain_evals.set(plain_evals.get() + 1);
            field(p)
        };
        for _ in 0..n {
            plain = Dopri5.step(&mut f, plain, h, &tol).unwrap().y;
        }

        let fsal_evals = std::cell::Cell::new(0u64);
        let mut reused = Vec3::new(0.2, -0.1, 0.4);
        let mut g = |p: Vec3| {
            fsal_evals.set(fsal_evals.get() + 1);
            field(p)
        };
        let mut cache = FsalCache::new();
        for _ in 0..n {
            reused = Dopri5.step_fsal(&mut g, reused, h, &tol, &mut cache).unwrap().y;
        }

        assert_eq!(plain.x.to_bits(), reused.x.to_bits());
        assert_eq!(plain.y.to_bits(), reused.y.to_bits());
        assert_eq!(plain.z.to_bits(), reused.z.to_bits());
        assert_eq!(plain_evals.get(), 7 * n);
        // First step pays all seven stages; every later step reuses k7 as k1.
        assert_eq!(fsal_evals.get(), 7 + 6 * (n - 1));
    }

    #[test]
    fn fsal_reuses_k1_when_a_step_is_retried() {
        // A rejected step retries from the same start point with a smaller
        // h; the memoized k1 must serve that retry without re-evaluating.
        let evals = std::cell::Cell::new(0u64);
        let mut f = |p: Vec3| {
            evals.set(evals.get() + 1);
            Some(Vec3::new(p.x + 1.0, p.y * 2.0, 0.3))
        };
        let tol = Tolerances::default();
        let mut cache = FsalCache::new();
        let y = Vec3::new(0.5, 0.5, 0.5);
        let full = Dopri5.step_fsal(&mut f, y, 0.4, &tol, &mut cache).unwrap();
        assert_eq!(evals.get(), 7);
        let retry = Dopri5.step_fsal(&mut f, y, 0.2, &tol, &mut cache).unwrap();
        assert_eq!(evals.get(), 7 + 6, "the retry must reuse the memoized k1");
        // And the retried step is what a cold stepper would produce.
        let cold = Dopri5.step(&mut f, y, 0.2, &tol).unwrap();
        assert_eq!(retry.y, cold.y);
        assert_eq!(retry.error, cold.error);
        assert_ne!(full.y, retry.y);
    }

    #[test]
    fn noreuse_baseline_matches_dopri5() {
        let mut f = |p: Vec3| Some(Vec3::new(p.y, -p.x, 0.1));
        let tol = Tolerances::default();
        let y = Vec3::new(1.0, 0.0, 0.0);
        let a = Dopri5.step(&mut f, y, 0.1, &tol).unwrap();
        let b = Dopri5NoReuse.step(&mut f, y, 0.1, &tol).unwrap();
        assert_eq!(a, b);
        assert_eq!(Dopri5NoReuse.order(), 5);
        assert!(Dopri5NoReuse.adaptive());
        assert_eq!(Dopri5NoReuse.name(), "dopri5-noreuse");
    }

    #[test]
    fn stage_failure_inside_step() {
        // Field undefined past x = 0.15: the k2 stage (x = 0.2·h·k1) fails
        // for h = 1.
        let mut f = |p: Vec3| if p.x <= 0.15 { Some(Vec3::X) } else { None };
        assert!(Dopri5.step(&mut f, Vec3::ZERO, 1.0, &Tolerances::default()).is_err());
        assert!(Dopri5.step(&mut f, Vec3::ZERO, 0.1, &Tolerances::default()).is_ok());
    }
}
