//! Dormand–Prince 5(4) embedded Runge–Kutta pair (DOPRI5).
//!
//! The scheme the paper uses (§2.1, reference \[18\] — Prince & Dormand,
//! "High order embedded Runge-Kutta formulae"). Seven stages, fifth-order
//! solution with an embedded fourth-order estimate whose difference drives
//! adaptive step-size control in the tracer.

use crate::ode::{Rhs, StageFail, StepResult, Stepper, Tolerances};
use streamline_math::Vec3;

// Butcher tableau (c nodes, a coefficients, b fifth-order weights,
// e = b − b̂ error weights).
const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];

const A: [[f64; 6]; 7] = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [19372.0 / 6561.0, -25360.0 / 2187.0, 64448.0 / 6561.0, -212.0 / 729.0, 0.0, 0.0],
    [9017.0 / 3168.0, -355.0 / 33.0, 46732.0 / 5247.0, 49.0 / 176.0, -5103.0 / 18656.0, 0.0],
    [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0],
];

const B5: [f64; 7] =
    [35.0 / 384.0, 0.0, 500.0 / 1113.0, 125.0 / 192.0, -2187.0 / 6784.0, 11.0 / 84.0, 0.0];

// Error weights: b5 − b4 (the embedded 4th-order weights folded in).
const E: [f64; 7] = [
    71.0 / 57600.0,
    0.0,
    -71.0 / 16695.0,
    71.0 / 1920.0,
    -17253.0 / 339200.0,
    22.0 / 525.0,
    -1.0 / 40.0,
];

/// The `(a, b5, e, c)` tableau references, shared with the non-autonomous
/// stepper in [`crate::unsteady`].
pub(crate) type Tableau =
    (&'static [[f64; 6]; 7], &'static [f64; 7], &'static [f64; 7], &'static [f64; 7]);

pub(crate) fn tableau() -> Tableau {
    (&A, &B5, &E, &C)
}

/// The Dormand–Prince 5(4) stepper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dopri5;

impl Stepper for Dopri5 {
    fn step(&self, f: Rhs<'_>, y: Vec3, h: f64, tol: &Tolerances) -> Result<StepResult, StageFail> {
        // C nodes are implicit in the A coefficients for an autonomous RHS;
        // kept for documentation and potential time-dependent extension.
        let _ = C;
        let mut k = [Vec3::ZERO; 7];
        k[0] = f(y).ok_or(StageFail)?;
        for s in 1..7 {
            let mut arg = y;
            for (j, kj) in k.iter().enumerate().take(s) {
                let a = A[s][j];
                if a != 0.0 {
                    arg += *kj * (a * h);
                }
            }
            k[s] = f(arg).ok_or(StageFail)?;
        }
        let mut y1 = y;
        let mut err = Vec3::ZERO;
        for (s, ks) in k.iter().enumerate() {
            if B5[s] != 0.0 {
                y1 += *ks * (B5[s] * h);
            }
            if E[s] != 0.0 {
                err += *ks * (E[s] * h);
            }
        }
        Ok(StepResult { y: y1, error: tol.error_norm(err, y, y1) })
    }

    fn order(&self) -> usize {
        5
    }

    fn adaptive(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "dopri5"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Integrate the saddle field y' = (x, −y, 0) whose exact solution is
    /// exponential, and return the error at t = 1 with fixed step h.
    fn saddle_error(h: f64) -> f64 {
        let f = |p: Vec3| Some(Vec3::new(p.x, -p.y, 0.0));
        let mut y = Vec3::new(1.0, 1.0, 0.0);
        let n = (1.0 / h).round() as usize;
        for _ in 0..n {
            y = Dopri5.step(&f, y, h, &Tolerances::default()).unwrap().y;
        }
        let exact = Vec3::new(1f64.exp(), (-1f64).exp(), 0.0);
        y.distance(exact)
    }

    #[test]
    fn fifth_order_convergence() {
        // Halving h should reduce the error by about 2^5 = 32.
        let e1 = saddle_error(0.1);
        let e2 = saddle_error(0.05);
        let rate = (e1 / e2).log2();
        assert!(rate > 4.5, "observed order {rate}, e1={e1}, e2={e2}");
    }

    #[test]
    fn error_estimate_tracks_true_error() {
        // For a nonlinear field the embedded estimate should be within a
        // couple of orders of magnitude of the true one-step error.
        let f = |p: Vec3| Some(Vec3::new(p.y * p.z + 1.0, -p.x, (p.x * 0.5).sin()));
        let y = Vec3::new(0.3, 0.7, -0.2);
        let h = 0.2;
        let tol = Tolerances { abs: 1.0, rel: 0.0 }; // error_norm == |err| in max-norm
        let big = Dopri5.step(&f, y, h, &tol).unwrap();
        // Reference: 100 small steps.
        let mut r = y;
        for _ in 0..100 {
            r = Dopri5.step(&f, r, h / 100.0, &tol).unwrap().y;
        }
        let true_err = big.y.distance(r);
        assert!(big.error > 0.0);
        assert!(
            big.error / true_err < 100.0 && true_err / big.error < 100.0,
            "estimate {} vs true {}",
            big.error,
            true_err
        );
    }

    #[test]
    fn consistency_b5_sums_to_one() {
        let s: f64 = B5.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
        // Row sums of A equal the C nodes (stage consistency).
        for i in 0..7 {
            let row: f64 = A[i].iter().sum();
            assert!((row - C[i]).abs() < 1e-12, "row {i}: {row} vs {}", C[i]);
        }
    }

    #[test]
    fn uniform_field_has_zero_error_estimate() {
        let f = |_: Vec3| Some(Vec3::new(2.0, 0.0, 0.0));
        let r = Dopri5.step(&f, Vec3::ZERO, 0.5, &Tolerances::default()).unwrap();
        // Exact up to the rounding of the tableau-weight sums.
        assert!(r.y.distance(Vec3::new(1.0, 0.0, 0.0)) < 1e-14);
        assert!(r.error < 1e-6);
    }

    #[test]
    fn stage_failure_inside_step() {
        // Field undefined past x = 0.15: the k2 stage (x = 0.2·h·k1) fails
        // for h = 1.
        let f = |p: Vec3| if p.x <= 0.15 { Some(Vec3::X) } else { None };
        assert!(Dopri5.step(&f, Vec3::ZERO, 1.0, &Tolerances::default()).is_err());
        assert!(Dopri5.step(&f, Vec3::ZERO, 0.1, &Tolerances::default()).is_ok());
    }
}
