//! The block-local tracer: advance a streamline through resident data until
//! it leaves the region the caller owns or terminates for good.
//!
//! This is the inner loop shared by all three parallel algorithms. Each
//! algorithm decides *which* blocks are resident and *what to do* when a
//! streamline exits ("Each streamline is integrated until it leaves the
//! blocks owned by the processor", §4.1); the tracer only integrates.

use crate::ode::{FsalCache, StageFail, Stepper, Tolerances};
use crate::streamline::{Streamline, Termination};
use streamline_math::float::clamp;
use streamline_math::Vec3;

/// Integration budgets and step-size control parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepLimits {
    /// Per-streamline accepted-step budget.
    pub max_steps: u64,
    /// Terminate after this much arc length.
    pub max_arc_length: f64,
    /// Terminate after this much integration time.
    pub max_time: f64,
    /// Stagnation threshold: |v| below this terminates (critical point).
    pub min_speed: f64,
    /// Initial step size for fresh streamlines.
    pub h0: f64,
    /// Hard lower bound on the step size.
    pub h_min: f64,
    /// Hard upper bound on the step size.
    pub h_max: f64,
    /// Error tolerances for adaptive schemes.
    pub tol: Tolerances,
}

impl Default for StepLimits {
    fn default() -> Self {
        StepLimits {
            max_steps: 10_000,
            max_arc_length: f64::INFINITY,
            max_time: f64::INFINITY,
            min_speed: 1e-9,
            h0: 1e-2,
            h_min: 1e-9,
            h_max: 0.5,
            tol: Tolerances::default(),
        }
    }
}

/// Why an [`advect`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvectOutcome {
    /// The streamline's position left the caller's region; it is still
    /// active and must continue in whichever block owns the position.
    LeftRegion,
    /// The streamline terminated (status already updated).
    Terminated(Termination),
}

/// What [`advect`] did, with the work it performed for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Advected {
    pub outcome: AdvectOutcome,
    /// Accepted integration steps performed by this call.
    pub steps: u64,
}

/// Advance `sl` with `stepper` while `region(position)` holds and `sample`
/// provides field values (the ghost-extended lattice, a superset of the
/// region).
///
/// ```
/// use streamline_integrate::{advect, AdvectOutcome, Dopri5, StepLimits, Streamline, StreamlineId};
/// use streamline_math::Vec3;
///
/// // A uniform +x field over the unit slab x < 1.
/// let mut sample = |_p: Vec3| Some(Vec3::X);
/// let region = |p: Vec3| p.x < 1.0;
/// let mut sl = Streamline::new(StreamlineId(0), Vec3::ZERO, 1e-2);
/// let r = advect(&mut sl, &mut sample, &region, &StepLimits::default(), &Dopri5);
/// assert_eq!(r.outcome, AdvectOutcome::LeftRegion);
/// assert!(sl.state.position.x >= 1.0); // handed off at the block face
/// ```
///
/// Returns when the streamline leaves the region (hand-off point) or
/// terminates. Adaptive schemes get PI-style step-size control; stage
/// failures (probe outside resident data) shrink the step and, as a last
/// resort, fall back to a single Euler edge-step so the curve always makes
/// progress toward the hand-off.
///
/// An [`FsalCache`] local to this call carries known `(y, f(y))` pairs
/// between steps, so FSAL steppers reuse an accepted step's last stage as
/// the next step's first and the per-iteration speed check costs no extra
/// evaluation. The cache dies with the call, which is exactly the required
/// invalidation at seeds and block hand-offs (the RHS changes there).
pub fn advect(
    sl: &mut Streamline,
    sample: &mut dyn FnMut(Vec3) -> Option<Vec3>,
    region: &dyn Fn(Vec3) -> bool,
    limits: &StepLimits,
    stepper: &dyn Stepper,
) -> Advected {
    let mut steps_this = 0u64;
    let mut fsal = FsalCache::new();
    let done = |sl: &mut Streamline, why: Termination, steps: u64| {
        sl.terminate(why);
        Advected { outcome: AdvectOutcome::Terminated(why), steps }
    };
    loop {
        let pos = sl.state.position;
        if !region(pos) {
            return Advected { outcome: AdvectOutcome::LeftRegion, steps: steps_this };
        }
        if sl.state.steps >= limits.max_steps {
            return done(sl, Termination::MaxSteps, steps_this);
        }
        if sl.state.arc_length >= limits.max_arc_length {
            return done(sl, Termination::MaxArcLength, steps_this);
        }
        if sl.state.time >= limits.max_time {
            return done(sl, Termination::MaxTime, steps_this);
        }
        let v = match fsal.lookup(pos) {
            // An accepted FSAL step already evaluated f here.
            Some(v) => v,
            None => match sample(pos) {
                Some(v) => v,
                // Inside the region but outside the lattice: only possible at
                // the domain boundary — the streamline has effectively exited.
                None => return done(sl, Termination::ExitedDomain, steps_this),
            },
        };
        if v.norm() < limits.min_speed {
            return done(sl, Termination::ZeroVelocity, steps_this);
        }

        let mut h = clamp(sl.state.h, limits.h_min, limits.h_max);
        // Try the step, shrinking on stage failure or excessive error.
        let mut attempts = 0;
        let accepted = loop {
            match stepper.step_fsal(sample, pos, h, &limits.tol, &mut fsal) {
                Err(StageFail) => {
                    attempts += 1;
                    if attempts > 8 || h <= limits.h_min * 1.0001 {
                        // Edge of the resident lattice: take one Euler step
                        // with the current h so the curve crosses the face
                        // and the hand-off logic can take over.
                        break None;
                    }
                    h *= 0.5;
                }
                Ok(res) => {
                    if stepper.adaptive() && res.error > 1.0 {
                        attempts += 1;
                        let fac = clamp(0.9 * res.error.powf(-0.2), 0.2, 0.9);
                        h *= fac;
                        if h < limits.h_min {
                            return done(sl, Termination::StepUnderflow, steps_this);
                        }
                        continue;
                    }
                    break Some(res);
                }
            }
        };

        match accepted {
            Some(res) => {
                sl.push_step(res.y, h);
                steps_this += 1;
                // Grow/shrink for the next step.
                let next_h = if stepper.adaptive() {
                    let err = res.error.max(1e-10);
                    clamp(h * clamp(0.9 * err.powf(-0.2), 0.2, 5.0), limits.h_min, limits.h_max)
                } else {
                    h
                };
                sl.state.h = next_h;
            }
            None => {
                // Euler edge-step fallback.
                sl.push_step(pos + v * h, h);
                steps_this += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dopri5::Dopri5;
    use crate::euler::Euler;
    use crate::rk4::Rk4;
    use crate::streamline::{StreamlineId, StreamlineStatus};
    use streamline_math::Aabb;

    fn fresh(seed: Vec3) -> Streamline {
        Streamline::new(StreamlineId(0), seed, 1e-2)
    }

    #[test]
    fn uniform_field_crosses_region() {
        // Field +x over all space; region is the unit cube. A streamline
        // seeded inside must leave through the x = 1 face.
        let region_box = Aabb::unit();
        let mut sample = |_p: Vec3| Some(Vec3::X);
        let region = move |p: Vec3| region_box.contains(p);
        let mut sl = fresh(Vec3::splat(0.5));
        let r = advect(&mut sl, &mut sample, &region, &StepLimits::default(), &Dopri5);
        assert_eq!(r.outcome, AdvectOutcome::LeftRegion);
        assert!(sl.is_active());
        assert!(sl.state.position.x > 1.0);
        assert!((sl.state.position.y - 0.5).abs() < 1e-9);
        assert!(r.steps > 0);
        assert_eq!(r.steps, sl.state.steps);
    }

    #[test]
    fn rotation_stays_and_hits_step_budget() {
        // Circular orbit fully inside the region: must terminate on steps.
        let mut sample = |p: Vec3| Some(Vec3::new(-p.y, p.x, 0.0));
        let region = |p: Vec3| p.norm() < 10.0;
        let mut sl = fresh(Vec3::new(1.0, 0.0, 0.0));
        let limits = StepLimits { max_steps: 500, ..Default::default() };
        let r = advect(&mut sl, &mut sample, &region, &limits, &Dopri5);
        assert_eq!(r.outcome, AdvectOutcome::Terminated(Termination::MaxSteps));
        assert_eq!(sl.state.steps, 500);
        // Radius conserved to tolerance by the adaptive integrator.
        assert!((sl.state.position.norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn sink_terminates_on_zero_velocity() {
        let c = Vec3::splat(0.5);
        let mut sample = move |p: Vec3| Some((c - p) * 2.0);
        let region = |_p: Vec3| true;
        let mut sl = fresh(Vec3::ZERO);
        let limits = StepLimits { min_speed: 1e-6, max_steps: 100_000, ..Default::default() };
        let r = advect(&mut sl, &mut sample, &region, &limits, &Dopri5);
        assert_eq!(r.outcome, AdvectOutcome::Terminated(Termination::ZeroVelocity));
        assert!(sl.state.position.distance(c) < 1e-3);
    }

    #[test]
    fn arc_length_budget_respected() {
        let mut sample = |_p: Vec3| Some(Vec3::X * 2.0);
        let region = |_p: Vec3| true;
        let mut sl = fresh(Vec3::ZERO);
        let limits = StepLimits { max_arc_length: 3.0, ..Default::default() };
        let r = advect(&mut sl, &mut sample, &region, &limits, &Dopri5);
        assert_eq!(r.outcome, AdvectOutcome::Terminated(Termination::MaxArcLength));
        // Overshoot bounded by one h_max step.
        assert!(sl.state.arc_length < 3.0 + 2.0 * limits.h_max + 1e-9);
    }

    #[test]
    fn max_time_budget_respected() {
        let mut sample = |_p: Vec3| Some(Vec3::X);
        let region = |_p: Vec3| true;
        let mut sl = fresh(Vec3::ZERO);
        let limits = StepLimits { max_time: 1.5, ..Default::default() };
        let r = advect(&mut sl, &mut sample, &region, &limits, &Dopri5);
        assert_eq!(r.outcome, AdvectOutcome::Terminated(Termination::MaxTime));
        assert!(sl.state.time >= 1.5);
    }

    #[test]
    fn lattice_edge_falls_back_to_euler_handoff() {
        // Sample data exists only for x < 1 (no ghost margin); region is
        // x < 1 as well. The tracer must still push the curve past the face.
        let mut sample = |p: Vec3| if p.x < 1.0 { Some(Vec3::X) } else { None };
        let region = |p: Vec3| p.x < 1.0;
        let mut sl = fresh(Vec3::new(0.99, 0.0, 0.0));
        let r = advect(&mut sl, &mut sample, &region, &StepLimits::default(), &Dopri5);
        assert_eq!(r.outcome, AdvectOutcome::LeftRegion);
        assert!(sl.state.position.x >= 1.0);
    }

    #[test]
    fn out_of_lattice_inside_region_is_domain_exit() {
        let mut sample = |_p: Vec3| None::<Vec3>;
        let region = |_p: Vec3| true;
        let mut sl = fresh(Vec3::ZERO);
        let r = advect(&mut sl, &mut sample, &region, &StepLimits::default(), &Dopri5);
        assert_eq!(r.outcome, AdvectOutcome::Terminated(Termination::ExitedDomain));
        assert_eq!(sl.status, StreamlineStatus::Terminated(Termination::ExitedDomain));
    }

    #[test]
    fn fixed_step_schemes_also_work() {
        let region_box = Aabb::unit();
        let mut sample = |p: Vec3| Some(Vec3::new(1.0, 0.1 * p.x, 0.0));
        let region = move |p: Vec3| region_box.contains(p);
        for stepper in [&Euler as &dyn Stepper, &Rk4] {
            let mut sl = fresh(Vec3::new(0.0, 0.5, 0.5));
            let r = advect(&mut sl, &mut sample, &region, &StepLimits::default(), stepper);
            assert_eq!(r.outcome, AdvectOutcome::LeftRegion, "{}", stepper.name());
        }
    }

    #[test]
    fn adaptive_takes_fewer_steps_in_smooth_field_than_euler() {
        let mut sample = |p: Vec3| Some(Vec3::new(1.0, (p.x).sin() * 0.1, 0.0));
        let region = |p: Vec3| p.x < 50.0;
        let limits = StepLimits { max_steps: 1_000_000, ..Default::default() };
        let mut a = fresh(Vec3::ZERO);
        let ra = advect(&mut a, &mut sample, &region, &limits, &Dopri5);
        let mut b = fresh(Vec3::ZERO);
        let rb = advect(&mut b, &mut sample, &region, &limits, &Euler);
        assert_eq!(ra.outcome, AdvectOutcome::LeftRegion);
        assert_eq!(rb.outcome, AdvectOutcome::LeftRegion);
        // Dopri5 grows its step toward h_max; Euler stays at h0.
        assert!(ra.steps * 2 < rb.steps, "dopri {} vs euler {}", ra.steps, rb.steps);
    }

    #[test]
    fn resume_after_handoff_continues_geometry() {
        // Advect through region A, then hand the same streamline to region B.
        let mut sample = |_p: Vec3| Some(Vec3::X);
        let region_a = |p: Vec3| p.x < 1.0;
        let region_b = |p: Vec3| p.x < 2.0;
        let mut sl = fresh(Vec3::ZERO);
        let limits = StepLimits::default();
        assert_eq!(
            advect(&mut sl, &mut sample, &region_a, &limits, &Dopri5).outcome,
            AdvectOutcome::LeftRegion
        );
        let mid_len = sl.geometry.len();
        assert_eq!(
            advect(&mut sl, &mut sample, &region_b, &limits, &Dopri5).outcome,
            AdvectOutcome::LeftRegion
        );
        assert!(sl.geometry.len() > mid_len);
        assert!(sl.state.position.x >= 2.0);
        // Geometry is monotone in x for this field.
        for w in sl.geometry.windows(2) {
            assert!(w[1].x >= w[0].x);
        }
    }
}
