//! The streamline object that algorithms own, advance and communicate.
//!
//! §8 of the paper notes that "communicating streamline geometry accounts
//! for a large proportion of communication cost"; a [`Streamline`] therefore
//! tracks its geometry explicitly and can report both its full communicated
//! size and the compact solver-state-only size the paper's future work
//! contemplates.

use serde::{Deserialize, Serialize};
use streamline_math::Vec3;

/// Globally unique streamline identifier (index into the seed set).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StreamlineId(pub u32);

impl StreamlineId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why integration of a streamline stopped for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// Left the data domain entirely.
    ExitedDomain,
    /// Hit the per-streamline step budget.
    MaxSteps,
    /// Reached the maximum arc length.
    MaxArcLength,
    /// Reached the maximum integration time.
    MaxTime,
    /// Velocity magnitude fell below the stagnation threshold (critical
    /// point — the attracting structures of §3.1).
    ZeroVelocity,
    /// Step size collapsed below the minimum without progress.
    StepUnderflow,
    /// The block holding the streamline's position could not be loaded
    /// (permanent store fault after retries). The curve up to the failure
    /// point is kept; integration cannot continue without the data.
    BlockUnavailable,
    /// The rank carrying the streamline's in-flight state died (fail-stop)
    /// and no survivor could recover the work. Only the seed is known.
    RankLost,
}

/// Lifecycle state of a streamline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamlineStatus {
    /// Waiting to be integrated in the block that owns `position`.
    Active,
    /// Finished, with the reason.
    Terminated(Termination),
}

/// Compact integration state — what the paper's future-work section calls
/// "solver state": enough to resume integration anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverState {
    pub position: Vec3,
    /// Integration parameter t.
    pub time: f64,
    /// Current adaptive step size.
    pub h: f64,
    pub steps: u64,
    pub arc_length: f64,
}

/// A streamline: identity, solver state, accumulated geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Streamline {
    pub id: StreamlineId,
    pub seed: Vec3,
    pub state: SolverState,
    pub status: StreamlineStatus,
    /// Vertices of the computed curve, starting with the seed. Empty except
    /// for the seed when built with [`Streamline::new_lean`] — the vertex
    /// *count* (`state.steps + 1`) is tracked either way, so communicated
    /// sizes and memory accounting stay faithful to a geometry-carrying run.
    pub geometry: Vec<Vec3>,
    record_geometry: bool,
}

impl Streamline {
    /// A fresh streamline at its seed with initial step size `h0`.
    pub fn new(id: StreamlineId, seed: Vec3, h0: f64) -> Self {
        Streamline {
            id,
            seed,
            state: SolverState { position: seed, time: 0.0, h: h0, steps: 0, arc_length: 0.0 },
            status: StreamlineStatus::Active,
            geometry: vec![seed],
            record_geometry: true,
        }
    }

    /// Like [`Streamline::new`] but without storing vertices — used by the
    /// scaling experiments, where tens of thousands of long streamlines
    /// would otherwise dominate host memory.
    pub fn new_lean(id: StreamlineId, seed: Vec3, h0: f64) -> Self {
        let mut s = Self::new(id, seed, h0);
        s.record_geometry = false;
        s
    }

    pub fn is_active(&self) -> bool {
        self.status == StreamlineStatus::Active
    }

    /// Record an accepted integration step.
    pub fn push_step(&mut self, new_pos: Vec3, dt: f64) {
        self.state.arc_length += new_pos.distance(self.state.position);
        self.state.position = new_pos;
        self.state.time += dt;
        self.state.steps += 1;
        if self.record_geometry {
            self.geometry.push(new_pos);
        }
    }

    pub fn terminate(&mut self, why: Termination) {
        self.status = StreamlineStatus::Terminated(why);
    }

    /// Number of curve vertices computed so far (seed included), whether or
    /// not they are stored.
    pub fn vertex_count(&self) -> u64 {
        self.state.steps + 1
    }

    /// Bytes needed to communicate this streamline *with* geometry — what the
    /// measured algorithms send (§8: geometry dominates communication cost).
    pub fn comm_bytes_full(&self) -> usize {
        Self::COMM_BYTES_STATE + self.vertex_count() as usize * 24
    }

    /// Bytes for solver state + identity only (the compact alternative the
    /// paper's future work proposes).
    pub const COMM_BYTES_STATE: usize = 4 /* id */ + 24 /* seed */ + 8 * 7 /* state */ + 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_streamline_is_active_at_seed() {
        let s = Streamline::new(StreamlineId(5), Vec3::new(1.0, 2.0, 3.0), 0.01);
        assert!(s.is_active());
        assert_eq!(s.state.position, s.seed);
        assert_eq!(s.geometry, vec![s.seed]);
        assert_eq!(s.state.steps, 0);
    }

    #[test]
    fn push_step_accumulates() {
        let mut s = Streamline::new(StreamlineId(0), Vec3::ZERO, 0.01);
        s.push_step(Vec3::new(3.0, 4.0, 0.0), 0.5);
        s.push_step(Vec3::new(3.0, 4.0, 1.0), 0.25);
        assert_eq!(s.state.steps, 2);
        assert!((s.state.arc_length - 6.0).abs() < 1e-12);
        assert!((s.state.time - 0.75).abs() < 1e-12);
        assert_eq!(s.geometry.len(), 3);
    }

    #[test]
    fn terminate_changes_status() {
        let mut s = Streamline::new(StreamlineId(0), Vec3::ZERO, 0.01);
        s.terminate(Termination::ExitedDomain);
        assert!(!s.is_active());
        assert_eq!(s.status, StreamlineStatus::Terminated(Termination::ExitedDomain));
    }

    #[test]
    fn comm_bytes_grow_with_geometry() {
        let mut s = Streamline::new(StreamlineId(0), Vec3::ZERO, 0.01);
        let before = s.comm_bytes_full();
        for i in 0..10 {
            s.push_step(Vec3::splat(i as f64), 0.1);
        }
        assert_eq!(s.comm_bytes_full(), before + 10 * 24);
        assert!(Streamline::COMM_BYTES_STATE < before);
    }

    #[test]
    fn lean_streamline_tracks_counts_without_vertices() {
        let mut full = Streamline::new(StreamlineId(0), Vec3::ZERO, 0.01);
        let mut lean = Streamline::new_lean(StreamlineId(0), Vec3::ZERO, 0.01);
        for i in 0..5 {
            let p = Vec3::splat(i as f64 + 1.0);
            full.push_step(p, 0.1);
            lean.push_step(p, 0.1);
        }
        assert_eq!(lean.geometry.len(), 1);
        assert_eq!(full.geometry.len(), 6);
        assert_eq!(lean.vertex_count(), full.vertex_count());
        assert_eq!(lean.comm_bytes_full(), full.comm_bytes_full());
        assert_eq!(lean.state, full.state);
    }
}
