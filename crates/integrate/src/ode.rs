//! The stepper abstraction shared by all integration schemes.
//!
//! A stepper advances the autonomous ODE `y' = f(y)` one step. The
//! right-hand side is a *partial* function — sampling block data fails
//! outside the resident lattice — so a step can fail at any internal stage;
//! the tracer reacts by shrinking the step or handing the streamline off.

use streamline_math::Vec3;

/// Right-hand side of the streamline ODE: the interpolated vector field.
/// `None` means the requested point is outside the resident data.
pub type Rhs<'a> = &'a dyn Fn(Vec3) -> Option<Vec3>;

/// A stage evaluation landed outside the resident data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFail;

/// Result of one accepted stepper invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Solution at `t + h`.
    pub y: Vec3,
    /// Scaled error-norm estimate: `<= 1` means the step satisfies the
    /// tolerances. Fixed-step schemes report `0.0` (always accepted).
    pub error: f64,
}

/// Absolute/relative error tolerances for adaptive schemes (§2.1's
/// "adaptive stepsize control").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    pub abs: f64,
    pub rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances { abs: 1e-7, rel: 1e-6 }
    }
}

impl Tolerances {
    /// Scaled max-norm of the embedded error estimate `e` given solution
    /// magnitudes `y0`, `y1` — the standard Hairer–Nørsett–Wanner form.
    pub fn error_norm(&self, e: Vec3, y0: Vec3, y1: Vec3) -> f64 {
        let mut norm = 0.0f64;
        for c in 0..3 {
            let scale = self.abs + self.rel * y0[c].abs().max(y1[c].abs());
            norm = norm.max((e[c] / scale).abs());
        }
        norm
    }
}

/// One-step integration scheme for `y' = f(y)`.
pub trait Stepper {
    /// Attempt one step of size `h` from `y`. Fails when `f` is undefined at
    /// any required stage point.
    fn step(&self, f: Rhs<'_>, y: Vec3, h: f64, tol: &Tolerances) -> Result<StepResult, StageFail>;

    /// Classical convergence order of the scheme.
    fn order(&self) -> usize;

    /// Whether [`StepResult::error`] carries a usable embedded estimate.
    fn adaptive(&self) -> bool {
        false
    }

    /// Scheme name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_norm_scales_with_tolerances() {
        let tol = Tolerances { abs: 1e-6, rel: 0.0 };
        let e = Vec3::new(1e-6, 0.0, 0.0);
        assert!((tol.error_norm(e, Vec3::ZERO, Vec3::ZERO) - 1.0).abs() < 1e-12);
        // Relative part kicks in for large solutions.
        let tol = Tolerances { abs: 0.0, rel: 1e-6 };
        let y = Vec3::splat(100.0);
        assert!((tol.error_norm(Vec3::splat(1e-4), y, y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_norm_takes_max_component() {
        let tol = Tolerances { abs: 1.0, rel: 0.0 };
        let n = tol.error_norm(Vec3::new(0.5, 2.0, 1.0), Vec3::ZERO, Vec3::ZERO);
        assert_eq!(n, 2.0);
    }
}
