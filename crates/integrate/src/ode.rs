//! The stepper abstraction shared by all integration schemes.
//!
//! A stepper advances the autonomous ODE `y' = f(y)` one step. The
//! right-hand side is a *partial* function — sampling block data fails
//! outside the resident lattice — so a step can fail at any internal stage;
//! the tracer reacts by shrinking the step or handing the streamline off.

use streamline_math::Vec3;

/// Right-hand side of the streamline ODE: the interpolated vector field.
/// `None` means the requested point is outside the resident data.
///
/// `FnMut` rather than `Fn`: the hot path threads a stateful
/// cell-cached sampler through here without interior mutability.
pub type Rhs<'a> = &'a mut dyn FnMut(Vec3) -> Option<Vec3>;

/// A stage evaluation landed outside the resident data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageFail;

/// Memo of known `(y, f(y))` pairs carried between stepper invocations, the
/// vehicle for DOPRI5's FSAL ("first same as last") property.
///
/// Entries are keyed by the *exact bits* of the evaluation point, and `f` is
/// a pure function of position for the cache's lifetime (one streamline
/// inside one block), so a hit returns precisely what a fresh evaluation
/// would — reuse can never change a trajectory, only skip work. Two slots
/// suffice: the step's start point (which a rejected step retries) and its
/// end point (which an accepted step starts from).
#[derive(Debug, Clone, Copy, Default)]
pub struct FsalCache {
    start: Option<(Vec3, Vec3)>,
    end: Option<(Vec3, Vec3)>,
}

#[inline]
fn same_bits(a: Vec3, b: Vec3) -> bool {
    a.x.to_bits() == b.x.to_bits()
        && a.y.to_bits() == b.y.to_bits()
        && a.z.to_bits() == b.z.to_bits()
}

impl FsalCache {
    pub fn new() -> Self {
        FsalCache::default()
    }

    /// Known value of `f(y)`, if `y` matches a memoized point bit-for-bit.
    #[inline]
    pub fn lookup(&self, y: Vec3) -> Option<Vec3> {
        if let Some((p, k)) = self.end {
            if same_bits(p, y) {
                return Some(k);
            }
        }
        if let Some((p, k)) = self.start {
            if same_bits(p, y) {
                return Some(k);
            }
        }
        None
    }

    /// Memoize `f(y)` for the step's start point.
    #[inline]
    pub fn note_start(&mut self, y: Vec3, fy: Vec3) {
        self.start = Some((y, fy));
    }

    /// Memoize `f(y1)` for the step's end point (the FSAL stage).
    #[inline]
    pub fn note_end(&mut self, y1: Vec3, fy1: Vec3) {
        self.end = Some((y1, fy1));
    }

    /// Drop all memoized evaluations (the RHS is about to change).
    pub fn clear(&mut self) {
        *self = FsalCache::default();
    }
}

/// Result of one accepted stepper invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Solution at `t + h`.
    pub y: Vec3,
    /// Scaled error-norm estimate: `<= 1` means the step satisfies the
    /// tolerances. Fixed-step schemes report `0.0` (always accepted).
    pub error: f64,
}

/// Absolute/relative error tolerances for adaptive schemes (§2.1's
/// "adaptive stepsize control").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    pub abs: f64,
    pub rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances { abs: 1e-7, rel: 1e-6 }
    }
}

impl Tolerances {
    /// Scaled max-norm of the embedded error estimate `e` given solution
    /// magnitudes `y0`, `y1` — the standard Hairer–Nørsett–Wanner form.
    pub fn error_norm(&self, e: Vec3, y0: Vec3, y1: Vec3) -> f64 {
        let mut norm = 0.0f64;
        for c in 0..3 {
            let scale = self.abs + self.rel * y0[c].abs().max(y1[c].abs());
            norm = norm.max((e[c] / scale).abs());
        }
        norm
    }
}

/// One-step integration scheme for `y' = f(y)`.
pub trait Stepper {
    /// Attempt one step of size `h` from `y`. Fails when `f` is undefined at
    /// any required stage point.
    fn step(&self, f: Rhs<'_>, y: Vec3, h: f64, tol: &Tolerances) -> Result<StepResult, StageFail>;

    /// Like [`Self::step`], consulting and maintaining `fsal`'s memo of
    /// known `(y, f(y))` pairs across invocations. The default clears the
    /// memo and delegates to `step`, so non-FSAL schemes never leave stale
    /// entries for the caller to trust; FSAL schemes override it to hand an
    /// accepted step's last stage to the next step as its first.
    fn step_fsal(
        &self,
        f: Rhs<'_>,
        y: Vec3,
        h: f64,
        tol: &Tolerances,
        fsal: &mut FsalCache,
    ) -> Result<StepResult, StageFail> {
        fsal.clear();
        self.step(f, y, h, tol)
    }

    /// Classical convergence order of the scheme.
    fn order(&self) -> usize;

    /// Whether [`StepResult::error`] carries a usable embedded estimate.
    fn adaptive(&self) -> bool {
        false
    }

    /// Scheme name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_norm_scales_with_tolerances() {
        let tol = Tolerances { abs: 1e-6, rel: 0.0 };
        let e = Vec3::new(1e-6, 0.0, 0.0);
        assert!((tol.error_norm(e, Vec3::ZERO, Vec3::ZERO) - 1.0).abs() < 1e-12);
        // Relative part kicks in for large solutions.
        let tol = Tolerances { abs: 0.0, rel: 1e-6 };
        let y = Vec3::splat(100.0);
        assert!((tol.error_norm(Vec3::splat(1e-4), y, y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_norm_takes_max_component() {
        let tol = Tolerances { abs: 1.0, rel: 0.0 };
        let n = tol.error_norm(Vec3::new(0.5, 2.0, 1.0), Vec3::ZERO, Vec3::ZERO);
        assert_eq!(n, 2.0);
    }

    #[test]
    fn fsal_cache_is_keyed_by_exact_bits() {
        let mut c = FsalCache::new();
        let y = Vec3::new(0.1, 0.2, 0.3);
        assert_eq!(c.lookup(y), None);
        c.note_start(y, Vec3::X);
        assert_eq!(c.lookup(y), Some(Vec3::X));
        // One ulp off must miss: the memo may never stand in for a point it
        // was not evaluated at.
        let off = Vec3::new(f64::from_bits(y.x.to_bits() + 1), y.y, y.z);
        assert_eq!(c.lookup(off), None);
        // The end slot shadows the start slot when both match.
        c.note_end(y, Vec3::Y);
        assert_eq!(c.lookup(y), Some(Vec3::Y));
        c.clear();
        assert_eq!(c.lookup(y), None);
    }
}
