//! Numerical integration of streamlines (Eq. 1 of the paper).
//!
//! §2.1: "we use an integration scheme of Runge-Kutta type with adaptive
//! stepsize control as proposed by Dormand and Prince". [`dopri5::Dopri5`]
//! implements that scheme; [`euler::Euler`] and [`rk4::Rk4`] are fixed-step
//! references used for convergence testing and as cheap baselines.
//!
//! [`tracer`] advances a [`streamline::Streamline`] through whatever field
//! data is resident, stopping when the curve leaves the sampled region
//! (so the owning algorithm can hand it to another block/processor) or
//! terminates for good.

pub mod batch;
pub mod dopri5;
pub mod euler;
pub mod ode;
pub mod poincare;
pub mod rk4;
pub mod streamline;
pub mod tracer;
pub mod unsteady;

pub use batch::{
    advect_batch, advect_batch_rounds, BatchAdvected, BatchPartial, BatchSampler, StreamlineBatch,
};
pub use dopri5::{Dopri5, Dopri5NoReuse};
pub use ode::{FsalCache, StageFail, StepResult, Stepper, Tolerances};
pub use streamline::{SolverState, Streamline, StreamlineId, StreamlineStatus, Termination};
pub use tracer::{advect, AdvectOutcome, StepLimits};
