//! Batched (structure-of-arrays) advection: advance many streamlines
//! through one resident region at once, bit-identical per lane to
//! [`advect`](crate::tracer::advect) with [`Dopri5`](crate::Dopri5).
//!
//! # Why batching helps
//!
//! The scalar tracer pays three virtual dispatches per field evaluation
//! (`&mut dyn FnMut` sample, `&dyn Fn` region, `&dyn Stepper` step) and its
//! RK stages form one serial dependency chain. [`advect_batch`] is fully
//! monomorphic over the sample/region closures and runs the shared first
//! step attempt *stage-major*: every lane evaluates stage `s` before any
//! lane evaluates stage `s + 1`, so the per-stage axpy/interpolation
//! arithmetic is a tight loop over independent dependency chains the CPU
//! can overlap (and the compiler can vectorize).
//!
//! # Why it is exact
//!
//! Step-size control is *per lane*: each lane carries its own adaptive `h`,
//! its own [`FsalCache`], and makes its own accept/reject/shrink decisions
//! with the identical arithmetic, in the identical order, as the scalar
//! tracer (the stage loops in [`step_one`] are a transcription of
//! [`Dopri5::step_fsal`](crate::Dopri5), and the round structure transcribes
//! the `advect` loop). Lanes never share field values or step decisions —
//! batching only reorders *independent* work across lanes — so every lane's
//! trajectory, termination and sample sequence is bit-for-bit what the
//! scalar path produces. Lanes whose shared attempt is rejected or hits a
//! stage failure fall back to the scalar retry loop verbatim.
//!
//! The engine is specific to DOPRI5 (the stepper every driver and the query
//! service use); fixed-step schemes keep the scalar path.

use crate::dopri5::tableau;
use crate::ode::{FsalCache, StageFail, StepResult, Tolerances};
use crate::streamline::{Streamline, Termination};
use crate::tracer::{AdvectOutcome, StepLimits};
use streamline_field::group::{GroupSampler, GROUP_WIDTH};
use streamline_math::float::clamp;
use streamline_math::Vec3;

const W: usize = GROUP_WIDTH;

/// Chunks whose live mask has decayed to this many lanes or fewer step
/// per-lane: below it the row kernel's fixed cost loses to the scalar
/// stepper (see the batch-1 point of the bench curve).
const THIN_CHUNK_LANES: u32 = 3;

/// Field evaluation for the batch kernel: per-lane samples for the scalar
/// continuations (pre-step checks, step-control retries) and a whole-chunk
/// row evaluation the implementation may vectorize.
///
/// Any `FnMut(usize, Vec3) -> Option<Vec3>` closure is a `BatchSampler`
/// through the blanket impl (rows then evaluate slot by slot, in ascending
/// order). [`GroupSampler`] is the production implementation: one SIMD-laid
/// stencil cache per lane, bit-identical per lane to the scalar path.
pub trait BatchSampler {
    /// Sample lane `lane`'s field at `p`, `None` outside the resident data.
    fn sample_lane(&mut self, lane: usize, p: Vec3) -> Option<Vec3>;

    /// Evaluate one RK stage for the aligned chunk of lanes `base .. base +
    /// GROUP_WIDTH`: slot `l` of the `pos` / `out` rows is lane `base + l`,
    /// and only slots set in `mask` are sampled. Returns the mask of sampled
    /// slots that had field data, their components written to `out` (slots
    /// outside the returned mask may hold garbage).
    ///
    /// Contract: must behave exactly like calling [`Self::sample_lane`] for
    /// each masked slot in ascending order — same values, same per-lane
    /// state evolution — which is what the default implementation does.
    fn sample_rows(
        &mut self,
        base: usize,
        pos: &[[f64; GROUP_WIDTH]; 3],
        mask: u8,
        out: &mut [[f64; GROUP_WIDTH]; 3],
    ) -> u8 {
        let mut ok = 0u8;
        for slot in 0..GROUP_WIDTH {
            if mask & (1 << slot) != 0 {
                if let Some(v) = self
                    .sample_lane(base + slot, Vec3::new(pos[0][slot], pos[1][slot], pos[2][slot]))
                {
                    out[0][slot] = v.x;
                    out[1][slot] = v.y;
                    out[2][slot] = v.z;
                    ok |= 1 << slot;
                }
            }
        }
        ok
    }
}

impl<F: FnMut(usize, Vec3) -> Option<Vec3>> BatchSampler for F {
    fn sample_lane(&mut self, lane: usize, p: Vec3) -> Option<Vec3> {
        self(lane, p)
    }
}

impl BatchSampler for GroupSampler<'_> {
    fn sample_lane(&mut self, lane: usize, p: Vec3) -> Option<Vec3> {
        GroupSampler::sample_lane(self, lane, p)
    }

    fn sample_rows(
        &mut self,
        base: usize,
        pos: &[[f64; GROUP_WIDTH]; 3],
        mask: u8,
        out: &mut [[f64; GROUP_WIDTH]; 3],
    ) -> u8 {
        GroupSampler::sample_rows(self, base, pos, mask, out)
    }
}

/// Reusable SoA working set for [`advect_batch`]: one slot per lane, one
/// parallel array per field. Holding it outside the call site lets a driver
/// advance thousands of batches without reallocating.
#[derive(Debug, Default)]
pub struct StreamlineBatch {
    /// Step start position per lane.
    pub positions: Vec<Vec3>,
    /// Pre-step velocity per lane (the stagnation-check sample).
    pub velocities: Vec<Vec3>,
    /// Accumulated arc length per lane, gathered for the budget checks.
    pub arc_lengths: Vec<f64>,
    /// Integration time per lane.
    pub times: Vec<f64>,
    /// Accepted-step count per lane.
    pub steps: Vec<u64>,
    /// Clamped attempt step size per lane.
    pub step_sizes: Vec<f64>,
    /// Scaled error norm of the shared attempt per lane.
    pub errors: Vec<f64>,
    /// FSAL memo per lane — carried across rounds exactly like the scalar
    /// tracer carries its cache across loop iterations.
    pub fsal: Vec<FsalCache>,
    /// End position of the shared attempt per lane.
    end_positions: Vec<Vec3>,
    /// Whether the shared attempt hit a stage failure in this lane.
    failed: Vec<bool>,
    /// Active-lane bitmask per GROUP_WIDTH chunk, rebuilt each round.
    live: Vec<u8>,
}

impl StreamlineBatch {
    pub fn new() -> Self {
        StreamlineBatch::default()
    }

    /// Size every parallel array for `n` lanes and reset per-call state.
    fn reset(&mut self, n: usize) {
        self.positions.clear();
        self.positions.resize(n, Vec3::ZERO);
        self.velocities.clear();
        self.velocities.resize(n, Vec3::ZERO);
        self.arc_lengths.clear();
        self.arc_lengths.resize(n, 0.0);
        self.times.clear();
        self.times.resize(n, 0.0);
        self.steps.clear();
        self.steps.resize(n, 0);
        self.step_sizes.clear();
        self.step_sizes.resize(n, 0.0);
        self.errors.clear();
        self.errors.resize(n, 0.0);
        self.fsal.clear();
        self.fsal.resize(n, FsalCache::new());
        self.end_positions.clear();
        self.end_positions.resize(n, Vec3::ZERO);
        self.failed.clear();
        self.failed.resize(n, false);
        self.live.clear();
        self.live.resize(n.div_ceil(W), 0);
    }
}

/// What [`advect_batch`] did: the scalar [`AdvectOutcome`] per lane plus
/// total accepted steps for cost accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchAdvected {
    /// Outcome per lane, in input order.
    pub outcomes: Vec<AdvectOutcome>,
    /// Accepted integration steps summed over all lanes.
    pub steps: u64,
}

/// What [`advect_batch_rounds`] did: like [`BatchAdvected`], but a lane
/// whose fate was still undecided when the round cap hit reports `None` —
/// it is mid-flight, ready to be re-batched by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPartial {
    /// Outcome per lane, in input order; `None` = still advancing.
    pub outcomes: Vec<Option<AdvectOutcome>>,
    /// Accepted integration steps summed over all lanes.
    pub steps: u64,
}

/// One DOPRI5 step attempt from `y` with memoized FSAL stages — a
/// monomorphic transcription of [`Dopri5::step_fsal`](crate::Dopri5) used
/// for the per-lane retry continuation. Same stage order, same skipped zero
/// weights, same memo updates: bit-identical results.
fn step_one<F: FnMut(Vec3) -> Option<Vec3>>(
    f: &mut F,
    y: Vec3,
    h: f64,
    tol: &Tolerances,
    fsal: &mut FsalCache,
) -> Result<StepResult, StageFail> {
    let (a, _b5, ew, _c) = tableau();
    let mut k = [Vec3::ZERO; 7];
    k[0] = match fsal.lookup(y) {
        Some(k1) => k1,
        None => f(y).ok_or(StageFail)?,
    };
    fsal.note_start(y, k[0]);
    for s in 1..6 {
        let mut arg = y;
        for (j, kj) in k.iter().enumerate().take(s) {
            let w = a[s][j];
            if w != 0.0 {
                arg += *kj * (w * h);
            }
        }
        k[s] = f(arg).ok_or(StageFail)?;
    }
    let mut y1 = y;
    for (j, kj) in k.iter().enumerate().take(6) {
        let w = a[6][j];
        if w != 0.0 {
            y1 += *kj * (w * h);
        }
    }
    k[6] = f(y1).ok_or(StageFail)?;
    fsal.note_end(y1, k[6]);
    let mut err = Vec3::ZERO;
    for (s, ks) in k.iter().enumerate() {
        if ew[s] != 0.0 {
            err += *ks * (ew[s] * h);
        }
    }
    Ok(StepResult { y: y1, error: tol.error_norm(err, y, y1) })
}

/// Advance every lane of `lanes` with DOPRI5 while `region(position)` holds
/// and `sample(lane, p)` provides field values, exactly like running the
/// scalar [`advect`](crate::tracer::advect) on each lane in isolation.
///
/// `sample` receives the lane index so the caller can thread one stateful
/// sampler per lane (preserving the scalar path's per-streamline stencil
/// cache behaviour, counters included). Lanes that terminate or leave the
/// region are compacted out of the active set; the call returns when every
/// lane has an outcome. Terminated lanes have their status updated, like
/// the scalar tracer.
pub fn advect_batch<S, R>(
    lanes: &mut [Streamline],
    scratch: &mut StreamlineBatch,
    sample: &mut S,
    region: &R,
    limits: &StepLimits,
) -> BatchAdvected
where
    S: BatchSampler + ?Sized,
    R: Fn(Vec3) -> bool,
{
    let r = advect_batch_rounds(lanes, scratch, sample, region, limits, u64::MAX);
    BatchAdvected {
        outcomes: r.outcomes.into_iter().map(|o| o.expect("every lane resolves")).collect(),
        steps: r.steps,
    }
}

/// [`advect_batch`] with a round budget: stop after `max_rounds` rounds
/// (one accepted step per surviving lane each) and report `None` for lanes
/// still mid-flight. Rounds end on accepted-step boundaries, and the FSAL
/// memo and stencil caches are value-transparent, so resuming a `None` lane
/// in a later call — batched with different neighbours or alone — continues
/// its trajectory bit-identically; only the caches restart cold. Callers
/// use this to re-pack decaying batches: survivors of a capped call merge
/// with newly arrived work instead of draining a raggedly-emptying batch.
#[allow(clippy::needless_range_loop)] // index-coupled lane loops are the vectorization shape
pub fn advect_batch_rounds<S, R>(
    lanes: &mut [Streamline],
    scratch: &mut StreamlineBatch,
    sample: &mut S,
    region: &R,
    limits: &StepLimits,
    max_rounds: u64,
) -> BatchPartial
where
    S: BatchSampler + ?Sized,
    R: Fn(Vec3) -> bool,
{
    let n = lanes.len();
    scratch.reset(n);
    let (a, _b5, ew, _c) = tableau();
    let mut outcomes: Vec<Option<AdvectOutcome>> = vec![None; n];
    let mut total_steps = 0u64;
    let mut active: Vec<usize> = (0..n).collect();
    // Phase B row buffers, hoisted so the per-chunk loop never re-zeroes
    // them (stale slots are always overwritten before use or masked out).
    let mut y = [[0.0f64; W]; 3];
    let mut h = [0.0f64; W];
    let mut k = [[[0.0f64; W]; 3]; 7];
    let mut out = [[0.0f64; W]; 3];
    let mut arg: [[f64; W]; 3];
    let mut wh = [0.0f64; W];
    let mut err: [[f64; W]; 3];

    let mut rounds = 0u64;
    while !active.is_empty() && rounds < max_rounds {
        rounds += 1;
        // Phase A — per-lane pre-step checks, in the scalar tracer's order:
        // region, step/arc/time budgets, velocity lookup, stagnation. Lanes
        // with a terminal outcome are compacted out before the shared step.
        active.retain(|&lane| {
            let sl = &mut lanes[lane];
            let pos = sl.state.position;
            if !region(pos) {
                outcomes[lane] = Some(AdvectOutcome::LeftRegion);
                return false;
            }
            scratch.steps[lane] = sl.state.steps;
            scratch.arc_lengths[lane] = sl.state.arc_length;
            scratch.times[lane] = sl.state.time;
            let why = if scratch.steps[lane] >= limits.max_steps {
                Some(Termination::MaxSteps)
            } else if scratch.arc_lengths[lane] >= limits.max_arc_length {
                Some(Termination::MaxArcLength)
            } else if scratch.times[lane] >= limits.max_time {
                Some(Termination::MaxTime)
            } else {
                None
            };
            if let Some(why) = why {
                sl.terminate(why);
                outcomes[lane] = Some(AdvectOutcome::Terminated(why));
                return false;
            }
            let v = match scratch.fsal[lane].lookup(pos) {
                Some(v) => v,
                None => match sample.sample_lane(lane, pos) {
                    Some(v) => v,
                    None => {
                        sl.terminate(Termination::ExitedDomain);
                        outcomes[lane] = Some(AdvectOutcome::Terminated(Termination::ExitedDomain));
                        return false;
                    }
                },
            };
            if v.norm() < limits.min_speed {
                sl.terminate(Termination::ZeroVelocity);
                outcomes[lane] = Some(AdvectOutcome::Terminated(Termination::ZeroVelocity));
                return false;
            }
            scratch.positions[lane] = pos;
            scratch.velocities[lane] = v;
            scratch.step_sizes[lane] = clamp(sl.state.h, limits.h_min, limits.h_max);
            scratch.failed[lane] = false;
            true
        });

        // Phase B — the shared first step attempt, one GROUP_WIDTH chunk of
        // lanes at a time with all step state held in structure-of-arrays
        // rows: the stage arguments, the combination axpys, the fifth-order
        // result and the embedded error are all elementwise row loops the
        // compiler vectorizes across lanes, and each stage is one
        // `sample_rows` call. Per lane this computes the `step_one`
        // arithmetic operation for operation (Vec3 `+=`/`*` are plain
        // componentwise f64 ops, so a row loop over one component is the
        // same op sequence), so results are bit-identical. A lane whose
        // stage evaluation fails drops out of the chunk's live mask (like
        // the `?` early return in the scalar stepper) and retries in
        // Phase C.
        for chunk in scratch.live.iter_mut() {
            *chunk = 0;
        }
        for &lane in &active {
            scratch.live[lane / W] |= 1 << (lane % W);
        }
        for (ci, &live_in) in scratch.live.iter().enumerate() {
            if live_in == 0 {
                continue;
            }
            let base = ci * W;
            // A chunk that has decayed to a lane or two no longer amortizes
            // the fixed per-row cost, so its survivors take the per-lane
            // stepper instead — the same `step_one` the retry path uses, so
            // the bits (and the per-lane sampler cache state) are identical
            // either way; only the wall clock moves.
            if live_in.count_ones() <= THIN_CHUNK_LANES {
                for slot in 0..W {
                    if live_in & (1 << slot) == 0 {
                        continue;
                    }
                    let lane = base + slot;
                    let mut f = |p: Vec3| sample.sample_lane(lane, p);
                    match step_one(
                        &mut f,
                        scratch.positions[lane],
                        scratch.step_sizes[lane],
                        &limits.tol,
                        &mut scratch.fsal[lane],
                    ) {
                        Ok(res) => {
                            scratch.end_positions[lane] = res.y;
                            scratch.errors[lane] = res.error;
                        }
                        Err(StageFail) => scratch.failed[lane] = true,
                    }
                }
                continue;
            }
            // Gather this chunk's step state into rows.
            for slot in 0..W {
                if live_in & (1 << slot) != 0 {
                    let p = scratch.positions[base + slot];
                    y[0][slot] = p.x;
                    y[1][slot] = p.y;
                    y[2][slot] = p.z;
                    h[slot] = scratch.step_sizes[base + slot];
                }
            }
            let mut live = live_in;
            // Stage 1 — FSAL memo per lane, sampling only the misses.
            let mut need = 0u8;
            for slot in 0..W {
                if live & (1 << slot) == 0 {
                    continue;
                }
                let lane = base + slot;
                let yv = scratch.positions[lane];
                match scratch.fsal[lane].lookup(yv) {
                    Some(k1) => {
                        k[0][0][slot] = k1.x;
                        k[0][1][slot] = k1.y;
                        k[0][2][slot] = k1.z;
                        scratch.fsal[lane].note_start(yv, k1);
                    }
                    None => need |= 1 << slot,
                }
            }
            if need != 0 {
                let ok = sample.sample_rows(base, &y, need, &mut out);
                for slot in 0..W {
                    if need & (1 << slot) == 0 {
                        continue;
                    }
                    let lane = base + slot;
                    if ok & (1 << slot) != 0 {
                        let k1 = Vec3::new(out[0][slot], out[1][slot], out[2][slot]);
                        k[0][0][slot] = k1.x;
                        k[0][1][slot] = k1.y;
                        k[0][2][slot] = k1.z;
                        scratch.fsal[lane].note_start(scratch.positions[lane], k1);
                    } else {
                        scratch.failed[lane] = true;
                        live &= !(1 << slot);
                    }
                }
            }
            // Stages 2..6 — row axpy (`arg = y + Σ_j k_j · (a[s][j] · h)`,
            // ascending j, zero weights skipped: step_one's loop), then one
            // masked row evaluation. Failed lanes' k rows are never read.
            for s in 1..6 {
                if live == 0 {
                    break;
                }
                arg = y;
                for (j, kj) in k.iter().enumerate().take(s) {
                    let w = a[s][j];
                    if w != 0.0 {
                        for l in 0..W {
                            wh[l] = w * h[l];
                        }
                        for (argc, kc) in arg.iter_mut().zip(kj) {
                            for l in 0..W {
                                argc[l] += kc[l] * wh[l];
                            }
                        }
                    }
                }
                let ok = sample.sample_rows(base, &arg, live, &mut out);
                for slot in 0..W {
                    if live & !ok & (1 << slot) != 0 {
                        scratch.failed[base + slot] = true;
                    }
                }
                live &= ok;
                k[s] = out;
            }
            if live == 0 {
                continue;
            }
            // Fifth-order combination (reusing `arg` as the y1 rows) and
            // the last stage's evaluation at y1.
            arg = y;
            for (j, kj) in k.iter().enumerate().take(6) {
                let w = a[6][j];
                if w != 0.0 {
                    for l in 0..W {
                        wh[l] = w * h[l];
                    }
                    for (argc, kc) in arg.iter_mut().zip(kj) {
                        for l in 0..W {
                            argc[l] += kc[l] * wh[l];
                        }
                    }
                }
            }
            let ok = sample.sample_rows(base, &arg, live, &mut out);
            for slot in 0..W {
                if live & !ok & (1 << slot) != 0 {
                    scratch.failed[base + slot] = true;
                }
            }
            live &= ok;
            if live == 0 {
                continue;
            }
            k[6] = out;
            // Embedded error rows, then the per-lane scatter: FSAL end memo,
            // end position and the scalar `error_norm` (identical call).
            err = [[0.0f64; W]; 3];
            for (s, ks) in k.iter().enumerate() {
                if ew[s] != 0.0 {
                    let w = ew[s];
                    for l in 0..W {
                        wh[l] = w * h[l];
                    }
                    for (errc, kc) in err.iter_mut().zip(ks) {
                        for l in 0..W {
                            errc[l] += kc[l] * wh[l];
                        }
                    }
                }
            }
            for slot in 0..W {
                if live & (1 << slot) == 0 {
                    continue;
                }
                let lane = base + slot;
                let yv = scratch.positions[lane];
                let y1 = Vec3::new(arg[0][slot], arg[1][slot], arg[2][slot]);
                let k6 = Vec3::new(k[6][0][slot], k[6][1][slot], k[6][2][slot]);
                let ev = Vec3::new(err[0][slot], err[1][slot], err[2][slot]);
                scratch.fsal[lane].note_end(y1, k6);
                scratch.end_positions[lane] = y1;
                scratch.errors[lane] = limits.tol.error_norm(ev, yv, y1);
            }
        }

        // Phase C/D — per-lane step control: the scalar tracer's attempt
        // loop verbatim, seeded with the shared attempt's result, then the
        // accepted-step scatter (push_step + next-h growth) or the Euler
        // edge-step fallback.
        active.retain(|&lane| {
            let pos = scratch.positions[lane];
            let v = scratch.velocities[lane];
            let mut h = scratch.step_sizes[lane];
            let mut attempts = 0;
            let mut pending: Option<Result<StepResult, StageFail>> =
                Some(if scratch.failed[lane] {
                    Err(StageFail)
                } else {
                    Ok(StepResult { y: scratch.end_positions[lane], error: scratch.errors[lane] })
                });
            let accepted = loop {
                let attempt = match pending.take() {
                    Some(r) => r,
                    None => step_one(
                        &mut |p| sample.sample_lane(lane, p),
                        pos,
                        h,
                        &limits.tol,
                        &mut scratch.fsal[lane],
                    ),
                };
                match attempt {
                    Err(StageFail) => {
                        attempts += 1;
                        if attempts > 8 || h <= limits.h_min * 1.0001 {
                            break None;
                        }
                        h *= 0.5;
                    }
                    Ok(res) => {
                        if res.error > 1.0 {
                            attempts += 1;
                            let fac = clamp(0.9 * res.error.powf(-0.2), 0.2, 0.9);
                            h *= fac;
                            if h < limits.h_min {
                                lanes[lane].terminate(Termination::StepUnderflow);
                                outcomes[lane] =
                                    Some(AdvectOutcome::Terminated(Termination::StepUnderflow));
                                return false;
                            }
                            continue;
                        }
                        break Some(res);
                    }
                }
            };
            let sl = &mut lanes[lane];
            match accepted {
                Some(res) => {
                    sl.push_step(res.y, h);
                    total_steps += 1;
                    let err = res.error.max(1e-10);
                    sl.state.h = clamp(
                        h * clamp(0.9 * err.powf(-0.2), 0.2, 5.0),
                        limits.h_min,
                        limits.h_max,
                    );
                }
                None => {
                    // Euler edge-step fallback, with the possibly-halved h
                    // and without touching the stored step size — exactly
                    // the scalar tracer's behaviour.
                    sl.push_step(pos + v * h, h);
                    total_steps += 1;
                }
            }
            true
        });
    }

    BatchPartial { outcomes, steps: total_steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streamline::StreamlineId;
    use crate::tracer::advect;
    use crate::Dopri5;
    use streamline_math::Aabb;

    fn fresh(i: u32, seed: Vec3) -> Streamline {
        Streamline::new(StreamlineId(i), seed, 1e-2)
    }

    /// Run every lane through the scalar tracer and through one batch call,
    /// asserting bit-identical state, status, geometry and outcome.
    fn assert_batch_matches_scalar(
        seeds: &[Vec3],
        field: impl Fn(Vec3) -> Option<Vec3> + Copy,
        region: impl Fn(Vec3) -> bool + Copy,
        limits: &StepLimits,
    ) {
        let mut scalar: Vec<Streamline> =
            seeds.iter().enumerate().map(|(i, &s)| fresh(i as u32, s)).collect();
        let scalar_outcomes: Vec<AdvectOutcome> = scalar
            .iter_mut()
            .map(|sl| {
                let mut sample = |p: Vec3| field(p);
                advect(sl, &mut sample, &region, limits, &Dopri5).outcome
            })
            .collect();

        let mut batched: Vec<Streamline> =
            seeds.iter().enumerate().map(|(i, &s)| fresh(i as u32, s)).collect();
        let mut scratch = StreamlineBatch::new();
        let r = advect_batch(
            &mut batched,
            &mut scratch,
            &mut |_lane: usize, p: Vec3| field(p),
            &region,
            limits,
        );

        assert_eq!(r.outcomes, scalar_outcomes);
        let scalar_steps: u64 = scalar.iter().map(|sl| sl.state.steps).sum();
        let batch_steps: u64 = batched.iter().map(|sl| sl.state.steps).sum();
        assert_eq!(scalar_steps, batch_steps);
        for (a, b) in scalar.iter().zip(&batched) {
            assert_eq!(a.status, b.status, "lane {:?}", a.id);
            assert_eq!(a.state.steps, b.state.steps, "lane {:?}", a.id);
            assert_eq!(a.state.position.x.to_bits(), b.state.position.x.to_bits());
            assert_eq!(a.state.position.y.to_bits(), b.state.position.y.to_bits());
            assert_eq!(a.state.position.z.to_bits(), b.state.position.z.to_bits());
            assert_eq!(a.state.h.to_bits(), b.state.h.to_bits(), "lane {:?}", a.id);
            assert_eq!(a.state.time.to_bits(), b.state.time.to_bits());
            assert_eq!(a.state.arc_length.to_bits(), b.state.arc_length.to_bits());
            assert_eq!(a.geometry.len(), b.geometry.len());
            for (p, q) in a.geometry.iter().zip(&b.geometry) {
                assert_eq!(p.x.to_bits(), q.x.to_bits());
                assert_eq!(p.y.to_bits(), q.y.to_bits());
                assert_eq!(p.z.to_bits(), q.z.to_bits());
            }
        }
    }

    #[test]
    fn uniform_field_batch_matches_scalar() {
        let region_box = Aabb::unit();
        let seeds: Vec<Vec3> = (0..7).map(|i| Vec3::new(0.1, 0.1 + 0.1 * i as f64, 0.5)).collect();
        assert_batch_matches_scalar(
            &seeds,
            |_p| Some(Vec3::X),
            move |p| region_box.contains(p),
            &StepLimits::default(),
        );
    }

    #[test]
    fn rotation_with_mixed_budgets_matches_scalar() {
        // Lanes at different radii terminate at different times (steps vs
        // region exit), exercising mid-flight compaction.
        let seeds: Vec<Vec3> = (1..9).map(|i| Vec3::new(0.25 * i as f64, 0.0, 0.0)).collect();
        let limits = StepLimits { max_steps: 120, ..StepLimits::default() };
        assert_batch_matches_scalar(
            &seeds,
            |p| Some(Vec3::new(-p.y, p.x, 0.0)),
            |p| p.norm() < 1.3,
            &limits,
        );
    }

    #[test]
    fn stagnation_and_domain_exit_mix_matches_scalar() {
        // A sink field: lanes near the sink stagnate (ZeroVelocity), lanes
        // started outside the lattice exit immediately.
        let c = Vec3::splat(0.5);
        let seeds = vec![Vec3::ZERO, Vec3::splat(0.45), Vec3::splat(2.0), Vec3::new(0.9, 0.1, 0.2)];
        let limits = StepLimits { min_speed: 1e-6, max_steps: 100_000, ..StepLimits::default() };
        assert_batch_matches_scalar(
            &seeds,
            move |p| {
                if p.x <= 1.0 {
                    Some((c - p) * 2.0)
                } else {
                    None
                }
            },
            |_p| true,
            &limits,
        );
    }

    #[test]
    fn lattice_edge_euler_fallback_matches_scalar() {
        // Data only for x < 1, region x < 1: stage failures at the face
        // force the halving retries and the final Euler edge-step.
        let seeds: Vec<Vec3> =
            (0..5).map(|i| Vec3::new(0.95 + 0.01 * i as f64, 0.3, 0.3)).collect();
        assert_batch_matches_scalar(
            &seeds,
            |p| if p.x < 1.0 { Some(Vec3::X) } else { None },
            |p| p.x < 1.0,
            &StepLimits::default(),
        );
    }

    #[test]
    fn single_lane_batch_is_the_scalar_path() {
        assert_batch_matches_scalar(
            &[Vec3::new(0.2, 0.7, 0.4)],
            |p| Some(Vec3::new(1.0, (p.x * 3.0).sin() * 0.2, 0.1)),
            |p| p.x < 4.0,
            &StepLimits::default(),
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut scratch = StreamlineBatch::new();
        let r = advect_batch(
            &mut [],
            &mut scratch,
            &mut |_l: usize, _p: Vec3| Some(Vec3::X),
            &|_p| true,
            &StepLimits::default(),
        );
        assert!(r.outcomes.is_empty());
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn step_one_matches_dopri5_step_fsal() {
        use crate::ode::Stepper;
        let field = |p: Vec3| Some(Vec3::new(p.y * p.z + 1.0, (-p.x * 0.7).cos(), p.x - p.z));
        let tol = Tolerances::default();
        let y = Vec3::new(0.2, -0.1, 0.4);
        let mut f1 = field;
        let mut c1 = FsalCache::new();
        let mut c2 = FsalCache::new();
        let mut y_a = y;
        let mut y_b = y;
        for _ in 0..25 {
            let a = Dopri5.step_fsal(&mut f1, y_a, 0.05, &tol, &mut c1).unwrap();
            let b = step_one(&mut { field }, y_b, 0.05, &tol, &mut c2).unwrap();
            assert_eq!(a.y.x.to_bits(), b.y.x.to_bits());
            assert_eq!(a.y.y.to_bits(), b.y.y.to_bits());
            assert_eq!(a.y.z.to_bits(), b.y.z.to_bits());
            assert_eq!(a.error.to_bits(), b.error.to_bits());
            y_a = a.y;
            y_b = b.y;
        }
    }

    #[test]
    fn batch_sample_count_matches_scalar_per_lane() {
        // The per-lane sequence of sample calls must be exactly the scalar
        // one (this is what makes per-lane stencil-cache counters match).
        let field = |p: Vec3| {
            if p.x < 2.0 {
                Some(Vec3::new(1.0, (p.x * 2.0).sin() * 0.3, 0.0))
            } else {
                None
            }
        };
        let region = |p: Vec3| p.x < 2.0;
        let limits = StepLimits::default();
        let seeds: Vec<Vec3> = (0..4).map(|i| Vec3::new(0.2 * i as f64, 0.5, 0.5)).collect();

        let mut scalar_calls: Vec<Vec<Vec3>> = vec![Vec::new(); seeds.len()];
        for (i, &s) in seeds.iter().enumerate() {
            let mut sl = fresh(i as u32, s);
            let calls = &mut scalar_calls[i];
            let mut sample = |p: Vec3| {
                calls.push(p);
                field(p)
            };
            advect(&mut sl, &mut sample, &region, &limits, &Dopri5);
        }

        let mut batch_calls: Vec<Vec<Vec3>> = vec![Vec::new(); seeds.len()];
        let mut lanes: Vec<Streamline> =
            seeds.iter().enumerate().map(|(i, &s)| fresh(i as u32, s)).collect();
        let mut scratch = StreamlineBatch::new();
        advect_batch(
            &mut lanes,
            &mut scratch,
            &mut |lane: usize, p: Vec3| {
                batch_calls[lane].push(p);
                field(p)
            },
            &region,
            &limits,
        );

        for (lane, (a, b)) in scalar_calls.iter().zip(&batch_calls).enumerate() {
            assert_eq!(a.len(), b.len(), "lane {lane} sample-call count");
            for (p, q) in a.iter().zip(b) {
                assert_eq!(p.x.to_bits(), q.x.to_bits(), "lane {lane}");
                assert_eq!(p.y.to_bits(), q.y.to_bits(), "lane {lane}");
                assert_eq!(p.z.to_bits(), q.z.to_bits(), "lane {lane}");
            }
        }
    }
}
