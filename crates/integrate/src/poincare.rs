//! Poincaré sections: collect the punctures of a field line through a
//! plane — the §8 use case "e.g. Poincaré puncture plots", where only
//! solver state (not geometry) matters.

use crate::dopri5::Dopri5;
use crate::ode::{FsalCache, Stepper, Tolerances};
use streamline_math::Vec3;

/// An oriented section plane through `point` with unit `normal`; punctures
/// are counted when the trajectory crosses from the negative to the
/// positive side.
#[derive(Debug, Clone, Copy)]
pub struct SectionPlane {
    pub point: Vec3,
    pub normal: Vec3,
}

impl SectionPlane {
    pub fn new(point: Vec3, normal: Vec3) -> Self {
        SectionPlane { point, normal: normal.normalized().expect("plane normal must be nonzero") }
    }

    /// Signed distance of `p` from the plane.
    #[inline]
    pub fn side(&self, p: Vec3) -> f64 {
        (p - self.point).dot(self.normal)
    }
}

/// Collect up to `max_punctures` upward crossings of `plane` along the
/// trajectory seeded at `seed`, integrating `f` with fixed step `h`.
/// `accept` filters punctures (e.g. keep only the x > 0 half-plane for a
/// toroidal section). Returns the interpolated crossing points.
pub fn punctures(
    f: &dyn Fn(Vec3) -> Option<Vec3>,
    seed: Vec3,
    plane: SectionPlane,
    accept: &dyn Fn(Vec3) -> bool,
    max_punctures: usize,
    max_steps: u64,
    h: f64,
) -> Vec<Vec3> {
    let tol = Tolerances::default();
    let mut out = Vec::new();
    let mut y = seed;
    let mut side = plane.side(y);
    let mut g = |p: Vec3| f(p);
    // Fixed-step chain: every step starts exactly where the last one ended,
    // so FSAL reuse applies on every iteration after the first.
    let mut fsal = FsalCache::new();
    for _ in 0..max_steps {
        let Ok(step) = Dopri5.step_fsal(&mut g, y, h, &tol, &mut fsal) else { break };
        let new_side = plane.side(step.y);
        if side < 0.0 && new_side >= 0.0 {
            // Linear interpolation of the crossing.
            let t = -side / (new_side - side);
            let p = y.lerp(step.y, t);
            if accept(p) {
                out.push(p);
                if out.len() >= max_punctures {
                    break;
                }
            }
        }
        side = new_side;
        y = step.y;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_punctures_conserve_radius() {
        // Rigid rotation about z: the section y = 0 (x > 0) is hit once per
        // revolution at the orbit radius.
        let omega = 1.0;
        let f = |p: Vec3| Some(Vec3::new(-omega * p.y, omega * p.x, 0.0));
        let plane = SectionPlane::new(Vec3::ZERO, Vec3::Y);
        let accept = |p: Vec3| p.x > 0.0;
        let pts = punctures(&f, Vec3::new(2.0, 0.0, 0.3), plane, &accept, 10, 1_000_000, 0.01);
        assert_eq!(pts.len(), 10);
        for p in &pts {
            assert!((p.x - 2.0).abs() < 1e-3, "radius drifted to {}", p.x);
            assert!((p.z - 0.3).abs() < 1e-9);
            assert!(p.y.abs() < 1e-9, "puncture off the plane: {}", p.y);
        }
    }

    #[test]
    fn downward_crossings_are_not_counted() {
        // Straight line crossing the plane once, downward.
        let f = |_p: Vec3| Some(Vec3::new(0.0, -1.0, 0.0));
        let plane = SectionPlane::new(Vec3::ZERO, Vec3::Y);
        let pts = punctures(&f, Vec3::new(1.0, 0.5, 0.0), plane, &|_| true, 10, 10_000, 0.01);
        assert!(pts.is_empty());
    }

    #[test]
    fn accept_filter_applies() {
        let omega = 1.0;
        let f = |p: Vec3| Some(Vec3::new(-omega * p.y, omega * p.x, 0.0));
        let plane = SectionPlane::new(Vec3::ZERO, Vec3::Y);
        // Reject everything: trajectory keeps circling but nothing collects.
        let pts = punctures(&f, Vec3::new(1.0, 0.0, 0.0), plane, &|_| false, 5, 5_000, 0.01);
        assert!(pts.is_empty());
    }

    #[test]
    fn undefined_field_stops_collection() {
        let f = |p: Vec3| if p.x < 10.0 { Some(Vec3::X) } else { None };
        let plane = SectionPlane::new(Vec3::new(100.0, 0.0, 0.0), Vec3::X);
        let pts = punctures(&f, Vec3::ZERO, plane, &|_| true, 5, 1_000_000, 0.1);
        assert!(pts.is_empty());
    }
}
