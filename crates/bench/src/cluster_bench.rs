//! The `bench-cluster` harness: max sustainable QPS of the sharded serve
//! cluster under trace-shaped open-loop traffic (`BENCH_10.json`).
//!
//! For each replica count the harness replays the same Zipf/diurnal/burst
//! trace ([`crate::traceload`]) at a geometric QPS ladder — fresh cluster
//! per rung, caches warm-started from the ring shards — and records the
//! highest rate the cluster sustains with zero typed rejections, zero lost
//! requests, and p99 under the budget. Block loads go through a
//! [`SlowStore`] with a fixed per-load wall delay, so serving is I/O-bound
//! the way the paper's datasets are disk-bound: aggregate cache residency
//! (each replica caches only its shard) is what capacity scales with,
//! which keeps the sweep meaningful on a single core.
//!
//! Two gates ride along and land in the report:
//! - **bit-identity** — the cluster's answers for the whole seed pool are
//!   digest-compared against a plain [`Service`] run;
//! - **kill conservation** — one cell kills a replica mid-trace and checks
//!   every ticket resolved typed with `answered + gone == submitted`.

use crate::experiments::{dataset_for, limits_for, SweepScale, Workload};
use crate::traceload::TraceWorkloadConfig;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamline_cluster::{ClusterConfig, ClusterService};
use streamline_field::block::Block;
use streamline_field::dataset::Seeding;
use streamline_integrate::{StepLimits, Streamline};
use streamline_iosim::{BlockStore, MemoryStore, StoreError};
use streamline_math::Vec3;
use streamline_serve::{Request, Service, ServiceConfig, SubmitError};

pub const CLUSTER_BENCH_SCHEMA: &str = "bench-cluster-v1";

/// A [`BlockStore`] that charges a fixed wall-clock delay per load,
/// making block I/O the bottleneck the cluster's caches exist to hide.
pub struct SlowStore {
    inner: Arc<dyn BlockStore>,
    delay: Duration,
}

impl SlowStore {
    pub fn new(inner: Arc<dyn BlockStore>, delay: Duration) -> SlowStore {
        SlowStore { inner, delay }
    }
}

impl BlockStore for SlowStore {
    fn try_load(&self, id: streamline_field::block::BlockId) -> Result<Arc<Block>, StoreError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.inner.try_load(id)
    }

    fn num_blocks(&self) -> usize {
        self.inner.num_blocks()
    }
}

/// Shape of one `bench-cluster` run.
#[derive(Debug, Clone)]
pub struct ClusterBenchConfig {
    pub workload: Workload,
    pub scale: SweepScale,
    /// Replica counts to sweep.
    pub replicas: Vec<usize>,
    /// Hot-block replication factor applied to every cell.
    pub replication: usize,
    /// The trace shape; its `base_qps` seeds the bottom of the ladder.
    pub trace: TraceWorkloadConfig,
    /// p99 latency budget defining "sustainable".
    pub p99_budget_ms: f64,
    /// Wall delay charged per block load.
    pub load_delay: Duration,
    /// Per-replica cache capacity in blocks. Keep this well under the
    /// block count so aggregate residency grows with the replica count.
    pub cache_blocks: usize,
    /// Per-replica admission queue capacity.
    pub queue_capacity: usize,
    /// Ladder rungs: rung i runs at `base_qps × 2^i`.
    pub max_rungs: usize,
    /// Kill cell: `(replica, trace_time_s)`.
    pub replica_kill: (usize, f64),
    /// Smoke mode: 2-replica single-rung pass with the Prometheus dump
    /// embedded in the report, for CI grepping.
    pub smoke: bool,
}

impl Default for ClusterBenchConfig {
    fn default() -> Self {
        ClusterBenchConfig {
            workload: Workload::Thermal,
            scale: SweepScale::Quick,
            replicas: vec![1, 2, 4, 8],
            replication: 1,
            trace: TraceWorkloadConfig { duration_s: 1.5, base_qps: 20.0, ..Default::default() },
            p99_budget_ms: 25.0,
            load_delay: Duration::from_millis(2),
            cache_blocks: 16,
            queue_capacity: 512,
            max_rungs: 7,
            replica_kill: (1, 0.4),
            smoke: false,
        }
    }
}

impl ClusterBenchConfig {
    pub fn smoke() -> Self {
        ClusterBenchConfig {
            replicas: vec![2],
            trace: TraceWorkloadConfig { duration_s: 0.5, base_qps: 20.0, ..Default::default() },
            load_delay: Duration::from_millis(1),
            max_rungs: 1,
            smoke: true,
            ..ClusterBenchConfig::default()
        }
    }
}

/// One rung of the QPS ladder.
#[derive(Debug, Clone, Serialize)]
pub struct Rung {
    pub offered_qps: f64,
    pub arrivals: usize,
    pub submitted: u64,
    pub rejected: u64,
    pub answered: u64,
    pub gone: u64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub cache_hit_rate: f64,
    pub handoffs: u64,
    pub handoff_bytes: u64,
    pub hot_local_hits: u64,
    pub sustainable: bool,
}

/// One replica-count cell: the ladder and its highest sustainable rate.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterCell {
    pub replicas: usize,
    pub replication: usize,
    pub max_sustainable_qps: f64,
    pub rungs: Vec<Rung>,
}

/// The replica-kill cell: typed resolution and exact conservation.
#[derive(Debug, Clone, Serialize)]
pub struct KillCell {
    pub replicas: usize,
    pub killed_replica: usize,
    pub kill_at_s: f64,
    pub submitted: u64,
    pub answered: u64,
    pub gone: u64,
    pub replica_deaths: u64,
    pub redispatches: u64,
    pub conservation_holds: bool,
}

#[derive(Debug, Clone, Serialize)]
pub struct ClusterBenchReport {
    pub schema: String,
    pub smoke: bool,
    pub workload: String,
    pub replication: usize,
    pub p99_budget_ms: f64,
    pub load_delay_us: u64,
    pub cache_blocks: usize,
    pub trace: TraceWorkloadConfig,
    pub cells: Vec<ClusterCell>,
    pub kill: KillCell,
    /// Cluster answers for the full seed pool digest-match a plain
    /// single-service run.
    pub bit_identical: bool,
    /// Max sustainable QPS grows with the replica count (last swept count
    /// vs the first).
    pub scaling_ok: bool,
    /// Prometheus text dump of the final smoke cluster (smoke mode only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub prometheus: Option<String>,
}

impl ClusterBenchReport {
    /// The exit-code gate `bench-cluster` enforces.
    pub fn healthy(&self) -> bool {
        self.bit_identical && self.kill.conservation_holds && (self.smoke || self.scaling_ok)
    }
}

fn cluster_config(cfg: &ClusterBenchConfig, replicas: usize) -> ClusterConfig {
    ClusterConfig {
        replicas,
        replication: cfg.replication,
        cache_blocks: cfg.cache_blocks,
        queue_capacity: cfg.queue_capacity,
        ..ClusterConfig::default()
    }
}

/// One open-loop trace replay against a fresh cluster — the unit both the
/// QPS ladder and `serve-bench --replicas N` are built from.
#[derive(Debug, Clone)]
pub struct ClusterTraceConfig {
    pub workload: Workload,
    pub scale: SweepScale,
    pub cluster: ClusterConfig,
    pub trace: TraceWorkloadConfig,
    /// Fail-stop injection: `(replica, trace_time_s)`.
    pub replica_kill: Option<(usize, f64)>,
    /// Wall delay charged per block load (zero disables [`SlowStore`]).
    pub load_delay: Duration,
    /// Step-count cap per streamline (keeps open-loop episodes bounded).
    pub max_steps: u64,
    /// Capture the Prometheus text export in the report.
    pub emit_prometheus: bool,
}

impl Default for ClusterTraceConfig {
    fn default() -> Self {
        ClusterTraceConfig {
            workload: Workload::Thermal,
            scale: SweepScale::Quick,
            cluster: ClusterConfig::default(),
            trace: TraceWorkloadConfig::default(),
            replica_kill: None,
            load_delay: Duration::ZERO,
            max_steps: 200,
            emit_prometheus: false,
        }
    }
}

/// What one trace replay resolved to. `answered + gone == submitted` by
/// construction (every ticket is drained); [`Self::conservation_holds`]
/// additionally checks the cluster's own ledger.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterTraceReport {
    pub arrivals: usize,
    pub submitted: u64,
    pub rejected: u64,
    pub answered: u64,
    pub gone: u64,
    pub wall_secs: f64,
    pub metrics: streamline_cluster::ClusterMetrics,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub trace: Option<streamline_obs::TraceFile>,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub prometheus: Option<String>,
}

impl ClusterTraceReport {
    pub fn conservation_holds(&self) -> bool {
        self.metrics.conservation_holds() && self.answered + self.gone == self.submitted
    }
}

/// Replay the trace open-loop against a fresh warm-started cluster:
/// dispatch on the trace clock whether or not the cluster keeps up, then
/// drain every ticket to a typed resolution.
pub fn run_cluster_trace(cfg: &ClusterTraceConfig) -> ClusterTraceReport {
    let dataset = dataset_for(cfg.workload, cfg.scale);
    let limits =
        StepLimits { max_steps: cfg.max_steps, ..limits_for(cfg.workload, Seeding::Sparse) };
    let pool = dataset.seeds_with_count(Seeding::Dense, cfg.trace.pool).points;
    let mem: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let store: Arc<dyn BlockStore> = Arc::new(SlowStore::new(mem, cfg.load_delay));
    let cluster = ClusterService::start(dataset.decomp, store, cfg.cluster.clone());
    cluster.bootstrap();
    let arrivals = cfg.trace.generate();
    let n_arrivals = arrivals.len();
    let mut tickets = Vec::with_capacity(arrivals.len());
    let mut submitted = 0u64;
    let mut rejected = 0u64;
    let mut kill = cfg.replica_kill;
    let start = Instant::now();
    for a in &arrivals {
        if let Some((r, at)) = kill {
            if a.t >= at {
                cluster.kill_replica(r);
                kill = None;
            }
        }
        if let Some(wait) = Duration::from_secs_f64(a.t).checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let seeds: Vec<Vec3> = a.seed_indices.iter().map(|&i| pool[i % pool.len()]).collect();
        match cluster.submit(Request::new(seeds).with_limits(limits)) {
            Ok(t) => {
                submitted += 1;
                tickets.push(t);
            }
            Err(SubmitError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
    }
    if let Some((r, _)) = kill {
        cluster.kill_replica(r);
    }
    let mut answered = 0u64;
    let mut gone = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(_) => answered += 1,
            Err(_) => gone += 1,
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let trace = cluster.timeline();
    let prometheus = cfg.emit_prometheus.then(|| cluster.dump_metrics());
    let metrics = cluster.shutdown();
    ClusterTraceReport {
        arrivals: n_arrivals,
        submitted,
        rejected,
        answered,
        gone,
        wall_secs,
        metrics,
        trace,
        prometheus,
    }
}

fn run_episode(
    cfg: &ClusterBenchConfig,
    replicas: usize,
    trace: &TraceWorkloadConfig,
    kill: Option<(usize, f64)>,
) -> ClusterTraceReport {
    run_cluster_trace(&ClusterTraceConfig {
        workload: cfg.workload,
        scale: cfg.scale,
        cluster: cluster_config(cfg, replicas),
        trace: trace.clone(),
        replica_kill: kill,
        load_delay: cfg.load_delay,
        ..ClusterTraceConfig::default()
    })
}

fn digest(streamlines: &[Streamline]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for sl in streamlines {
        mix(sl.id.0 as u64);
        mix(sl.geometry.len() as u64);
        for p in sl.state.position.to_array() {
            mix(p.to_bits());
        }
        mix(sl.state.h.to_bits());
        for v in &sl.geometry {
            for c in v.to_array() {
                mix(c.to_bits());
            }
        }
    }
    h
}

/// Run the sweep and assemble `BENCH_10.json`'s contents.
pub fn run_cluster_bench(cfg: &ClusterBenchConfig) -> ClusterBenchReport {
    let dataset = dataset_for(cfg.workload, cfg.scale);
    let limits = StepLimits { max_steps: 200, ..limits_for(cfg.workload, Seeding::Sparse) };
    let pool = dataset.seeds_with_count(Seeding::Dense, cfg.trace.pool).points;
    let mem: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));

    // Gate 1: bit-identity of the cluster against the single service, on
    // the whole pool, through the fast store (correctness, not capacity).
    let bit_identical = {
        let n = cfg.replicas.iter().copied().max().unwrap_or(2).max(2);
        let cluster =
            ClusterService::start(dataset.decomp, Arc::clone(&mem), cluster_config(cfg, n));
        let service = Service::start(dataset.decomp, Arc::clone(&mem), ServiceConfig::default());
        let got = cluster
            .submit(Request::new(pool.clone()).with_limits(limits))
            .expect("pool fits admission")
            .wait()
            .expect("cluster answers");
        let want = service
            .submit(Request::new(pool.clone()).with_limits(limits))
            .expect("pool fits admission")
            .wait()
            .expect("service answers");
        cluster.shutdown();
        service.shutdown();
        digest(&got.streamlines) == digest(&want.streamlines)
    };

    // The ladder, per replica count.
    let mut cells = Vec::new();
    for &replicas in &cfg.replicas {
        let mut rungs = Vec::new();
        let mut max_sustainable = 0.0f64;
        for rung_i in 0..cfg.max_rungs.max(1) {
            let qps = cfg.trace.base_qps * f64::powi(2.0, rung_i as i32);
            let trace = cfg.trace.at_qps(qps);
            let ep = run_episode(cfg, replicas, &trace, None);
            let m = &ep.metrics;
            let hit_rate = {
                let (hits, loads): (u64, u64) = m
                    .per_replica
                    .iter()
                    .fold((0, 0), |(h, l), r| (h + r.cache_hits, l + r.cache_loaded));
                if hits + loads == 0 {
                    0.0
                } else {
                    hits as f64 / (hits + loads) as f64
                }
            };
            let sustainable =
                ep.rejected == 0 && ep.gone == 0 && m.latency_p99_ms <= cfg.p99_budget_ms;
            rungs.push(Rung {
                offered_qps: qps,
                arrivals: ep.arrivals,
                submitted: ep.submitted,
                rejected: ep.rejected,
                answered: ep.answered,
                gone: ep.gone,
                p50_ms: m.latency_p50_ms,
                p95_ms: m.latency_p95_ms,
                p99_ms: m.latency_p99_ms,
                cache_hit_rate: hit_rate,
                handoffs: m.handoffs,
                handoff_bytes: m.handoff_bytes,
                hot_local_hits: m.hot_local_hits,
                sustainable,
            });
            if sustainable {
                max_sustainable = qps;
            } else {
                break;
            }
        }
        cells.push(ClusterCell {
            replicas,
            replication: cfg.replication,
            max_sustainable_qps: max_sustainable,
            rungs,
        });
    }

    // Gate 2: the kill cell — a mid-trace fail-stop must leave every
    // ticket typed and the ledger exact.
    let kill = {
        let replicas = 3.min(cfg.replicas.iter().copied().max().unwrap_or(3)).max(2);
        let (r, at) = cfg.replica_kill;
        let r = r.min(replicas - 1);
        let ep = run_episode(cfg, replicas, &cfg.trace, Some((r, at)));
        KillCell {
            replicas,
            killed_replica: r,
            kill_at_s: at,
            submitted: ep.submitted,
            answered: ep.answered,
            gone: ep.gone,
            replica_deaths: ep.metrics.replica_deaths,
            redispatches: ep.metrics.redispatches,
            conservation_holds: ep.conservation_holds(),
        }
    };

    let scaling_ok = match (cells.first(), cells.last()) {
        (Some(lo), Some(hi)) if hi.replicas > lo.replicas => {
            hi.max_sustainable_qps > lo.max_sustainable_qps
        }
        _ => true,
    };

    // Smoke mode embeds a metrics dump so CI can grep the namespace.
    let prometheus = cfg.smoke.then(|| {
        let cluster =
            ClusterService::start(dataset.decomp, Arc::clone(&mem), cluster_config(cfg, 2));
        let _ = cluster
            .submit(Request::new(pool[..8.min(pool.len())].to_vec()).with_limits(limits))
            .expect("admitted")
            .wait();
        let text = cluster.dump_metrics();
        cluster.shutdown();
        text
    });

    ClusterBenchReport {
        schema: CLUSTER_BENCH_SCHEMA.to_string(),
        smoke: cfg.smoke,
        workload: format!("{:?}", cfg.workload),
        replication: cfg.replication,
        p99_budget_ms: cfg.p99_budget_ms,
        load_delay_us: cfg.load_delay.as_micros() as u64,
        cache_blocks: cfg.cache_blocks,
        trace: cfg.trace.clone(),
        cells,
        kill,
        bit_identical,
        scaling_ok,
        prometheus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_healthy_and_greppable() {
        let report = run_cluster_bench(&ClusterBenchConfig::smoke());
        assert!(report.bit_identical, "cluster answers diverged from the single service");
        assert!(report.kill.conservation_holds);
        assert_eq!(report.kill.replica_deaths, 1);
        assert!(report.healthy());
        let prom = report.prometheus.as_deref().expect("smoke embeds metrics");
        assert!(prom.contains("streamline_cluster_requests_submitted_total"));
        assert!(prom.contains("streamline_cluster_handoffs_total"));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"schema\":\"bench-cluster-v1\""));
    }
}
