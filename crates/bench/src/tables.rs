//! Render sweep results as the per-figure tables the paper plots.

use crate::experiments::CaseResult;
use streamline_core::{Algorithm, RunOutcome};

/// One metric extracted from a report, or the OOM marker.
fn metric(r: &CaseResult, which: &str) -> String {
    if let RunOutcome::OutOfMemory { .. } = r.report.outcome {
        return "OOM".to_string();
    }
    let v = match which {
        "wall" => r.report.wall,
        "io" => r.report.io_time,
        "comm" => r.report.comm_time,
        "eff" => r.report.block_efficiency(),
        _ => panic!("unknown metric {which}"),
    };
    if which == "eff" {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

/// Render one figure's table: rows = processor counts, columns = algorithms,
/// for the given metric over one (workload, seeding) slice.
pub fn figure_block(title: &str, results: &[CaseResult], which: &str) -> String {
    let mut procs: Vec<usize> = results.iter().map(|r| r.report.n_procs).collect();
    procs.sort();
    procs.dedup();
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str("| procs | static | load-on-demand | hybrid | steal |\n");
    out.push_str("|------:|-------:|---------------:|-------:|------:|\n");
    for p in procs {
        let cell = |algo: Algorithm| {
            results
                .iter()
                .find(|r| r.report.n_procs == p && r.report.algorithm == algo)
                .map(|r| metric(r, which))
                .unwrap_or_else(|| "—".to_string())
        };
        out.push_str(&format!(
            "| {p} | {} | {} | {} | {} |\n",
            cell(Algorithm::StaticAllocation),
            cell(Algorithm::LoadOnDemand),
            cell(Algorithm::HybridMasterSlave),
            cell(Algorithm::WorkStealing),
        ));
    }
    out.push('\n');
    out
}

/// Render the full set of four metric tables for one (workload, seeding)
/// sweep — the paper's wall/I-O/communication/efficiency quartet.
pub fn render_markdown(heading: &str, results: &[CaseResult], figure_numbers: [&str; 4]) -> String {
    let mut out = format!("## {heading}\n\n");
    out.push_str(&figure_block(
        &format!("{} — wall-clock time (s)", figure_numbers[0]),
        results,
        "wall",
    ));
    out.push_str(&figure_block(
        &format!("{} — total I/O time (s)", figure_numbers[1]),
        results,
        "io",
    ));
    out.push_str(&figure_block(
        &format!("{} — total communication time (s)", figure_numbers[2]),
        results,
        "comm",
    ));
    out.push_str(&figure_block(
        &format!("{} — block efficiency E", figure_numbers[3]),
        results,
        "eff",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Workload;
    use streamline_core::{RunConfig, RunReport};

    fn fake_result(algo: Algorithm, procs: usize, wall: f64) -> CaseResult {
        let cfg = RunConfig::new(algo, procs);
        CaseResult {
            workload: Workload::Astro,
            seeding: "sparse".into(),
            report: RunReport {
                algorithm: cfg.algorithm,
                n_procs: procs,
                dataset: "astro".into(),
                seeding: "sparse".into(),
                n_seeds: 10,
                outcome: RunOutcome::Completed,
                wall,
                io_time: 1.0,
                comm_time: 0.5,
                compute_time: 2.0,
                idle_time: 0.0,
                blocks_loaded: 10,
                blocks_purged: 0,
                msgs: 0,
                bytes_sent: 0,
                terminated: 10,
                total_steps: 100,
                sampler_hits: 0,
                sampler_misses: 0,
                batched_lanes: 0,
                batch_occupancy: 0.0,
                load_retries: 0,
                load_failures: 0,
                unavailable_terminations: 0,
                pingpong_streamlines: 0,
                balance_msgs: 0,
                balance_bytes: 0,
                rank_deaths: vec![],
                rank_lost_streamlines: 0,
                reassigned_streamlines: 0,
                detection_latency_mean: 0.0,
                detection_latency_max: 0.0,
                dropped_events: 0,
                ingest_epochs: 0,
                ingest_frontier_epochs: 0,
                ingest_epoch_arrivals: vec![],
                ingest_epoch_completions: vec![],
                ingest_lag_mean: 0.0,
                ingest_lag_max: 0.0,
                events: 1,
                per_rank: vec![],
            },
        }
    }

    #[test]
    fn table_contains_all_cells() {
        let results = vec![
            fake_result(Algorithm::StaticAllocation, 64, 1.0),
            fake_result(Algorithm::LoadOnDemand, 64, 2.0),
            fake_result(Algorithm::HybridMasterSlave, 64, 0.5),
        ];
        let t = figure_block("Fig 5", &results, "wall");
        assert!(t.contains("| 64 | 1.0000 | 2.0000 | 0.5000 |"), "{t}");
    }

    #[test]
    fn oom_rendered() {
        let mut r = fake_result(Algorithm::StaticAllocation, 64, 1.0);
        r.report.outcome = RunOutcome::OutOfMemory { rank: 3 };
        let t = figure_block("Fig 13", &[r], "wall");
        assert!(t.contains("OOM"), "{t}");
    }

    #[test]
    fn missing_cell_is_dash() {
        let results = vec![fake_result(Algorithm::StaticAllocation, 64, 1.0)];
        let t = figure_block("x", &results, "io");
        assert!(t.contains("| — | — |"), "{t}");
    }

    #[test]
    fn render_markdown_has_four_tables() {
        let results = vec![fake_result(Algorithm::StaticAllocation, 64, 1.0)];
        let md =
            render_markdown("Astro sparse+dense", &results, ["Fig 5", "Fig 6", "Fig 7", "Fig 8"]);
        assert_eq!(md.matches("###").count(), 4);
        assert!(md.contains("block efficiency"));
    }
}
