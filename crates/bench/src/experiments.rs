//! Workload and sweep definitions mirroring §5 of the paper.
//!
//! Every figure is one (dataset, seeding) pair measured for all three
//! algorithms across processor counts. The in-memory grids are scaled down
//! (512 blocks of 16³ cells instead of 1M cells); the cost models charge
//! paper-scale I/O, communication and per-step compute, so the *relative*
//! behaviour — who wins, by what factor, where the crossovers sit — is what
//! the simulation reproduces.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use streamline_core::{run_simulated_with_store, Algorithm, RunConfig, RunReport};
use streamline_field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_integrate::StepLimits;
use streamline_iosim::{BlockStore, MemoryStore};

/// The three application problems of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    Astro,
    Fusion,
    Thermal,
}

impl Workload {
    pub const ALL: [Workload; 3] = [Workload::Astro, Workload::Fusion, Workload::Thermal];

    pub fn label(self) -> &'static str {
        match self {
            Workload::Astro => "astrophysics",
            Workload::Fusion => "fusion",
            Workload::Thermal => "thermal-hydraulics",
        }
    }
}

/// Full scale (paper seed counts, 64–512 ranks) vs quick scale (reduced, for
/// tests and Criterion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepScale {
    Full,
    Quick,
}

/// The dataset for one workload at the paper's 512-block topology.
pub fn dataset_for(workload: Workload, scale: SweepScale) -> Dataset {
    let cfg = match scale {
        SweepScale::Full => DatasetConfig {
            blocks_per_axis: [8, 8, 8],
            cells_per_block: [16, 16, 16],
            ghost: 1,
            seed: 42,
        },
        SweepScale::Quick => DatasetConfig {
            blocks_per_axis: [4, 4, 4],
            cells_per_block: [8, 8, 8],
            ghost: 1,
            seed: 42,
        },
    };
    match workload {
        Workload::Astro => Dataset::astrophysics(cfg),
        Workload::Fusion => Dataset::fusion(cfg),
        Workload::Thermal => Dataset::thermal_hydraulics(cfg),
    }
}

/// Integration limits per workload/seeding (§3.2's scenarios; thermal-dense
/// uses the paper's "only integrated the streamlines a short distance").
pub fn limits_for(workload: Workload, seeding: Seeding) -> StepLimits {
    let mut l = StepLimits::default();
    match workload {
        Workload::Astro => {
            l.h0 = 1e-3;
            l.h_max = 0.02;
            // Long integrations: the curves wind through the shock region for
            // thousands of steps, so hand-offs carry substantial geometry
            // (§8: geometry dominates communication cost).
            l.max_steps = 2_500;
            l.min_speed = 1e-4;
        }
        Workload::Fusion => {
            l.h0 = 1e-2;
            l.h_max = 0.08;
            l.max_steps = 1_500;
            l.min_speed = 1e-4;
        }
        Workload::Thermal => {
            l.h0 = 1e-3;
            l.h_max = 0.01;
            l.min_speed = 1e-4;
            match seeding {
                Seeding::Sparse => {
                    l.max_steps = 1_000;
                    l.max_arc_length = 10.0;
                }
                Seeding::Dense => {
                    // Short-distance integration in the turbulent inlet jet.
                    l.max_steps = 2_500;
                    l.max_arc_length = 3.0;
                }
            }
        }
    }
    l
}

/// Run configuration for one (workload, algorithm, rank-count) cell.
pub fn case_config(
    workload: Workload,
    seeding: Seeding,
    algorithm: Algorithm,
    n_procs: usize,
) -> RunConfig {
    let mut cfg = RunConfig::new(algorithm, n_procs);
    cfg.limits = limits_for(workload, seeding);
    // 64 cached blocks ≈ 768 MB of block data per rank under the 12 MB/block
    // paper-scale cost model — the working set of a toroidally circulating
    // dense seed set fits (§5.2), a domain-filling sparse one does not.
    cfg.cache_blocks = 64;
    cfg
}

/// One measured sweep cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseResult {
    pub workload: Workload,
    pub seeding: String,
    pub report: RunReport,
}

/// Measure all three algorithms at each processor count for one
/// (workload, seeding) problem. The block store is shared across runs (the
/// sampled field data is identical; each run still *charges* its own I/O).
pub fn run_sweep(
    workload: Workload,
    seeding: Seeding,
    scale: SweepScale,
    procs: &[usize],
    seed_count: Option<usize>,
) -> Vec<CaseResult> {
    let dataset = dataset_for(workload, scale);
    let n_seeds = seed_count.unwrap_or_else(|| match scale {
        SweepScale::Full => dataset.paper_seed_count(seeding),
        SweepScale::Quick => dataset.paper_seed_count(seeding) / 20,
    });
    let seeds = dataset.seeds_with_count(seeding, n_seeds);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let mut out = Vec::new();
    for &p in procs {
        for algo in Algorithm::ALL {
            let cfg = case_config(workload, seeding, algo, p);
            let report = run_simulated_with_store(&dataset, &seeds, &cfg, Arc::clone(&store));
            out.push(CaseResult { workload, seeding: seeding.label().to_string(), report });
        }
    }
    out
}

/// The paper's processor counts.
pub fn paper_proc_counts() -> Vec<usize> {
    vec![64, 128, 256, 512]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_completes_for_every_workload() {
        for w in Workload::ALL {
            let results = run_sweep(w, Seeding::Sparse, SweepScale::Quick, &[4], Some(40));
            assert_eq!(results.len(), 4, "{w:?}");
            for r in &results {
                // Thermal-dense static OOM is the only sanctioned failure;
                // sparse quick cases must complete.
                assert!(r.report.outcome.completed(), "{w:?} {}", r.report.summary());
                assert_eq!(r.report.terminated, 40, "{w:?} {}", r.report.summary());
            }
        }
    }

    #[test]
    fn limits_differ_between_thermal_seedings() {
        let s = limits_for(Workload::Thermal, Seeding::Sparse);
        let d = limits_for(Workload::Thermal, Seeding::Dense);
        assert!(d.max_arc_length < s.max_arc_length);
    }
}
