//! Trace-shaped open-loop workload generation.
//!
//! Unlike the closed loop in [`crate::loadgen`] — where offered load tracks
//! service capacity — an open-loop trace fixes the arrival process up
//! front: requests arrive when the trace says they arrive, whether or not
//! the cluster has kept up. That is the regime where queueing theory bites
//! and where "max sustainable QPS at a p99 budget" is a meaningful number.
//!
//! The arrival process is an inhomogeneous Poisson process sampled by
//! thinning, with a rate curve
//!
//! ```text
//! λ(t) = base_qps × diurnal(t) × burst(t)
//! ```
//!
//! where `diurnal(t)` is a sinusoid over the trace duration (one "day":
//! trough at the start and end, peak in the middle) and `burst(t)` is a
//! square-wave multiplier modeling episodic flash crowds. Seed-point
//! popularity is Zipfian over a fixed pool — a handful of seeds dominate,
//! giving the hot-block machinery something to replicate — or uniform when
//! the exponent is zero.
//!
//! Everything is drawn from [`streamline_math::rng::stream`] streams keyed
//! by `(seed, purpose)`, so a trace is a pure function of its config:
//! same config, same arrivals, bit for bit, on every platform.

use rand::Rng;
use serde::Serialize;

/// Shape of one generated trace.
#[derive(Debug, Clone, Serialize)]
pub struct TraceWorkloadConfig {
    /// Master seed for arrivals and popularity draws.
    pub seed: u64,
    /// Trace length in (virtual) seconds.
    pub duration_s: f64,
    /// Mean arrival rate before diurnal/burst shaping, requests per second.
    pub base_qps: f64,
    /// Zipf exponent for seed popularity; `0.0` means uniform.
    pub zipf_s: f64,
    /// Distinct seed points in the popularity pool.
    pub pool: usize,
    /// Seed points drawn per request.
    pub seeds_per_request: usize,
    /// Diurnal swing in `[0, 1)`: the rate varies between
    /// `base × (1 − a)` and `base × (1 + a)` over the trace.
    pub diurnal_amplitude: f64,
    /// Rate multiplier during a burst episode (`1.0` disables bursts).
    pub burst_multiplier: f64,
    /// Burst period: an episode starts every this many seconds.
    pub burst_every_s: f64,
    /// Burst episode length in seconds.
    pub burst_len_s: f64,
}

impl Default for TraceWorkloadConfig {
    fn default() -> Self {
        TraceWorkloadConfig {
            seed: 0x7ace,
            duration_s: 2.0,
            base_qps: 40.0,
            zipf_s: 1.1,
            pool: 256,
            seeds_per_request: 4,
            diurnal_amplitude: 0.5,
            burst_multiplier: 3.0,
            burst_every_s: 0.8,
            burst_len_s: 0.1,
        }
    }
}

/// One request arrival: a timestamp (seconds from trace start) and the
/// indices into the seed pool this request asks for.
#[derive(Debug, Clone, Serialize)]
pub struct Arrival {
    pub t: f64,
    pub seed_indices: Vec<usize>,
}

impl TraceWorkloadConfig {
    /// The shaped arrival rate at trace time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let dur = self.duration_s.max(f64::MIN_POSITIVE);
        // One full "day" per trace: trough at t=0, peak at mid-trace.
        let phase = 2.0 * std::f64::consts::PI * (t / dur) - std::f64::consts::FRAC_PI_2;
        let diurnal = 1.0 + self.diurnal_amplitude * phase.sin();
        let burst = if self.burst_multiplier > 1.0 && self.burst_every_s > 0.0 {
            let into = t.rem_euclid(self.burst_every_s);
            if into < self.burst_len_s {
                self.burst_multiplier
            } else {
                1.0
            }
        } else {
            1.0
        };
        self.base_qps * diurnal * burst
    }

    /// The supremum of `rate_at` over the trace — the thinning envelope.
    pub fn rate_max(&self) -> f64 {
        self.base_qps * (1.0 + self.diurnal_amplitude) * self.burst_multiplier.max(1.0)
    }

    /// A copy of this trace re-based to a different mean rate; everything
    /// else (seed, shape, popularity) is unchanged, so a QPS ladder sweeps
    /// intensity without changing the workload's character.
    pub fn at_qps(&self, base_qps: f64) -> TraceWorkloadConfig {
        TraceWorkloadConfig { base_qps, ..self.clone() }
    }

    /// Generate the arrival sequence: inhomogeneous Poisson arrivals by
    /// thinning against [`Self::rate_max`], each carrying
    /// `seeds_per_request` Zipf-popular (or uniform) pool indices.
    pub fn generate(&self) -> Vec<Arrival> {
        let mut arr_rng = streamline_math::rng::stream(self.seed, "trace-arrivals");
        let mut pop_rng = streamline_math::rng::stream(self.seed, "trace-popularity");
        let zipf = ZipfCdf::new(self.pool.max(1), self.zipf_s);
        let lambda_max = self.rate_max();
        let mut out = Vec::new();
        if lambda_max <= 0.0 {
            return out;
        }
        let mut t = 0.0f64;
        loop {
            // Candidate exponential gap at the envelope rate …
            let u: f64 = arr_rng.gen::<f64>().max(f64::MIN_POSITIVE);
            t += -u.ln() / lambda_max;
            if t >= self.duration_s {
                return out;
            }
            // … thinned down to the shaped rate.
            if arr_rng.gen::<f64>() * lambda_max <= self.rate_at(t) {
                let seed_indices =
                    (0..self.seeds_per_request.max(1)).map(|_| zipf.draw(&mut pop_rng)).collect();
                out.push(Arrival { t, seed_indices });
            }
        }
    }
}

/// Zipf sampling via a precomputed CDF and binary search: index `i` has
/// weight `1 / (i + 1)^s`. `s = 0` degenerates to uniform.
struct ZipfCdf {
    cdf: Vec<f64>,
}

impl ZipfCdf {
    fn new(n: usize, s: f64) -> ZipfCdf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfCdf { cdf }
    }

    fn draw(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_same_trace() {
        let cfg = TraceWorkloadConfig::default();
        let a = cfg.generate();
        let b = cfg.generate();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.t.to_bits(), y.t.to_bits());
            assert_eq!(x.seed_indices, y.seed_indices);
        }
    }

    #[test]
    fn different_seed_different_trace() {
        let a = TraceWorkloadConfig::default().generate();
        let b = TraceWorkloadConfig { seed: 0xbeef, ..TraceWorkloadConfig::default() }.generate();
        assert!(a.len() != b.len() || a.iter().zip(&b).any(|(x, y)| x.t != y.t));
    }

    #[test]
    fn arrivals_are_ordered_and_in_range() {
        let cfg = TraceWorkloadConfig::default();
        let arrivals = cfg.generate();
        let mut last = 0.0;
        for a in &arrivals {
            assert!(a.t >= last && a.t < cfg.duration_s);
            last = a.t;
            assert_eq!(a.seed_indices.len(), cfg.seeds_per_request);
            assert!(a.seed_indices.iter().all(|&i| i < cfg.pool));
        }
    }

    #[test]
    fn mean_rate_tracks_base_qps() {
        // Long flat trace: the thinned process should land near base_qps.
        let cfg = TraceWorkloadConfig {
            duration_s: 50.0,
            base_qps: 100.0,
            diurnal_amplitude: 0.0,
            burst_multiplier: 1.0,
            ..TraceWorkloadConfig::default()
        };
        let n = cfg.generate().len() as f64;
        let mean = n / cfg.duration_s;
        assert!((mean - 100.0).abs() < 10.0, "mean rate {mean} too far from 100");
    }

    #[test]
    fn zipf_skews_and_uniform_does_not() {
        let zipfy = TraceWorkloadConfig {
            duration_s: 20.0,
            zipf_s: 1.2,
            pool: 64,
            ..TraceWorkloadConfig::default()
        };
        let flat = TraceWorkloadConfig { zipf_s: 0.0, ..zipfy.clone() };
        let head_share = |cfg: &TraceWorkloadConfig| {
            let arrivals = cfg.generate();
            let total: usize = arrivals.iter().map(|a| a.seed_indices.len()).sum();
            let head = arrivals
                .iter()
                .flat_map(|a| &a.seed_indices)
                .filter(|&&i| i < cfg.pool / 8)
                .count();
            head as f64 / total as f64
        };
        let z = head_share(&zipfy);
        let f = head_share(&flat);
        assert!(z > 0.5, "zipf head share {z} should dominate");
        assert!(f < 0.25, "uniform head share {f} should be ~1/8");
        assert!(z > 2.0 * f);
    }

    #[test]
    fn bursts_and_diurnal_shape_the_rate_curve() {
        let cfg = TraceWorkloadConfig::default();
        // Mid-trace (diurnal peak) beats trace start (trough).
        assert!(cfg.rate_at(0.45 * cfg.duration_s) > cfg.rate_at(0.75 * cfg.duration_s));
        // Inside a burst beats right after it, at the same diurnal phase.
        let in_burst = cfg.rate_at(cfg.burst_every_s + 0.5 * cfg.burst_len_s);
        let after = cfg.rate_at(cfg.burst_every_s + 2.0 * cfg.burst_len_s);
        assert!(in_burst > 2.0 * after);
        // And nothing ever exceeds the thinning envelope.
        for i in 0..1000 {
            let t = cfg.duration_s * i as f64 / 1000.0;
            assert!(cfg.rate_at(t) <= cfg.rate_max() + 1e-12);
        }
    }
}
