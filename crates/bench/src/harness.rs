//! Shared command-line plumbing for the figure binaries.
//!
//! Each `fig_*` binary accepts:
//!
//! * `--quick`        — reduced seed counts and rank counts (smoke run)
//! * `--procs a,b,c`  — override the processor-count sweep
//! * `--seeds N`      — override the seed count
//! * `--out PATH`     — also write the markdown tables to a file

use crate::experiments::{paper_proc_counts, run_sweep, SweepScale, Workload};
use crate::tables::render_markdown;
use streamline_field::dataset::Seeding;

#[derive(Debug, Clone)]
pub struct Args {
    pub scale: SweepScale,
    pub procs: Vec<usize>,
    pub seeds: Option<usize>,
    pub out: Option<std::path::PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args { scale: SweepScale::Full, procs: paper_proc_counts(), seeds: None, out: None }
    }
}

/// Parse `std::env::args`; panics with a usage message on bad input.
pub fn parse_args() -> Args {
    let mut out = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                out.scale = SweepScale::Quick;
                out.procs = vec![4, 8];
            }
            "--procs" => {
                let v = it.next().expect("--procs needs a,b,c");
                out.procs = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("processor counts must be integers"))
                    .collect();
            }
            "--seeds" => {
                out.seeds = Some(
                    it.next().expect("--seeds needs N").parse().expect("N must be an integer"),
                );
            }
            "--out" => {
                out.out = Some(it.next().expect("--out needs a path").into());
            }
            other => panic!("unknown argument {other}; supported: --quick --procs --seeds --out"),
        }
    }
    out
}

/// Figure numbers `[wall, io, comm, efficiency]` for each workload's quartet.
pub fn figure_numbers(workload: Workload) -> [&'static str; 4] {
    match workload {
        Workload::Astro => ["Figure 5", "Figure 6", "Figure 8", "Figure 7"],
        Workload::Fusion => ["Figure 9", "Figure 10", "Figure 11", "Figure 12"],
        Workload::Thermal => ["Figure 13", "Figure 14", "Figure 15", "Figure 16"],
    }
}

/// Run one workload's sparse and dense sweeps and render all of its figure
/// tables (each figure in the paper plots sparse and dense series together;
/// here they render as two table groups).
pub fn run_workload(workload: Workload, args: &Args) -> String {
    let nums = figure_numbers(workload);
    let mut md = String::new();
    for seeding in [Seeding::Sparse, Seeding::Dense] {
        eprintln!("[{}] running {} sweep ...", workload.label(), seeding.label());
        let t0 = std::time::Instant::now();
        let results = run_sweep(workload, seeding, args.scale, &args.procs, args.seeds);
        eprintln!(
            "[{}] {} sweep done in {:.1}s",
            workload.label(),
            seeding.label(),
            t0.elapsed().as_secs_f64()
        );
        let heading = format!("{} — {} seeding", workload.label(), seeding.label());
        let labelled: [String; 4] = [
            format!("{} ({})", nums[0], seeding.label()),
            format!("{} ({})", nums[1], seeding.label()),
            format!("{} ({})", nums[2], seeding.label()),
            format!("{} ({})", nums[3], seeding.label()),
        ];
        md.push_str(&render_markdown(
            &heading,
            &results,
            [&labelled[0], &labelled[1], &labelled[2], &labelled[3]],
        ));
        // Per-run one-liners to stderr for live inspection.
        for r in &results {
            eprintln!("  {}", r.report.summary());
        }
    }
    md
}

/// Print and optionally persist the markdown.
pub fn emit(md: &str, args: &Args) {
    println!("{md}");
    if let Some(path) = &args.out {
        std::fs::write(path, md).expect("writing --out file");
        eprintln!("wrote {}", path.display());
    }
}
