//! The figure-regeneration harness: workload definitions, parameter sweeps
//! and table printers for every figure in the paper's evaluation (§5,
//! Figures 5–16), plus the §4.3 parameter ablation.

pub mod ckpt_overhead;
pub mod cluster_bench;
pub mod drivers;
pub mod experiments;
pub mod harness;
pub mod kernels;
pub mod loadgen;
pub mod tables;
pub mod traceload;

pub use ckpt_overhead::{run_ckpt_overhead, CkptOverheadConfig, CkptOverheadReport};
pub use cluster_bench::{
    run_cluster_bench, run_cluster_trace, ClusterBenchConfig, ClusterBenchReport,
    ClusterTraceConfig, ClusterTraceReport, SlowStore, CLUSTER_BENCH_SCHEMA,
};
pub use drivers::{run_drivers, DriverCell, DriversConfig, DriversReport, DRIVERS_SCHEMA};
pub use experiments::{
    case_config, dataset_for, limits_for, run_sweep, CaseResult, SweepScale, Workload,
};
pub use kernels::{run_kernels, KernelsConfig, KernelsReport};
pub use loadgen::{run_load, ChaosConfig, LoadGenConfig, LoadGenReport};
pub use tables::{figure_block, render_markdown};
pub use traceload::{Arrival, TraceWorkloadConfig};
