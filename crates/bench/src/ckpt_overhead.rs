//! Checkpoint-overhead harness (`bench-ckpt` / `BENCH_5.json`).
//!
//! Measures what periodic checkpointing costs each driver on the
//! astrophysics/sparse workload: an uninstrumented run vs. a run writing a
//! snapshot roughly every eighth of its virtual wall, timed in host
//! wall-clock. The budget is <5% overhead at the default cadence. Each case
//! also kills a run mid-way and resumes it, asserting the subsystem's core
//! invariant (bit-identical output) holds at benchmark scale — a perf
//! number for a checkpoint that resumes wrong would be meaningless.

use crate::experiments::{case_config, dataset_for, SweepScale, Workload};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;
use streamline_core::{
    resume_simulated_detailed_with_store, run_simulated_checkpointed_with_store,
    run_simulated_detailed_with_store, Algorithm, CheckpointOptions,
};
use streamline_field::dataset::Seeding;
use streamline_iosim::{BlockStore, FieldStore};

/// Shape of one harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct CkptOverheadConfig {
    /// Seconds-scale iteration counts for CI; full counts otherwise.
    pub smoke: bool,
}

/// One driver's overhead measurement.
#[derive(Debug, Clone, Serialize)]
pub struct CkptCase {
    pub algorithm: String,
    /// Median host seconds of the plain run.
    pub plain_secs: f64,
    /// Median host seconds of the checkpointed run.
    pub checkpointed_secs: f64,
    /// `(checkpointed - plain) / plain`.
    pub overhead_frac: f64,
    /// Snapshots the checkpointed run wrote.
    pub checkpoints: u64,
    /// Total snapshot bytes written per run.
    pub bytes_written: u64,
    /// Virtual-seconds cadence used (plain virtual wall / 8).
    pub interval: f64,
    /// A mid-run kill resumed to byte-equal streamlines and report.
    pub resume_bit_identical: bool,
}

/// Everything one harness run measured.
#[derive(Debug, Clone, Serialize)]
pub struct CkptOverheadReport {
    pub smoke: bool,
    /// The acceptance budget on `overhead_frac`.
    pub budget_frac: f64,
    pub cases: Vec<CkptCase>,
    pub max_overhead_frac: f64,
    /// Every case within budget (noise-dominated in smoke mode).
    pub within_budget: bool,
    /// Every case resumed bit-identically.
    pub all_resumes_bit_identical: bool,
}

impl CkptOverheadReport {
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for c in &self.cases {
            out.push_str(&format!(
                "{:<16} plain {:>8.1} ms  ckpt {:>8.1} ms  overhead {:>+6.2}%  \
                 ({} snapshots, {:.1} KiB, resume bit-identical: {})\n",
                c.algorithm,
                c.plain_secs * 1e3,
                c.checkpointed_secs * 1e3,
                c.overhead_frac * 1e2,
                c.checkpoints,
                c.bytes_written as f64 / 1024.0,
                c.resume_bit_identical,
            ));
        }
        out.push_str(&format!(
            "max overhead {:.2}% (budget {:.0}%), within budget: {}",
            self.max_overhead_frac * 1e2,
            self.budget_frac * 1e2,
            self.within_budget
        ));
        out
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Run the harness: astrophysics/sparse, all three drivers.
pub fn run_ckpt_overhead(cfg: &CkptOverheadConfig) -> CkptOverheadReport {
    let scale = if cfg.smoke { SweepScale::Quick } else { SweepScale::Full };
    let (n_procs, n_seeds, repeats) = if cfg.smoke { (8, 64, 3) } else { (32, 400, 5) };
    let dataset = dataset_for(Workload::Astro, scale);
    let seeds = dataset.seeds_with_count(Seeding::Sparse, n_seeds);
    let dir = std::env::temp_dir().join(format!("slckpt-bench-{}", std::process::id()));

    let mut cases = Vec::new();
    for algorithm in Algorithm::ALL {
        let run_cfg = case_config(Workload::Astro, Seeding::Sparse, algorithm, n_procs);
        let store = || -> Arc<dyn BlockStore> { Arc::new(FieldStore::new(dataset.clone())) };

        // Untimed warm-up run doubles as the reference output and supplies
        // the virtual wall the cadence hangs off.
        let (ref_report, ref_lines) =
            run_simulated_detailed_with_store(&dataset, &seeds, &run_cfg, store());
        let interval = (ref_report.wall / 8.0).max(f64::MIN_POSITIVE);

        // Timed samples, plain and checkpointed interleaved pairwise so host
        // drift (CPU contention, thermal state) lands on both distributions
        // equally instead of biasing whichever phase ran second.
        let case_dir = dir.join(algorithm.label());
        let opts = CheckpointOptions::new(&case_dir, interval);
        let mut plain_samples = Vec::new();
        let mut ckpt_samples = Vec::new();
        let mut checkpoints = 0u64;
        let mut bytes_written = 0u64;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let _ = run_simulated_detailed_with_store(&dataset, &seeds, &run_cfg, store());
            plain_samples.push(t0.elapsed().as_secs_f64());

            let _ = std::fs::remove_dir_all(&case_dir);
            let t0 = Instant::now();
            let out =
                run_simulated_checkpointed_with_store(&dataset, &seeds, &run_cfg, store(), &opts)
                    .expect("checkpointed run");
            ckpt_samples.push(t0.elapsed().as_secs_f64());
            checkpoints = out.checkpoints.len() as u64;
            bytes_written = out.bytes_written;
            let (report, lines) = out.result.expect("uninterrupted run completes");
            assert_eq!(lines, ref_lines, "{algorithm:?}: checkpointing perturbed the run");
            assert_eq!(report.wall, ref_report.wall);
        }

        // Kill mid-run and resume; the perf number is only meaningful if
        // the resumed output is byte-equal.
        let _ = std::fs::remove_dir_all(&case_dir);
        let kill_opts = CheckpointOptions {
            kill_after: Some((checkpoints / 2).max(1)),
            ..CheckpointOptions::new(&case_dir, interval)
        };
        let killed =
            run_simulated_checkpointed_with_store(&dataset, &seeds, &run_cfg, store(), &kill_opts)
                .expect("killed run");
        let latest = killed.checkpoints.last().expect("kill_after >= 1 wrote a snapshot");
        let (res_report, res_lines) =
            resume_simulated_detailed_with_store(&dataset, &seeds, &run_cfg, store(), latest)
                .expect("resume");
        let resume_bit_identical = res_lines == ref_lines && res_report.wall == ref_report.wall;
        let _ = std::fs::remove_dir_all(&case_dir);

        let plain_secs = median(plain_samples);
        let checkpointed_secs = median(ckpt_samples);
        cases.push(CkptCase {
            algorithm: algorithm.label().to_string(),
            plain_secs,
            checkpointed_secs,
            overhead_frac: (checkpointed_secs - plain_secs) / plain_secs,
            checkpoints,
            bytes_written,
            interval,
            resume_bit_identical,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    let budget_frac = 0.05;
    let max_overhead_frac = cases.iter().map(|c| c.overhead_frac).fold(f64::MIN, f64::max);
    CkptOverheadReport {
        smoke: cfg.smoke,
        budget_frac,
        max_overhead_frac,
        within_budget: max_overhead_frac < budget_frac,
        all_resumes_bit_identical: cases.iter().all(|c| c.resume_bit_identical),
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_harness_resumes_bit_identically_on_every_driver() {
        let report = run_ckpt_overhead(&CkptOverheadConfig { smoke: true });
        assert_eq!(report.cases.len(), 4);
        assert!(report.all_resumes_bit_identical, "{}", report.summary());
        for c in &report.cases {
            assert!(c.checkpoints > 0, "{}: no snapshots written", c.algorithm);
            assert!(c.bytes_written > 0);
            assert!(c.plain_secs > 0.0 && c.checkpointed_secs > 0.0);
        }
        // The report is what `bench-ckpt --json` writes; it must serialize.
        serde_json::to_string(&report).expect("report serializes");
    }
}
