//! Diagnostic: message-mix breakdown for one hybrid run (developer tool).

use std::sync::Arc;
use streamline_bench::experiments::{case_config, dataset_for, SweepScale, Workload};
use streamline_core::{build_procs, Algorithm, AnyProc};
use streamline_desim::Simulation;
use streamline_field::dataset::Seeding;
use streamline_iosim::{BlockStore, MemoryStore};

fn main() {
    let procs_n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let seeds_n: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let workload = Workload::Astro;
    let seeding = Seeding::Sparse;
    let dataset = dataset_for(workload, SweepScale::Full);
    let seeds = dataset.seeds_with_count(seeding, seeds_n);
    let cfg = case_config(workload, seeding, Algorithm::HybridMasterSlave, procs_n);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let procs = build_procs(&dataset, &seeds, &cfg, store);
    let (report, procs) = Simulation::new(cfg.cost.net, procs).run();
    let mut handoffs = 0;
    let mut statuses = 0;
    let mut cmds = [0u64; 5];
    let mut loads = 0;
    let mut purges = 0;
    let (mut lh, mut lm) = (0u64, 0u64);
    for p in &procs {
        match p {
            AnyProc::Slave(s) => {
                handoffs += s.sent_handoffs;
                statuses += s.sent_statuses;
                lh += s.load_cmd_hits;
                lm += s.load_cmd_misses;
                let st = s.workspace().cache_stats();
                loads += st.loaded;
                purges += st.purged;
            }
            AnyProc::Master(m) => {
                for (c, v) in cmds.iter_mut().zip(m.cmd_counts.iter()) {
                    *c += v;
                }
            }
            _ => {}
        }
    }
    println!(
        "wall={:.3}s events={} msgs_total={}",
        report.wall,
        report.events,
        report.ranks.iter().map(|m| m.msgs_sent).sum::<u64>()
    );
    println!("handoffs={handoffs} statuses={statuses}");
    println!(
        "cmds: assign={} force={} hint={} load={} term={}",
        cmds[0], cmds[1], cmds[2], cmds[3], cmds[4]
    );
    println!("block loads={loads} purges={purges} load_cmd_hits={lh} load_cmd_misses={lm}");
    let (io, comm, compute) = report.totals();
    println!(
        "io={io:.2}s comm={comm:.2}s compute={compute:.2}s idle={:.2}s",
        report.total(|m| m.idle)
    );
}
