//! Utilization timelines: an ASCII (rank × virtual-time) heat map per
//! algorithm, making load imbalance and §8's "processor starvation"
//! directly visible.
//!
//! ```sh
//! cargo run --release -p streamline-bench --bin timeline [-- --quick]
//! ```

use std::sync::Arc;
use streamline_bench::experiments::{case_config, dataset_for, SweepScale, Workload};
use streamline_core::{build_procs, Algorithm};
use streamline_desim::Simulation;
use streamline_field::dataset::Seeding;
use streamline_iosim::{BlockStore, MemoryStore};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, procs, n_seeds) =
        if quick { (SweepScale::Quick, 8, 300) } else { (SweepScale::Full, 32, 4_000) };
    let workload = Workload::Astro;
    let seeding = Seeding::Sparse;
    let dataset = dataset_for(workload, scale);
    let seeds = dataset.seeds_with_count(seeding, n_seeds);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));

    println!(
        "# Utilization timelines — {} {}, {} seeds, {procs} ranks",
        workload.label(),
        seeding.label(),
        seeds.len()
    );
    println!("(rows = ranks, columns = virtual time; '#' busy, ' ' idle)\n");
    for algo in Algorithm::ALL {
        let cfg = case_config(workload, seeding, algo, procs);
        let ranks = build_procs(&dataset, &seeds, &cfg, Arc::clone(&store));
        let (report, _, timeline) =
            Simulation::new(cfg.cost.net, ranks).run_traced(report_bucket(&cfg));
        println!(
            "## {} — wall {:.3}s, idle fraction {:.1}%",
            algo.label(),
            report.wall,
            100.0 * timeline.idle_fraction()
        );
        print!("{}", timeline.render(100));
        println!();
    }
    println!(
        "Reading: Static Allocation shows flow-dependent hot rows (the ranks \
         owning popular blocks); Load On Demand is dense but long; the Hybrid \
         keeps most rows shaded until the coordinated wind-down."
    );
}

/// ~200 columns worth of buckets before merging.
fn report_bucket(cfg: &streamline_core::RunConfig) -> f64 {
    let _ = cfg;
    0.005
}
