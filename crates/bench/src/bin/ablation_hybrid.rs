//! Ablation of the Hybrid Master/Slave tuning parameters of §4.3:
//! `N` (seeds per assignment), `N_O` (overload limit), `N_L` (load
//! threshold) and `W` (slaves per master), plus the LRU capacity.
//!
//! The paper gives point values (N = 10, N_O = 20·N, N_L = 40, W = 32);
//! this harness sweeps each around its default on the astrophysics sparse
//! problem, holding everything else fixed.
//!
//! ```sh
//! cargo run --release -p streamline-bench --bin ablation_hybrid [-- --quick]
//! ```

use std::sync::Arc;
use streamline_bench::experiments::{case_config, dataset_for, SweepScale, Workload};
use streamline_core::{run_simulated_with_store, Algorithm, RunConfig, RunReport};
use streamline_field::dataset::Seeding;
use streamline_iosim::{BlockStore, MemoryStore};

struct Ablation {
    label: &'static str,
    values: Vec<usize>,
    default_idx: usize,
    apply: fn(&mut RunConfig, usize),
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, procs, seeds) = if quick {
        (SweepScale::Quick, 8, Some(400))
    } else {
        (SweepScale::Full, 128, Some(20_000))
    };
    let workload = Workload::Astro;
    let seeding = Seeding::Sparse;
    let dataset = dataset_for(workload, scale);
    let seed_set = dataset.seeds_with_count(seeding, seeds.unwrap());
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));

    let ablations = [
        Ablation {
            label: "N (seeds per assignment)",
            values: vec![1, 5, 10, 50, 200],
            default_idx: 2,
            apply: |c, v| c.hybrid.n_assign = v,
        },
        Ablation {
            label: "N_O/N (overload factor)",
            values: vec![2, 5, 20, 100],
            default_idx: 2,
            apply: |c, v| c.hybrid.overload_factor = v,
        },
        Ablation {
            label: "N_L (load threshold)",
            values: vec![5, 10, 40, 160, 1000],
            default_idx: 2,
            apply: |c, v| c.hybrid.n_load = v,
        },
        Ablation {
            label: "W (slaves per master)",
            values: vec![8, 16, 32, 64],
            default_idx: 2,
            apply: |c, v| c.hybrid.slaves_per_master = v,
        },
        Ablation {
            label: "LRU capacity (blocks)",
            values: vec![8, 16, 32, 64, 128],
            default_idx: 3,
            apply: |c, v| c.cache_blocks = v,
        },
    ];

    println!(
        "# Hybrid parameter ablation — {} {}, {} seeds, {procs} ranks\n",
        workload.label(),
        seeding.label(),
        seed_set.len()
    );
    for ab in &ablations {
        println!("## {}\n", ab.label);
        println!("| value | wall (s) | io (s) | comm (s) | E | msgs | idle (s) |");
        println!("|------:|---------:|-------:|---------:|--:|-----:|---------:|");
        for (i, &v) in ab.values.iter().enumerate() {
            let mut cfg = case_config(workload, seeding, Algorithm::HybridMasterSlave, procs);
            (ab.apply)(&mut cfg, v);
            let r: RunReport =
                run_simulated_with_store(&dataset, &seed_set, &cfg, Arc::clone(&store));
            let marker = if i == ab.default_idx { " (paper)" } else { "" };
            println!(
                "| {v}{marker} | {:.3} | {:.2} | {:.3} | {:.3} | {} | {:.2} |",
                r.wall,
                r.io_time,
                r.comm_time,
                r.block_efficiency(),
                r.msgs,
                r.idle_time,
            );
            assert!(r.outcome.completed(), "ablation run failed: {}", r.summary());
        }
        println!();
    }
}
