//! §8 future-work experiment: "it should be sufficient to communicate
//! solver state as well as some relatively compact derived quantities" —
//! how much communication does dropping geometry from hand-offs save, and
//! does it change who wins?
//!
//! Compares `comm_geometry = true` (the paper's measured configuration)
//! against solver-state-only hand-offs for Static Allocation and Hybrid on
//! the astrophysics problem.
//!
//! ```sh
//! cargo run --release -p streamline-bench --bin geometry_comm [-- --quick]
//! ```

use std::sync::Arc;
use streamline_bench::experiments::{case_config, dataset_for, SweepScale, Workload};
use streamline_core::{run_simulated_with_store, Algorithm};
use streamline_field::dataset::Seeding;
use streamline_iosim::{BlockStore, MemoryStore};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, procs, n_seeds) =
        if quick { (SweepScale::Quick, 8, 400) } else { (SweepScale::Full, 128, 20_000) };
    let workload = Workload::Astro;
    let dataset = dataset_for(workload, scale);
    let seeds = dataset.seeds_with_count(Seeding::Sparse, n_seeds);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));

    println!(
        "# Communicating geometry vs solver state only (§8)\n\n\
         {} sparse, {} seeds, {procs} ranks\n",
        workload.label(),
        seeds.len()
    );
    println!("| algorithm | hand-off payload | wall (s) | comm (s) | bytes sent |");
    println!("|-----------|------------------|---------:|---------:|-----------:|");
    for algo in [Algorithm::StaticAllocation, Algorithm::HybridMasterSlave] {
        for geometry in [true, false] {
            let mut cfg = case_config(workload, Seeding::Sparse, algo, procs);
            cfg.comm_geometry = geometry;
            let r = run_simulated_with_store(&dataset, &seeds, &cfg, Arc::clone(&store));
            assert!(r.outcome.completed(), "{}", r.summary());
            println!(
                "| {} | {} | {:.3} | {:.4} | {} |",
                algo.label(),
                if geometry { "full geometry" } else { "solver state" },
                r.wall,
                r.comm_time,
                r.bytes_sent,
            );
        }
    }
    println!(
        "\nExpected shape: dropping geometry cuts bytes by orders of magnitude \
         for the hand-off-heavy Static Allocation, narrowing (but not erasing) \
         the hybrid's advantage — and it changes nothing about I/O or block \
         efficiency."
    );
}
