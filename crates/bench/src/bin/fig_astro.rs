//! Regenerates Figures 5–8: the astrophysics (supernova) scaling study.

use streamline_bench::experiments::Workload;
use streamline_bench::harness::{emit, parse_args, run_workload};

fn main() {
    let args = parse_args();
    let md = run_workload(Workload::Astro, &args);
    emit(&md, &args);
}
