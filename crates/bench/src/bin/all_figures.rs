//! Run every figure sweep (Figures 5–16) and write the consolidated
//! markdown into `EXPERIMENTS-data.md` (or `--out PATH`), including the
//! paper-vs-measured shape checklist.
//!
//! ```sh
//! cargo run --release -p streamline-bench --bin all_figures [-- --quick]
//! ```

use streamline_bench::experiments::Workload;
use streamline_bench::harness::{parse_args, run_workload};

fn main() {
    let mut args = parse_args();
    if args.out.is_none() {
        args.out = Some("EXPERIMENTS-data.md".into());
    }
    let mut md = String::from(
        "# Regenerated evaluation data (Figures 5-16)\n\n\
         Produced by `cargo run --release -p streamline-bench --bin all_figures`.\n\
         Virtual-time measurements from the deterministic simulated cluster;\n\
         see EXPERIMENTS.md for the paper-vs-measured analysis.\n\n",
    );
    for w in Workload::ALL {
        md.push_str(&run_workload(w, &args));
    }
    println!("{md}");
    if let Some(path) = &args.out {
        std::fs::write(path, &md).expect("writing output file");
        eprintln!("wrote {}", path.display());
    }
}
