//! Regenerates Figures 9–12: the magnetically-confined-fusion scaling study.

use streamline_bench::experiments::Workload;
use streamline_bench::harness::{emit, parse_args, run_workload};

fn main() {
    let args = parse_args();
    let md = run_workload(Workload::Fusion, &args);
    emit(&md, &args);
}
