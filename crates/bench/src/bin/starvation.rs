//! §8 starvation analysis: "we have found that processor starvation is often
//! a limitation to large scalability."
//!
//! Prints the per-rank idle-fraction distribution for each algorithm on one
//! problem: how much of the critical path each strategy spends starved.
//!
//! ```sh
//! cargo run --release -p streamline-bench --bin starvation [-- --quick]
//! ```

use std::sync::Arc;
use streamline_bench::experiments::{case_config, dataset_for, SweepScale, Workload};
use streamline_core::{run_simulated_with_store, Algorithm};
use streamline_field::dataset::Seeding;
use streamline_iosim::{BlockStore, MemoryStore};
use streamline_math::stats::Summary;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, procs, n_seeds) =
        if quick { (SweepScale::Quick, 8, 400) } else { (SweepScale::Full, 256, 20_000) };
    let workload = Workload::Astro;
    let seeding = Seeding::Sparse;
    let dataset = dataset_for(workload, scale);
    let seeds = dataset.seeds_with_count(seeding, n_seeds);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));

    println!(
        "# Per-rank starvation (idle time) — {} {}, {} seeds, {procs} ranks\n",
        workload.label(),
        seeding.label(),
        seeds.len()
    );
    println!("| algorithm | wall (s) | idle mean | idle p95 | idle max | busy imbalance |");
    println!("|-----------|---------:|----------:|---------:|---------:|---------------:|");
    for algo in Algorithm::ALL {
        let cfg = case_config(workload, seeding, algo, procs);
        let r = run_simulated_with_store(&dataset, &seeds, &cfg, Arc::clone(&store));
        assert!(r.outcome.completed(), "{}", r.summary());
        let idle: Vec<f64> = r.per_rank.iter().map(|m| m.idle).collect();
        let s = Summary::of(&idle).expect("ranks present");
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.2} |",
            algo.label(),
            r.wall,
            s.mean,
            s.p95,
            s.max,
            r.load_imbalance(),
        );
    }
    println!(
        "\nIdle time is the §8 starvation signal: the hybrid trades some \
         coordination idle (slaves waiting on master round-trips) for the \
         elimination of static allocation's flow-dependent hot ranks."
    );
}
