//! Regenerates Figures 13–16: the thermal-hydraulics scaling study
//! (including the Static Allocation out-of-memory failure on dense seeds).

use streamline_bench::experiments::Workload;
use streamline_bench::harness::{emit, parse_args, run_workload};

fn main() {
    let args = parse_args();
    let md = run_workload(Workload::Thermal, &args);
    emit(&md, &args);
}
