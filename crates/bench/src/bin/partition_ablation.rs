//! Ablation of §4.1's block-to-rank mapping: the paper's contiguous
//! first-1/n assignment vs round-robin.
//!
//! Contiguous ownership keeps spatially adjacent blocks on one rank, so
//! short block crossings often stay local; round-robin makes *every*
//! crossing a hand-off but spreads concentrated seed sets across ranks.
//!
//! ```sh
//! cargo run --release -p streamline-bench --bin partition_ablation [-- --quick]
//! ```

use std::sync::Arc;
use streamline_bench::experiments::{case_config, dataset_for, SweepScale, Workload};
use streamline_core::{run_simulated_with_store, Algorithm, RunOutcome, StaticPartition};
use streamline_field::dataset::Seeding;
use streamline_iosim::{BlockStore, MemoryStore};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, procs, seeds_n) =
        if quick { (SweepScale::Quick, 8, 400) } else { (SweepScale::Full, 128, 20_000) };

    println!("# Static Allocation partition ablation (§4.1)\n");
    for (workload, seeding) in [
        (Workload::Astro, Seeding::Sparse),
        (Workload::Astro, Seeding::Dense),
        (Workload::Thermal, Seeding::Dense),
    ] {
        let dataset = dataset_for(workload, scale);
        let n = if quick { seeds_n } else { dataset.paper_seed_count(seeding) };
        let seeds = dataset.seeds_with_count(seeding, n);
        let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
        println!("## {} — {} ({} seeds, {procs} ranks)\n", workload.label(), seeding.label(), n);
        println!("| partition | outcome | wall (s) | comm (s) | msgs | imbalance |");
        println!("|-----------|---------|---------:|---------:|-----:|----------:|");
        for partition in [StaticPartition::Contiguous, StaticPartition::RoundRobin] {
            let mut cfg = case_config(workload, seeding, Algorithm::StaticAllocation, procs);
            cfg.static_partition = partition;
            let r = run_simulated_with_store(&dataset, &seeds, &cfg, Arc::clone(&store));
            let label = match partition {
                StaticPartition::Contiguous => "contiguous (paper)",
                StaticPartition::RoundRobin => "round-robin",
            };
            match r.outcome {
                RunOutcome::Completed => println!(
                    "| {label} | ok | {:.3} | {:.3} | {} | {:.2} |",
                    r.wall,
                    r.comm_time,
                    r.msgs,
                    r.load_imbalance(),
                ),
                RunOutcome::OutOfMemory { rank } => {
                    println!("| {label} | OOM@r{rank} | — | — | — | — |")
                }
                RunOutcome::MasterLost { rank } => {
                    println!("| {label} | master lost@r{rank} | — | — | — | — |")
                }
            }
        }
        println!();
    }
    println!(
        "Expected: round-robin multiplies hand-offs (every crossing changes \
         owner) but can rescue the dense case from single-rank concentration \
         when seeds cluster inside one block *row* — though not when they \
         cluster inside a single block."
    );
}
