//! §8 pathline I/O experiment: on-demand loading ("many small reads that
//! can often overwhelm the file system") vs the paper's proposed
//! read-each-block-once time sweep.
//!
//! ```sh
//! cargo run --release -p streamline-bench --bin pathline_io [-- --quick]
//! ```

use std::sync::Arc;
use streamline_field::decomp::BlockDecomposition;
use streamline_field::timedecomp::TimeBlockDecomposition;
use streamline_field::unsteady::UnsteadyDoubleGyre;
use streamline_integrate::StepLimits;
use streamline_math::{Aabb, Vec3};
use streamline_pathline::{run_on_demand, run_time_sweep, PathlineConfig, SpaceTimeStore};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (blocks, cells, snapshots, n_seeds) =
        if quick { ([2, 2, 1], [6, 6, 4], 6, 64) } else { ([8, 4, 1], [12, 12, 6], 21, 2_000) };

    let field = UnsteadyDoubleGyre::standard();
    let space =
        BlockDecomposition::new(Aabb::new(Vec3::ZERO, Vec3::new(2.0, 1.0, 0.25)), blocks, cells, 1);
    let decomp = TimeBlockDecomposition::new(space, snapshots, 0.0, field.duration);
    let store = SpaceTimeStore::new(decomp, Arc::new(field));
    let seeds: Vec<Vec3> = (0..n_seeds)
        .map(|i| {
            let u = (i as f64 + 0.5) / n_seeds as f64;
            Vec3::new(0.05 + 1.9 * u, 0.1 + 0.8 * ((u * 37.0).fract()), 0.12)
        })
        .collect();

    println!(
        "# Pathline I/O strategies (§8)\n\n\
         unsteady double gyre, {} space blocks x {snapshots} snapshots = {} \
         space-time blocks, {n_seeds} particles over t in [0, {}]\n",
        decomp.space.num_blocks(),
        decomp.num_blocks(),
        field.duration
    );

    let mut cfg = PathlineConfig {
        limits: StepLimits { h0: 1e-2, h_max: 0.1, max_steps: 200_000, ..Default::default() },
        ..Default::default()
    };

    println!("| strategy | cache | loads | redundant | io time (s) |");
    println!("|----------|------:|------:|----------:|------------:|");
    for cache in [4usize, 8, 16] {
        cfg.cache_blocks = cache;
        let od = run_on_demand(&store, &seeds, &cfg);
        println!(
            "| on-demand | {cache} | {} | {} | {:.2} |",
            od.reads.loads, od.reads.redundant_loads, od.reads.io_time
        );
    }
    let ts = run_time_sweep(&store, &seeds, &cfg);
    println!(
        "| time-sweep (read-once) | — | {} | {} | {:.2} |",
        ts.reads.loads, ts.reads.redundant_loads, ts.reads.io_time
    );

    // Equivalence of trajectories is the correctness contract.
    let od = run_on_demand(&store, &seeds, &cfg);
    assert_eq!(od.pathlines.len(), ts.pathlines.len());
    for (a, b) in od.pathlines.iter().zip(ts.pathlines.iter()) {
        assert_eq!(a.state.position, b.state.position, "strategy changed physics!");
    }
    println!(
        "\nTrajectories identical across strategies; the sweep reads each \
         block once ({} loads) while on-demand re-reads under cache pressure.",
        ts.reads.loads
    );
}
