//! Kernel perf-regression harness: times the integration hot path
//! (sampling / DOPRI5 step / whole streamline, fast vs reference), the
//! batch-vs-scalar advection curve and an end-to-end serve run, and writes
//! the machine-readable trajectory file.
//!
//! * `--smoke`     — seconds-scale iteration counts (CI)
//! * `--out PATH`  — where to write the JSON report (default `BENCH_7.json`)
//! * `--force`     — overwrite an existing report file (refused otherwise)

use streamline_bench::kernels::{run_kernels, KernelsConfig};

fn main() {
    let mut smoke = false;
    let mut force = false;
    let mut out = std::path::PathBuf::from("BENCH_7.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--force" => force = true,
            "--out" => out = it.next().expect("--out needs a path").into(),
            other => panic!("unknown argument {other}; supported: --smoke --out --force"),
        }
    }
    if !force && out.exists() {
        eprintln!("error: {} already exists; pass --force to overwrite", out.display());
        std::process::exit(64);
    }

    let report = run_kernels(&KernelsConfig { smoke });
    println!("{}", report.summary());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("writing report file");
    eprintln!("wrote {}", out.display());
}
