//! Kernel perf-regression harness: times the integration hot path
//! (sampling / DOPRI5 step / whole streamline, fast vs reference) plus an
//! end-to-end serve run, and writes the machine-readable trajectory file.
//!
//! * `--smoke`     — seconds-scale iteration counts (CI)
//! * `--out PATH`  — where to write the JSON report (default `BENCH_2.json`)

use streamline_bench::kernels::{run_kernels, KernelsConfig};

fn main() {
    let mut smoke = false;
    let mut out = std::path::PathBuf::from("BENCH_2.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out needs a path").into(),
            other => panic!("unknown argument {other}; supported: --smoke --out"),
        }
    }

    let report = run_kernels(&KernelsConfig { smoke });
    println!("{}", report.summary());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("writing report file");
    eprintln!("wrote {}", out.display());
}
