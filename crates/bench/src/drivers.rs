//! Scheduling-driver comparison harness (`bench-drivers` / `BENCH_6.json`).
//!
//! One virtual-time run per (workload, seeding, rank count, driver) cell:
//! all four scheduling drivers on each of the three application problems,
//! sparse and dense seeding, across the paper's 64–512 simulated ranks.
//! Each cell reports the scheduling diagnostics the observability layer
//! exposes — mean participation, communication-overhead share, ping-ponged
//! streamline count, load-balance message traffic — so the trade-off
//! between the centralized (hybrid) and decentralized (steal) balancers is
//! one JSON file.
//!
//! Correctness gates the numbers: on these closed fault-free workloads all
//! drivers that complete a cell must terminate the same streamline count
//! with the same total step count. A timing table for drivers that disagree
//! on the science would be meaningless. (Thermal/dense static allocation is
//! the paper's sanctioned out-of-memory failure; incomplete cells are
//! excluded from the agreement check, never silently dropped from the
//! report.)
//!
//! Full scale uses an eighth of the paper seed counts: the relative driver
//! behaviour is stable under the reduction and the full 96-cell matrix
//! stays re-runnable in minutes.

use crate::experiments::{case_config, dataset_for, SweepScale, Workload};
use serde::Serialize;
use std::sync::Arc;
use streamline_core::{
    run_simulated_open_detailed_with_store, run_simulated_with_store, Algorithm, DetectorKind,
    RankChaos, SeedSource,
};
use streamline_field::dataset::Seeding;
use streamline_field::seeds::SeedSet;
use streamline_iosim::{BlockStore, MemoryStore};

/// Schema tag of the emitted JSON.
pub const DRIVERS_SCHEMA: &str = "bench-drivers-v1";

/// Shape of one harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct DriversConfig {
    /// Seconds-scale iteration counts for CI; full counts otherwise.
    pub smoke: bool,
}

/// One (workload, seeding, rank count, driver) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct DriverCell {
    pub workload: String,
    pub seeding: String,
    pub algorithm: String,
    pub n_procs: usize,
    pub n_seeds: usize,
    pub completed: bool,
    pub terminated: u64,
    pub total_steps: u64,
    /// Virtual seconds.
    pub wall: f64,
    pub io_time: f64,
    pub comm_time: f64,
    pub idle_time: f64,
    /// Mean fraction of the wall each rank spent integrating.
    pub participation: f64,
    /// Fraction of total rank-time spent communicating.
    pub comm_overhead_share: f64,
    /// Streamlines that re-entered some rank's working set.
    pub pingpong_streamlines: u64,
    /// Load-report / steal-protocol messages and bytes.
    pub balance_msgs: u64,
    pub balance_bytes: u64,
    /// All messages (hand-offs included), for the overhead denominator.
    pub msgs: u64,
    pub bytes_sent: u64,
}

/// One rank-chaos measurement: a driver surviving a seeded fail-stop
/// death schedule on the thermal/sparse problem.
#[derive(Debug, Clone, Serialize)]
pub struct RankChaosCell {
    pub algorithm: String,
    pub n_procs: usize,
    pub n_seeds: usize,
    pub completed: bool,
    /// Deaths the schedule actually applied.
    pub rank_deaths: usize,
    /// Streamlines terminated `RankLost` (work that died with its rank).
    pub rank_lost: u64,
    /// Streamlines re-queued onto survivors by the recovery protocols.
    pub reassigned: u64,
    /// Virtual seconds from a kill to its first suspicion.
    pub detection_latency_mean: f64,
    pub detection_latency_max: f64,
    /// Virtual seconds.
    pub wall: f64,
    /// Exact accounting held: completed + unavailable + rank-lost covers
    /// every seed exactly once.
    pub conserved: bool,
}

/// One open-loop measurement: a driver integrating a Poisson seed stream
/// (half at start, the rest in exponential-gap epochs) with the frontier
/// termination protocol, on the thermal/sparse problem.
#[derive(Debug, Clone, Serialize)]
pub struct OpenLoopCell {
    pub algorithm: String,
    pub n_procs: usize,
    /// Seeds across the whole arrival schedule (base epoch included).
    pub ingested: u64,
    /// Epochs in the schedule (base epoch included).
    pub n_epochs: u32,
    /// `true` when a seeded fail-stop death schedule ran underneath.
    pub chaos: bool,
    pub completed: bool,
    /// Streamlines integrated to a normal termination.
    pub completed_streamlines: u64,
    /// Streamlines cut short by unavailable blocks.
    pub unavailable: u64,
    /// Streamlines lost with a dead rank.
    pub rank_lost: u64,
    /// The exact conservation gate:
    /// `completed + unavailable + rank_lost == ingested`.
    pub conserved: bool,
    /// Epochs the folded frontier confirmed fully retired.
    pub frontier_epochs: u32,
    /// Mean/max virtual seconds from an epoch's arrival to its
    /// frontier-confirmed completion.
    pub ingest_lag_mean: f64,
    pub ingest_lag_max: f64,
    /// Virtual seconds.
    pub wall: f64,
    /// Mean fraction of the wall each rank spent integrating.
    pub participation: f64,
    /// The same driver and rank count on the identical seed set delivered
    /// closed (everything at t = 0) — the baseline the paper assumes.
    pub closed_participation: f64,
    /// `participation - closed_participation`: what streaming the seeds in
    /// buys (or costs) in rank utilization.
    pub participation_uplift: f64,
}

/// Everything one harness run measured.
#[derive(Debug, Clone, Serialize)]
pub struct DriversReport {
    pub schema: String,
    pub smoke: bool,
    pub proc_counts: Vec<usize>,
    pub cells: Vec<DriverCell>,
    /// Every completed driver in every cell group agreed on terminated
    /// streamlines and total integration steps.
    pub all_drivers_agree: bool,
    /// One cell per driver under a seeded rank-death schedule.
    pub rank_chaos: Vec<RankChaosCell>,
    /// Every rank-chaos cell kept the work-conservation invariant.
    pub rank_chaos_conserved: bool,
    /// Open-loop Poisson-arrival cells: every driver at every rank count,
    /// plus one chaos overlay per driver at the smallest rank count.
    pub open_loop: Vec<OpenLoopCell>,
    /// Every open-loop cell passed the exact conservation gate.
    pub open_loop_conserved: bool,
}

impl DriversReport {
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut group = String::new();
        for c in &self.cells {
            let head = format!("{}/{} @ {} ranks", c.workload, c.seeding, c.n_procs);
            if head != group {
                out.push_str(&format!("{head} ({} seeds)\n", c.n_seeds));
                group = head;
            }
            out.push_str(&format!(
                "  {:<16} wall {:>9.3}s  part {:>5.3}  comm-share {:>5.3}  \
                 pingpong {:>5}  balance {:>7} msgs  {}\n",
                c.algorithm,
                c.wall,
                c.participation,
                c.comm_overhead_share,
                c.pingpong_streamlines,
                c.balance_msgs,
                if c.completed { "ok" } else { "INCOMPLETE" },
            ));
        }
        if !self.rank_chaos.is_empty() {
            out.push_str("rank-chaos (thermal/sparse):\n");
            for c in &self.rank_chaos {
                out.push_str(&format!(
                    "  {:<16} deaths {:>2}  lost {:>3}  reassigned {:>3}  detect {:>7.4}s  {}\n",
                    c.algorithm,
                    c.rank_deaths,
                    c.rank_lost,
                    c.reassigned,
                    c.detection_latency_mean,
                    if c.conserved { "conserved" } else { "NOT CONSERVED" },
                ));
            }
        }
        if !self.open_loop.is_empty() {
            out.push_str("open-loop (thermal/sparse, Poisson arrivals):\n");
            for c in &self.open_loop {
                out.push_str(&format!(
                    "  {:<16} @ {:>3} ranks{}  part {:>5.3} (closed {:>5.3}, uplift {:>+6.3})  \
                     lag mean {:>7.4}s  {}\n",
                    c.algorithm,
                    c.n_procs,
                    if c.chaos { " +chaos" } else { "       " },
                    c.participation,
                    c.closed_participation,
                    c.participation_uplift,
                    c.ingest_lag_mean,
                    if c.conserved { "conserved" } else { "NOT CONSERVED" },
                ));
            }
        }
        out.push_str(&format!("all drivers agree: {}", self.all_drivers_agree));
        out
    }
}

/// Run the harness: the full driver × workload × seeding × ranks matrix.
pub fn run_drivers(cfg: &DriversConfig) -> DriversReport {
    let (scale, proc_counts) = if cfg.smoke {
        (SweepScale::Quick, vec![4, 8])
    } else {
        (SweepScale::Full, vec![64, 128, 256, 512])
    };
    let mut cells = Vec::new();
    let mut all_drivers_agree = true;
    for workload in Workload::ALL {
        for seeding in [Seeding::Sparse, Seeding::Dense] {
            let dataset = dataset_for(workload, scale);
            let n_seeds =
                if cfg.smoke { 48 } else { (dataset.paper_seed_count(seeding) / 8).max(64) };
            let seeds = dataset.seeds_with_count(seeding, n_seeds);
            // The sampled field data is identical across drivers; each run
            // still *charges* its own I/O.
            let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
            for &p in &proc_counts {
                eprintln!(
                    "[bench-drivers] {}/{} @ {p} ranks ...",
                    workload.label(),
                    seeding.label()
                );
                let group_start = cells.len();
                for algorithm in Algorithm::ALL {
                    let run_cfg = case_config(workload, seeding, algorithm, p);
                    let report =
                        run_simulated_with_store(&dataset, &seeds, &run_cfg, Arc::clone(&store));
                    cells.push(DriverCell {
                        workload: workload.label().to_string(),
                        seeding: seeding.label().to_string(),
                        algorithm: algorithm.label().to_string(),
                        n_procs: p,
                        n_seeds,
                        completed: report.outcome.completed(),
                        terminated: report.terminated,
                        total_steps: report.total_steps,
                        wall: report.wall,
                        io_time: report.io_time,
                        comm_time: report.comm_time,
                        idle_time: report.idle_time,
                        participation: report.participation(),
                        comm_overhead_share: report.comm_overhead_share(),
                        pingpong_streamlines: report.pingpong_streamlines,
                        balance_msgs: report.balance_msgs,
                        balance_bytes: report.balance_bytes,
                        msgs: report.msgs,
                        bytes_sent: report.bytes_sent,
                    });
                }
                let done: Vec<&DriverCell> =
                    cells[group_start..].iter().filter(|c| c.completed).collect();
                if let Some(first) = done.first() {
                    if !done.iter().all(|c| {
                        c.terminated == first.terminated && c.total_steps == first.total_steps
                    }) {
                        all_drivers_agree = false;
                    }
                }
            }
        }
    }
    // Rank-chaos cells: the same thermal/sparse problem with a seeded
    // fail-stop death schedule, one cell per driver at the smallest rank
    // count. Gated on exact accounting, not on timing: every seed must come
    // back as completed, unavailable, or lost-with-its-rank.
    let mut rank_chaos = Vec::new();
    let mut rank_chaos_conserved = true;
    {
        let workload = Workload::Thermal;
        let seeding = Seeding::Sparse;
        let dataset = dataset_for(workload, scale);
        let n_seeds = if cfg.smoke { 48 } else { (dataset.paper_seed_count(seeding) / 8).max(64) };
        let seeds = dataset.seeds_with_count(seeding, n_seeds);
        let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
        let p = proc_counts[0];
        // Kills land early in the run so every schedule actually fires;
        // the detector knobs stay at their defaults.
        let mut chaos = RankChaos::seeded(0xBE9);
        chaos.kill_prob = 0.25;
        chaos.window = (0.0, 5e-3);
        if chaos.plan(p).is_empty() {
            // The seeded draw spared every rank; pin one death so the cell
            // always exercises detection and recovery.
            chaos.kill = Some((p - 1, 1e-3));
        }
        eprintln!("[bench-drivers] rank-chaos thermal/sparse @ {p} ranks ...");
        for algorithm in Algorithm::ALL {
            let mut run_cfg = case_config(workload, seeding, algorithm, p);
            run_cfg.rank_chaos = Some(chaos);
            let report = run_simulated_with_store(&dataset, &seeds, &run_cfg, Arc::clone(&store));
            let conserved = report.terminated == n_seeds as u64;
            rank_chaos_conserved &= conserved;
            rank_chaos.push(RankChaosCell {
                algorithm: algorithm.label().to_string(),
                n_procs: p,
                n_seeds,
                completed: report.outcome.completed(),
                rank_deaths: report.rank_deaths.len(),
                rank_lost: report.rank_lost_streamlines,
                reassigned: report.reassigned_streamlines,
                detection_latency_mean: report.detection_latency_mean,
                detection_latency_max: report.detection_latency_max,
                wall: report.wall,
                conserved,
            });
        }
    }
    // Open-loop cells: the thermal/sparse problem again, but with the seeds
    // streamed in as a deterministic Poisson arrival schedule (half at
    // start, the rest in exponential-gap epochs) under the frontier
    // termination protocol. Each cell is gated on the exact conservation
    // invariant and reports its participation uplift against the matching
    // closed-loop cell from the matrix above. One chaos overlay per driver
    // at the smallest rank count shows the invariant surviving rank deaths.
    let mut open_loop = Vec::new();
    let mut open_loop_conserved = true;
    {
        let workload = Workload::Thermal;
        let seeding = Seeding::Sparse;
        let dataset = dataset_for(workload, scale);
        let n_seeds = if cfg.smoke { 48 } else { (dataset.paper_seed_count(seeding) / 8).max(64) };
        let seeds = dataset.seeds_with_count(seeding, n_seeds);
        let n_epochs = if cfg.smoke { 3 } else { 6 };
        let source = poisson_source(&seeds, n_epochs, 2.0e-4, 0x9E2_0A51);
        let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
        let chaos_p = proc_counts[0];
        for &p in &proc_counts {
            eprintln!("[bench-drivers] open-loop thermal/sparse @ {p} ranks ...");
            for algorithm in Algorithm::ALL {
                for chaos in [false, true] {
                    if chaos && p != chaos_p {
                        continue;
                    }
                    let mut run_cfg = case_config(workload, seeding, algorithm, p);
                    run_cfg.detector = DetectorKind::Frontier;
                    if chaos {
                        run_cfg.rank_chaos = Some(RankChaos::one_kill(p - 1, 3e-4));
                    }
                    let (report, _) = run_simulated_open_detailed_with_store(
                        &dataset,
                        &source,
                        &run_cfg,
                        Arc::clone(&store),
                    );
                    let ingested = source.total_seeds() as u64;
                    let unavailable = report.unavailable_terminations;
                    let rank_lost = report.rank_lost_streamlines;
                    let completed_streamlines =
                        report.terminated.saturating_sub(unavailable + rank_lost);
                    let conserved = completed_streamlines + unavailable + rank_lost == ingested
                        && report.terminated == ingested;
                    open_loop_conserved &= conserved;
                    let closed_participation = cells
                        .iter()
                        .find(|c| {
                            c.workload == workload.label()
                                && c.seeding == seeding.label()
                                && c.algorithm == algorithm.label()
                                && c.n_procs == p
                        })
                        .map(|c| c.participation)
                        .unwrap_or(f64::NAN);
                    let participation = report.participation();
                    open_loop.push(OpenLoopCell {
                        algorithm: algorithm.label().to_string(),
                        n_procs: p,
                        ingested,
                        n_epochs: report.ingest_epochs,
                        chaos,
                        completed: report.outcome.completed(),
                        completed_streamlines,
                        unavailable,
                        rank_lost,
                        conserved,
                        frontier_epochs: report.ingest_frontier_epochs,
                        ingest_lag_mean: report.ingest_lag_mean,
                        ingest_lag_max: report.ingest_lag_max,
                        wall: report.wall,
                        participation,
                        closed_participation,
                        participation_uplift: participation - closed_participation,
                    });
                }
            }
        }
    }
    DriversReport {
        schema: DRIVERS_SCHEMA.to_string(),
        smoke: cfg.smoke,
        proc_counts,
        cells,
        all_drivers_agree,
        rank_chaos,
        rank_chaos_conserved,
        open_loop,
        open_loop_conserved,
    }
}

/// splitmix64 advanced in place, mapped to a unit-interval sample — the
/// same deterministic schedule on every host and run.
fn unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic Poisson arrival schedule over `seeds`: the first half
/// forms the base epoch at t = 0, the rest stream in as `n_epochs` batches
/// whose inter-arrival gaps are exponential with mean `mean_gap` virtual
/// seconds, drawn from a splitmix64 stream salted with `salt`.
fn poisson_source(seeds: &SeedSet, n_epochs: usize, mean_gap: f64, salt: u64) -> SeedSource {
    let half = seeds.points.len() / 2;
    let base = SeedSet { label: seeds.label.clone(), points: seeds.points[..half].to_vec() };
    let rest = &seeds.points[half..];
    let per = rest.len().div_ceil(n_epochs.max(1)).max(1);
    let mut state = salt;
    let mut t = 0.0;
    let arrivals = rest
        .chunks(per)
        .map(|chunk| {
            t += -mean_gap * (1.0 - unit(&mut state)).ln();
            (t, chunk.to_vec())
        })
        .collect();
    SeedSource::new(&base, arrivals).expect("gaps are positive, so arrivals are monotone")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_covers_all_drivers_and_agrees() {
        let report = run_drivers(&DriversConfig { smoke: true });
        // 3 workloads x 2 seedings x 2 rank counts x 4 drivers.
        assert_eq!(report.cells.len(), 3 * 2 * 2 * 4);
        assert!(report.all_drivers_agree, "{}", report.summary());
        for algo in Algorithm::ALL {
            assert!(
                report.cells.iter().any(|c| c.algorithm == algo.label()),
                "{algo:?} missing from the matrix"
            );
        }
        // The steal driver actually balanced: its protocol traffic is
        // nonzero somewhere in the matrix, and the shares are shares.
        let steal: Vec<_> = report.cells.iter().filter(|c| c.algorithm == "steal").collect();
        assert!(steal.iter().any(|c| c.balance_msgs > 0), "steal never balanced");
        for c in &report.cells {
            assert!((0.0..=1.0).contains(&c.participation), "{}", c.algorithm);
            assert!((0.0..=1.0).contains(&c.comm_overhead_share), "{}", c.algorithm);
        }
        // The rank-chaos cells cover every driver and keep exact accounting.
        assert_eq!(report.rank_chaos.len(), Algorithm::ALL.len());
        assert!(report.rank_chaos_conserved, "{}", report.summary());
        assert!(
            report.rank_chaos.iter().any(|c| c.rank_deaths > 0),
            "the seeded schedule never killed a rank: {}",
            report.summary()
        );
        // Open-loop cells: every driver at every rank count, plus one
        // chaos overlay per driver at the smallest rank count — all gated
        // on exact conservation.
        assert_eq!(
            report.open_loop.len(),
            report.proc_counts.len() * Algorithm::ALL.len() + Algorithm::ALL.len()
        );
        assert!(report.open_loop_conserved, "{}", report.summary());
        for c in &report.open_loop {
            assert!(c.conserved, "{} @ {} ranks leaked work", c.algorithm, c.n_procs);
            assert!(c.n_epochs > 1, "schedule must actually stream");
            if !c.chaos {
                assert_eq!(c.frontier_epochs, c.n_epochs, "frontier confirmed every epoch");
            }
            assert!(c.ingest_lag_mean >= 0.0 && c.ingest_lag_mean.is_finite());
            assert!((0.0..=1.0).contains(&c.participation), "{}", c.algorithm);
            assert!(c.participation_uplift.is_finite(), "closed baseline cell missing");
        }
        assert!(
            report.open_loop.iter().any(|c| c.chaos && c.rank_lost + c.completed_streamlines > 0),
            "chaos overlay cells must still account for every seed"
        );
        // The report is what `bench-drivers --json` writes; it must serialize.
        serde_json::to_string(&report).expect("report serializes");
    }
}
