//! A closed-loop load generator for the `streamline-serve` query service.
//!
//! Each simulated client owns one loop: submit a request, block on its
//! ticket, submit the next — so offered load tracks service capacity
//! (closed-loop), and the interesting knobs are the client count and the
//! seeds per request. [`SubmitError::Overloaded`] rejections are counted
//! and retried after a short backoff, which exercises admission control
//! under pressure without open-loop queue explosion.
//!
//! Seed points are drawn deterministically from the dataset's seeding
//! machinery (one large pool, sliced round-robin per request), so two runs
//! with the same config integrate exactly the same streamlines.

use crate::experiments::{dataset_for, limits_for, SweepScale, Workload};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamline_field::dataset::Seeding;
use streamline_iosim::MemoryStore;
use streamline_serve::{Request, Service, ServiceConfig, ServiceMetrics, SubmitError};

/// Shape of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    pub workload: Workload,
    pub scale: SweepScale,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client drives to completion.
    pub requests_per_client: usize,
    /// Seeds per request.
    pub seeds_per_request: usize,
    /// Optional per-request deadline.
    pub deadline: Option<Duration>,
    pub service: ServiceConfig,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            workload: Workload::Astro,
            scale: SweepScale::Quick,
            clients: 8,
            requests_per_client: 16,
            seeds_per_request: 8,
            deadline: None,
            service: ServiceConfig::default(),
        }
    }
}

/// What the generator observed, alongside the service's own metrics.
#[derive(Debug, Clone, Serialize)]
pub struct LoadGenReport {
    pub clients: usize,
    /// Requests driven to a response.
    pub completed: u64,
    /// `Overloaded` rejections observed (each is retried).
    pub rejections: u64,
    /// Responses that came back `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Streamlines received across all responses.
    pub streamlines: u64,
    pub wall_secs: f64,
    /// The service's final snapshot (taken at drain).
    pub metrics: ServiceMetrics,
}

/// Run the closed loop to completion and return the combined report.
///
/// Total requests driven = `clients * requests_per_client`; every one is
/// retried past `Overloaded` until it completes, so the report always
/// accounts for the full request count.
pub fn run_load(cfg: &LoadGenConfig) -> LoadGenReport {
    assert!(
        cfg.seeds_per_request <= cfg.service.queue_capacity,
        "a request of {} seeds can never be admitted to a {}-seed queue; the retry loop would \
         spin forever",
        cfg.seeds_per_request,
        cfg.service.queue_capacity
    );
    let dataset = dataset_for(cfg.workload, cfg.scale);
    let limits = limits_for(cfg.workload, Seeding::Sparse);
    let store = Arc::new(MemoryStore::build(&dataset));
    let service = Arc::new(Service::start(dataset.decomp, store, cfg.service.clone()));

    // One deterministic pool, sliced per (client, iteration).
    let pool = dataset.seeds_with_count(Seeding::Dense, cfg.clients * cfg.seeds_per_request).points;

    let rejections = Arc::new(AtomicU64::new(0));
    let deadline_exceeded = Arc::new(AtomicU64::new(0));
    let streamlines = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let service = Arc::clone(&service);
            let rejections = Arc::clone(&rejections);
            let deadline_exceeded = Arc::clone(&deadline_exceeded);
            let streamlines = Arc::clone(&streamlines);
            let seeds: Vec<_> = pool
                .iter()
                .copied()
                .skip(c * cfg.seeds_per_request)
                .take(cfg.seeds_per_request)
                .collect();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut completed = 0u64;
                for _ in 0..cfg.requests_per_client {
                    loop {
                        let mut req = Request::new(seeds.clone()).with_limits(limits);
                        if let Some(d) = cfg.deadline {
                            req = req.with_deadline(Instant::now() + d);
                        }
                        match service.submit(req) {
                            Ok(ticket) => {
                                let resp = ticket.wait();
                                completed += 1;
                                streamlines
                                    .fetch_add(resp.streamlines.len() as u64, Ordering::Relaxed);
                                if matches!(
                                    resp.outcome,
                                    streamline_serve::Outcome::DeadlineExceeded { .. }
                                ) {
                                    deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                }
                                break;
                            }
                            Err(SubmitError::Overloaded { .. }) => {
                                rejections.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("load generator: unexpected submit error: {e}"),
                        }
                    }
                }
                completed
            })
        })
        .collect();

    let completed: u64 = handles.into_iter().map(|h| h.join().expect("client thread")).sum();
    let wall_secs = started.elapsed().as_secs_f64();
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| unreachable!("all clients joined"));
    let metrics = service.shutdown();

    LoadGenReport {
        clients: cfg.clients,
        completed,
        rejections: rejections.load(Ordering::Relaxed),
        deadline_exceeded: deadline_exceeded.load(Ordering::Relaxed),
        streamlines: streamlines.load(Ordering::Relaxed),
        wall_secs,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_drives_all_requests() {
        let cfg = LoadGenConfig {
            clients: 4,
            requests_per_client: 3,
            seeds_per_request: 4,
            ..LoadGenConfig::default()
        };
        let report = run_load(&cfg);
        assert_eq!(report.completed, 12);
        assert_eq!(report.metrics.completed, 12);
        assert_eq!(report.streamlines, 4 * 3 * 4);
        assert_eq!(report.metrics.queue_depth, 0);
        assert!(report.metrics.latency_p50_ms > 0.0);
        assert!(report.metrics.latency_p99_ms >= report.metrics.latency_p50_ms);
    }

    #[test]
    fn tight_queue_provokes_rejections_but_still_finishes() {
        let cfg = LoadGenConfig {
            clients: 8,
            requests_per_client: 4,
            seeds_per_request: 8,
            service: ServiceConfig {
                queue_capacity: 8, // one request's worth: clients must collide
                workers: 2,
                ..ServiceConfig::default()
            },
            ..LoadGenConfig::default()
        };
        let report = run_load(&cfg);
        assert_eq!(report.completed, 32);
        assert!(report.rejections > 0, "eight clients on a one-request queue must collide");
        assert_eq!(report.metrics.rejected, report.rejections);
    }
}
