//! A closed-loop load generator for the `streamline-serve` query service.
//!
//! Each simulated client owns one loop: submit a request, block on its
//! ticket, submit the next — so offered load tracks service capacity
//! (closed-loop), and the interesting knobs are the client count and the
//! seeds per request. [`SubmitError::Overloaded`] rejections are counted
//! and retried after a short backoff, which exercises admission control
//! under pressure without open-loop queue explosion.
//!
//! Seed points are drawn deterministically from the dataset's seeding
//! machinery (one large pool, sliced round-robin per request), so two runs
//! with the same config integrate exactly the same streamlines.

use crate::experiments::{dataset_for, limits_for, SweepScale, Workload};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamline_field::dataset::Seeding;
use streamline_integrate::{Streamline, StreamlineStatus, Termination};
use streamline_iosim::{BlockStore, ChaosParams, FaultPlan, FaultStore, MemoryStore};
use streamline_obs::TraceFile;
use streamline_serve::{Outcome, Request, Service, ServiceConfig, ServiceMetrics, SubmitError};

/// Shape of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    pub workload: Workload,
    pub scale: SweepScale,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client drives to completion.
    pub requests_per_client: usize,
    /// Seeds per request.
    pub seeds_per_request: usize,
    /// Optional per-request deadline.
    pub deadline: Option<Duration>,
    pub service: ServiceConfig,
    /// Inject store faults from a seeded plan and verify degraded-mode
    /// behavior (see [`ChaosConfig`]).
    pub chaos: Option<ChaosConfig>,
    /// Capture the service's Prometheus text export in the report.
    pub emit_prometheus: bool,
    /// Warm-start manifest path. If the file exists, its residency is
    /// prefetched into the shared cache before clients start; on drain the
    /// final residency is persisted back to the same path — so consecutive
    /// runs hand the working set forward.
    pub warm_start: Option<std::path::PathBuf>,
}

/// Chaos mode: wrap the store in a seeded
/// [`FaultStore`](streamline_iosim::FaultStore) and assert the resilience
/// contract while the closed loop runs — every ticket answered (no
/// livelock), and every streamline *not* terminated `BlockUnavailable`
/// bit-identical to a fault-free reference pass. Faults may deny results;
/// they may never corrupt them.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for [`FaultPlan::random`]; same seed, same faults.
    pub seed: u64,
    /// Fault mix. [`ChaosParams::transient_only`] keeps every outcome
    /// `Completed` (the retry budget absorbs all faults).
    pub params: ChaosParams,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig { seed: 0x5EED, params: ChaosParams::default() }
    }
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            workload: Workload::Astro,
            scale: SweepScale::Quick,
            clients: 8,
            requests_per_client: 16,
            seeds_per_request: 8,
            deadline: None,
            service: ServiceConfig::default(),
            chaos: None,
            emit_prometheus: false,
            warm_start: None,
        }
    }
}

/// What the generator observed, alongside the service's own metrics.
#[derive(Debug, Clone, Serialize)]
pub struct LoadGenReport {
    pub clients: usize,
    /// Requests driven to a response.
    pub completed: u64,
    /// `Overloaded` rejections observed (each is retried).
    pub rejections: u64,
    /// Responses that came back `DeadlineExceeded`.
    pub deadline_exceeded: u64,
    /// Streamlines received across all responses.
    pub streamlines: u64,
    /// Responses that came back `Partial` (chaos mode; 0 otherwise).
    pub partial: u64,
    /// Streamlines terminated `BlockUnavailable` across all responses.
    pub unavailable_streamlines: u64,
    /// Faults the store injected (chaos mode; 0 otherwise).
    pub faults_injected: u64,
    /// Blocks the fault plan made permanently unavailable.
    pub unavailable_blocks: usize,
    pub wall_secs: f64,
    /// The service's final snapshot (taken at drain).
    pub metrics: ServiceMetrics,
    /// Wall-clock phase timeline, present when
    /// `service.trace_bucket` was set (`serve-bench --trace`).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceFile>,
    /// Prometheus text export, present when `emit_prometheus` was set.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub prometheus: Option<String>,
    /// Blocks prefetched from the warm-start manifest (0 when the feature
    /// is off or the manifest did not exist yet).
    pub warm_start_blocks: u64,
}

/// Run the closed loop to completion and return the combined report.
///
/// Total requests driven = `clients * requests_per_client`; every one is
/// retried past `Overloaded` until it completes, so the report always
/// accounts for the full request count.
pub fn run_load(cfg: &LoadGenConfig) -> LoadGenReport {
    assert!(
        cfg.seeds_per_request <= cfg.service.queue_capacity,
        "a request of {} seeds can never be admitted to a {}-seed queue; the retry loop would \
         spin forever",
        cfg.seeds_per_request,
        cfg.service.queue_capacity
    );
    let dataset = dataset_for(cfg.workload, cfg.scale);
    let limits = limits_for(cfg.workload, Seeding::Sparse);
    let base: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));

    // One deterministic pool, sliced per (client, iteration).
    let pool = dataset.seeds_with_count(Seeding::Dense, cfg.clients * cfg.seeds_per_request).points;
    let client_seeds = |c: usize| -> Vec<_> {
        pool.iter().copied().skip(c * cfg.seeds_per_request).take(cfg.seeds_per_request).collect()
    };

    // Chaos mode: wrap the store in a seeded fault layer and compute a
    // fault-free reference answer per client slice, so every chaos
    // response can be checked for bit-identity of its untouched
    // streamlines.
    let (store, fault_store, references) = match &cfg.chaos {
        Some(chaos) => {
            let plan = FaultPlan::random(chaos.seed, dataset.decomp.num_blocks(), &chaos.params)
                .expect("chaos params validated at config time");
            let ref_cfg = ServiceConfig { trace_bucket: None, ..cfg.service.clone() };
            let reference = Service::start(dataset.decomp, Arc::clone(&base), ref_cfg);
            let refs: Vec<Arc<Vec<Streamline>>> = (0..cfg.clients)
                .map(|c| {
                    let resp = reference
                        .submit(Request::new(client_seeds(c)).with_limits(limits))
                        .expect("reference pass is admitted")
                        .wait()
                        .expect("service answers");
                    assert_eq!(resp.outcome, Outcome::Completed, "reference pass must be clean");
                    Arc::new(resp.streamlines)
                })
                .collect();
            reference.shutdown();
            let fs = Arc::new(FaultStore::new(base, plan));
            (Arc::clone(&fs) as Arc<dyn BlockStore>, Some(fs), Some(refs))
        }
        None => (base, None, None),
    };
    let service = Arc::new(Service::start(dataset.decomp, store, cfg.service.clone()));

    // Warm-start: prefetch the previous run's residency before any client
    // submits. A missing manifest is a cold start, not an error; a corrupt
    // one is refused loudly (typed) rather than half-applied.
    let mut warm_start_blocks = 0u64;
    if let Some(path) = &cfg.warm_start {
        if path.exists() {
            let manifest = streamline_serve::WarmStartManifest::read(path)
                .unwrap_or_else(|e| panic!("warm-start manifest {}: {e}", path.display()));
            warm_start_blocks = service.warm_start(&manifest) as u64;
        }
    }

    let rejections = Arc::new(AtomicU64::new(0));
    let deadline_exceeded = Arc::new(AtomicU64::new(0));
    let streamlines = Arc::new(AtomicU64::new(0));
    let partial = Arc::new(AtomicU64::new(0));
    let unavailable_streamlines = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let service = Arc::clone(&service);
            let rejections = Arc::clone(&rejections);
            let deadline_exceeded = Arc::clone(&deadline_exceeded);
            let streamlines = Arc::clone(&streamlines);
            let partial = Arc::clone(&partial);
            let unavailable_streamlines = Arc::clone(&unavailable_streamlines);
            let reference = references.as_ref().map(|r| Arc::clone(&r[c]));
            let seeds = client_seeds(c);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut completed = 0u64;
                for _ in 0..cfg.requests_per_client {
                    loop {
                        let mut req = Request::new(seeds.clone()).with_limits(limits);
                        if let Some(d) = cfg.deadline {
                            req = req.with_deadline(Instant::now() + d);
                        }
                        match service.submit(req) {
                            Ok(ticket) => {
                                let resp = ticket.wait().expect("service answers");
                                completed += 1;
                                streamlines
                                    .fetch_add(resp.streamlines.len() as u64, Ordering::Relaxed);
                                match resp.outcome {
                                    Outcome::DeadlineExceeded { .. } => {
                                        deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Outcome::Partial { unavailable } => {
                                        partial.fetch_add(1, Ordering::Relaxed);
                                        unavailable_streamlines
                                            .fetch_add(unavailable as u64, Ordering::Relaxed);
                                    }
                                    Outcome::Completed => {}
                                }
                                if let Some(want) = &reference {
                                    if !matches!(resp.outcome, Outcome::DeadlineExceeded { .. }) {
                                        assert_untouched_bit_identical(&resp.streamlines, want);
                                    }
                                }
                                break;
                            }
                            Err(SubmitError::Overloaded { .. }) => {
                                rejections.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("load generator: unexpected submit error: {e}"),
                        }
                    }
                }
                completed
            })
        })
        .collect();

    let completed: u64 = handles.into_iter().map(|h| h.join().expect("client thread")).sum();
    let wall_secs = started.elapsed().as_secs_f64();
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| unreachable!("all clients joined"));
    // Trace and scrape before shutdown consumes the service.
    let trace = service.timeline();
    let prometheus = cfg.emit_prometheus.then(|| service.dump_metrics());
    // Persist the final residency for the next instance's warm start.
    if let Some(path) = &cfg.warm_start {
        let manifest = service.residency_manifest();
        manifest
            .write(path, dataset.name, service.metrics().cache_capacity)
            .unwrap_or_else(|e| panic!("writing warm-start manifest {}: {e}", path.display()));
    }
    let metrics = service.shutdown();

    // Chaos contract: a fault plan can degrade answers, never lose them.
    // Reaching this point already proves no livelock (every client's
    // closed loop ran dry); the counts make it explicit.
    if cfg.chaos.is_some() {
        let expected = (cfg.clients * cfg.requests_per_client) as u64;
        assert_eq!(completed, expected, "chaos run lost tickets");
        assert_eq!(metrics.completed, expected, "service answered fewer requests than driven");
    }
    let (faults_injected, unavailable_blocks) = match &fault_store {
        Some(fs) => (fs.counters().faults_injected(), fs.plan().unavailable_blocks().len()),
        None => (0, 0),
    };

    LoadGenReport {
        clients: cfg.clients,
        completed,
        rejections: rejections.load(Ordering::Relaxed),
        deadline_exceeded: deadline_exceeded.load(Ordering::Relaxed),
        streamlines: streamlines.load(Ordering::Relaxed),
        partial: partial.load(Ordering::Relaxed),
        unavailable_streamlines: unavailable_streamlines.load(Ordering::Relaxed),
        faults_injected,
        unavailable_blocks,
        wall_secs,
        metrics,
        trace,
        prometheus,
        warm_start_blocks,
    }
}

/// Chaos-mode invariant: every streamline the faults did *not* touch must
/// match the fault-free reference bit for bit.
fn assert_untouched_bit_identical(got: &[Streamline], want: &[Streamline]) {
    assert_eq!(got.len(), want.len(), "chaos response lost streamlines");
    for (a, b) in got.iter().zip(want) {
        assert_eq!(a.id, b.id);
        if a.status == StreamlineStatus::Terminated(Termination::BlockUnavailable) {
            continue;
        }
        assert_eq!(a.status, b.status, "streamline {:?} changed termination under faults", a.id);
        assert_eq!(
            a.state.position, b.state.position,
            "streamline {:?} endpoint diverged under faults",
            a.id
        );
        assert_eq!(a.geometry, b.geometry, "streamline {:?} geometry diverged under faults", a.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_drives_all_requests() {
        let cfg = LoadGenConfig {
            clients: 4,
            requests_per_client: 3,
            seeds_per_request: 4,
            ..LoadGenConfig::default()
        };
        let report = run_load(&cfg);
        assert_eq!(report.completed, 12);
        assert_eq!(report.metrics.completed, 12);
        assert_eq!(report.streamlines, 4 * 3 * 4);
        assert_eq!(report.metrics.queue_depth, 0);
        assert!(report.metrics.latency_p50_ms > 0.0);
        assert!(report.metrics.latency_p99_ms >= report.metrics.latency_p50_ms);
    }

    #[test]
    fn trace_and_prometheus_capture_ride_along() {
        let cfg = LoadGenConfig {
            clients: 2,
            requests_per_client: 2,
            seeds_per_request: 4,
            service: ServiceConfig {
                trace_bucket: Some(Duration::from_millis(1)),
                ..ServiceConfig::default()
            },
            emit_prometheus: true,
            ..LoadGenConfig::default()
        };
        let report = run_load(&cfg);
        let trace = report.trace.as_ref().expect("trace_bucket was set");
        trace.validate().expect("trace invariants hold");
        assert_eq!(trace.clock, "wall");
        let prom = report.prometheus.as_ref().expect("emit_prometheus was set");
        let parsed = streamline_obs::prom::parse_text(prom).expect("valid Prometheus text");
        assert_eq!(
            parsed["streamline_serve_requests_completed_total"],
            report.metrics.completed as f64
        );
        // The whole report (trace included) must survive a JSON roundtrip
        // — serve-bench writes exactly this.
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("\"trace\""));
        assert!(json.contains("\"prometheus\""));
    }

    #[test]
    fn transient_only_chaos_is_invisible_to_clients() {
        // Transient faults below the retry budget: every outcome must be
        // Completed and (checked inside run_load against the reference
        // pass) bit-identical to the fault-free answers.
        let cfg = LoadGenConfig {
            clients: 4,
            requests_per_client: 2,
            seeds_per_request: 4,
            chaos: Some(ChaosConfig { seed: 7, params: ChaosParams::transient_only() }),
            ..LoadGenConfig::default()
        };
        let report = run_load(&cfg);
        assert_eq!(report.completed, 8);
        assert_eq!(report.partial, 0, "transient-only chaos must not degrade outcomes");
        assert_eq!(report.unavailable_streamlines, 0);
        assert_eq!(report.unavailable_blocks, 0);
        assert!(report.faults_injected > 0, "the plan must actually fire");
        assert!(report.metrics.load_retries > 0);
        assert_eq!(report.metrics.load_failures, 0);
    }

    #[test]
    fn permanent_chaos_degrades_but_answers_everything() {
        // Every block faulted, half of them permanently: tickets must all
        // resolve (run_load asserts it), untouched streamlines must match
        // the reference (asserted per response), and degraded seeds come
        // back typed instead of vanishing.
        let params = ChaosParams {
            fault_prob: 1.0,
            transient_prob: 0.5,
            corrupt_prob: 0.5,
            max_clears: 2,
            latency_prob: 0.0,
            max_latency_us: 0,
        };
        let cfg = LoadGenConfig {
            clients: 4,
            requests_per_client: 2,
            seeds_per_request: 4,
            chaos: Some(ChaosConfig { seed: 11, params }),
            ..LoadGenConfig::default()
        };
        let report = run_load(&cfg);
        assert_eq!(report.completed, 8);
        assert!(report.faults_injected > 0);
        assert!(report.unavailable_blocks > 0, "seed 11 must plan permanent faults");
        // Every driven streamline came back — degraded ones included.
        assert_eq!(report.streamlines, 8 * 4);
        assert_eq!(
            report.unavailable_streamlines, report.metrics.streamlines_unavailable,
            "client-side and service-side degraded counts must agree"
        );
    }

    #[test]
    fn warm_start_manifest_hands_the_working_set_forward() {
        let dir = std::env::temp_dir().join(format!("slwarm-loadgen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.ckpt");
        let cfg = LoadGenConfig {
            clients: 2,
            requests_per_client: 2,
            seeds_per_request: 4,
            warm_start: Some(path.clone()),
            ..LoadGenConfig::default()
        };
        let first = run_load(&cfg);
        assert_eq!(first.warm_start_blocks, 0, "no manifest yet: first run starts cold");
        assert!(path.exists(), "drain must persist the manifest");

        let second = run_load(&cfg);
        assert_eq!(
            second.warm_start_blocks, first.metrics.cache_resident as u64,
            "second run prefetches exactly what the first left resident"
        );
        if first.metrics.cache.purged == 0 {
            assert_eq!(
                second.metrics.cache.loaded, second.warm_start_blocks,
                "with the whole working set handed forward, no request-path load remains"
            );
        }
        assert!(second.metrics.cache.hits > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tight_queue_provokes_rejections_but_still_finishes() {
        let cfg = LoadGenConfig {
            clients: 8,
            requests_per_client: 4,
            seeds_per_request: 8,
            service: ServiceConfig {
                queue_capacity: 8, // one request's worth: clients must collide
                workers: 2,
                ..ServiceConfig::default()
            },
            ..LoadGenConfig::default()
        };
        let report = run_load(&cfg);
        assert_eq!(report.completed, 32);
        assert!(report.rejections > 0, "eight clients on a one-request queue must collide");
        assert_eq!(report.metrics.rejected, report.rejections);
    }
}
