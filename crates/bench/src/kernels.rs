//! Kernel perf-regression harness (`bench kernels` / the `kernels` binary).
//!
//! Times the integration hot path at three granularities — one trilinear
//! sample, one DOPRI5 step, one whole streamline — each as a fast-path vs
//! reference-path pair, plus the batch-vs-scalar advection curve, a
//! dense-seeding seed-to-termination throughput pair, and an end-to-end
//! astro run through the `streamline-serve` load generator. Results are
//! machine-readable ([`KernelsReport`] serializes to `BENCH_7.json`) so
//! future PRs have a trajectory to compare against.
//!
//! The fast path must be *exact*: the whole-streamline benchmark refuses to
//! report a speedup unless the fast trajectory is bit-identical to the
//! reference one, vertex by vertex.

use crate::experiments::{dataset_for, SweepScale, Workload};
use crate::loadgen::{run_load, LoadGenConfig};
use serde::Serialize;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use streamline_core::advance::{
    advance_batch_in_block, advance_batch_in_block_rounds, advance_in_block, StreamlineBatch,
};
use streamline_core::BlockExit;
use streamline_field::dataset::{Dataset, Seeding};
use streamline_field::interp::trilinear;
use streamline_field::{Block, BlockId, CellSampler};
use streamline_integrate::tracer::{advect, StepLimits};
use streamline_integrate::{
    Dopri5, Dopri5NoReuse, FsalCache, Stepper, Streamline, StreamlineId, Termination, Tolerances,
};
use streamline_math::{rng, Vec3};

/// Shape of one harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct KernelsConfig {
    /// Seconds-scale iteration counts for CI; full counts otherwise.
    pub smoke: bool,
}

/// Fast-vs-reference timing of one kernel granularity.
#[derive(Debug, Clone, Serialize)]
pub struct KernelPair {
    /// Reference path, nanoseconds per operation.
    pub reference_ns: f64,
    /// Fast path, nanoseconds per operation.
    pub fast_ns: f64,
    /// `reference_ns / fast_ns` (> 1.0 means the fast path won).
    pub speedup: f64,
}

impl KernelPair {
    fn new(reference_ns: f64, fast_ns: f64) -> Self {
        KernelPair { reference_ns, fast_ns, speedup: reference_ns / fast_ns }
    }
}

/// One point of the batch-vs-scalar advection curve: the same streamline
/// group advanced through one block by the scalar fast path
/// (`advance_in_block` per streamline) and by the batched kernel at this
/// width, nanoseconds per streamline each.
#[derive(Debug, Clone, Serialize)]
pub struct BatchCurvePoint {
    /// Lanes per `advance_batch_in_block` call.
    pub batch: usize,
    /// Scalar fast path, ns per streamline (same baseline for every width).
    pub scalar_ns: f64,
    /// Batched kernel at this width, ns per streamline.
    pub batch_ns: f64,
    /// `scalar_ns / batch_ns` (> 1.0 means batching won).
    pub speedup: f64,
    /// Every lane's trajectory matched the scalar one bit-for-bit.
    pub bit_identical: bool,
}

/// Dense-seeding end-to-end throughput: every streamline advanced from its
/// seed to termination through the multi-block chase, scalar fast path vs
/// the batched kernel. This is the tentpole number — whole streamlines per
/// second, block crossings included.
#[derive(Debug, Clone, Serialize)]
pub struct BatchEndToEnd {
    /// Dense seeds advanced to termination.
    pub seeds: usize,
    /// Lanes per batched advance call.
    pub batch: usize,
    /// Scalar fast path, completed streamlines per second.
    pub scalar_streamlines_per_sec: f64,
    /// Batched kernel, completed streamlines per second.
    pub batched_streamlines_per_sec: f64,
    /// `batched_streamlines_per_sec / scalar_streamlines_per_sec`.
    pub speedup: f64,
    /// Every streamline matched the scalar chase bit-for-bit.
    pub bit_identical: bool,
}

/// End-to-end serve-path numbers from the closed-loop load generator.
#[derive(Debug, Clone, Serialize)]
pub struct EndToEnd {
    pub streamlines: u64,
    pub wall_secs: f64,
    pub streamlines_per_sec: f64,
    pub sampler_hit_rate: f64,
}

/// Everything one harness run measured.
#[derive(Debug, Clone, Serialize)]
pub struct KernelsReport {
    /// True when run with reduced iteration counts (CI smoke mode).
    pub smoke: bool,
    /// One trilinear sample: plain `trilinear` vs [`CellSampler`] over a
    /// walk-like point sequence (consecutive points land in the same cell,
    /// as RK stages do).
    pub sampling: KernelPair,
    /// Cell-sampler stencil hit rate over the sampling benchmark's walk.
    pub sampling_hit_rate: f64,
    /// One DOPRI5 step against real block data: fresh 7-stage steps vs an
    /// FSAL chain reusing k7 as the next step's k1.
    pub dopri5_step: KernelPair,
    /// One whole streamline through a block: `Dopri5NoReuse` + plain
    /// `block.sample` vs `Dopri5` (FSAL) + [`CellSampler`].
    pub whole_streamline: KernelPair,
    /// Accepted steps per whole-streamline iteration (identical on both
    /// paths by construction).
    pub streamline_steps: u64,
    /// The fast trajectory matched the reference bit-for-bit.
    pub bit_identical: bool,
    /// Batched advection at widths 1/4/16/64 vs the scalar fast path, on
    /// the circulating tokamak block.
    pub batch_curve: Vec<BatchCurvePoint>,
    /// Dense-seeding seed-to-termination throughput, scalar vs batched.
    pub batch_end_to_end: BatchEndToEnd,
    pub end_to_end: EndToEnd,
}

impl KernelsReport {
    /// Human-readable summary, one line per benchmark.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "sampling:         {:>8.1} ns -> {:>8.1} ns  ({:.2}x, hit rate {:.3})\n\
             dopri5 step:      {:>8.1} ns -> {:>8.1} ns  ({:.2}x)\n\
             whole streamline: {:>8.0} ns -> {:>8.0} ns  ({:.2}x, {} steps, bit-identical: {})",
            self.sampling.reference_ns,
            self.sampling.fast_ns,
            self.sampling.speedup,
            self.sampling_hit_rate,
            self.dopri5_step.reference_ns,
            self.dopri5_step.fast_ns,
            self.dopri5_step.speedup,
            self.whole_streamline.reference_ns,
            self.whole_streamline.fast_ns,
            self.whole_streamline.speedup,
            self.streamline_steps,
            self.bit_identical,
        );
        for p in &self.batch_curve {
            out.push_str(&format!(
                "\nbatch {:>3}:        {:>8.0} ns -> {:>8.0} ns  ({:.2}x, bit-identical: {})",
                p.batch, p.scalar_ns, p.batch_ns, p.speedup, p.bit_identical
            ));
        }
        let b = &self.batch_end_to_end;
        out.push_str(&format!(
            "\nbatch end-to-end: {:>8.0} /s -> {:>8.0} /s  ({:.2}x, {} dense seeds, batch {}, \
             bit-identical: {})\nend-to-end:       {:.1} streamlines/s over {:.2}s (sampler hit \
             rate {:.3})",
            b.scalar_streamlines_per_sec,
            b.batched_streamlines_per_sec,
            b.speedup,
            b.seeds,
            b.batch,
            b.bit_identical,
            self.end_to_end.streamlines_per_sec,
            self.end_to_end.wall_secs,
            self.end_to_end.sampler_hit_rate,
        ));
        out
    }
}

/// Median-of-repeats wall time per call of `body`, in nanoseconds. One
/// warm-up repeat is discarded; the median resists scheduler noise better
/// than the mean without needing criterion's machinery.
fn time_ns(repeats: usize, calls_per_repeat: u64, mut body: impl FnMut()) -> f64 {
    black_box(&mut body)();
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..calls_per_repeat {
                black_box(&mut body)();
            }
            t0.elapsed().as_nanos() as f64 / calls_per_repeat as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The exact field-evaluation sequence of real advections through `block`,
/// recorded by instrumenting the sampling closure — so the sampling
/// microbenchmark replays the true hot-path access pattern (RK stages
/// clustered inside a cell, adaptive steps crossing cell boundaries)
/// instead of a synthetic walk.
fn stage_points(block: &Block, n: usize) -> Vec<Vec3> {
    let limits = StepLimits { h0: 1e-2, h_max: 0.05, max_steps: 100_000, ..Default::default() };
    let bounds = block.bounds;
    let mut r = rng::stream(7, "bench-kernels-seeds");
    let radius = bounds.size().x.min(bounds.size().y).min(bounds.size().z) * 0.25;
    let mut points = Vec::with_capacity(n);
    while points.len() < n {
        let seed = rng::point_in_ball(&mut r, bounds.center(), radius);
        let mut sl = Streamline::new_lean(StreamlineId(0), seed, limits.h0);
        let mut sample = |p: Vec3| {
            let v = block.sample(p);
            if v.is_some() {
                points.push(p);
            }
            v
        };
        advect(&mut sl, &mut sample, &move |p| bounds.contains(p), &limits, &Dopri5NoReuse);
    }
    points.truncate(n);
    points
}

fn bench_sampling(block: &Block, cfg: &KernelsConfig) -> (KernelPair, f64) {
    let points = stage_points(block, if cfg.smoke { 512 } else { 4096 });
    let repeats = if cfg.smoke { 5 } else { 30 };
    let reference_ns = time_ns(repeats, 1, || {
        let mut acc = Vec3::ZERO;
        for &p in &points {
            acc += trilinear(block, black_box(p)).unwrap();
        }
        black_box(acc);
    }) / points.len() as f64;

    let fast_ns = time_ns(repeats, 1, || {
        let mut sampler = CellSampler::new(block);
        let mut acc = Vec3::ZERO;
        for &p in &points {
            acc += sampler.sample(black_box(p)).unwrap();
        }
        black_box(acc);
    }) / points.len() as f64;

    // Hit rate of the walk, measured once outside the timing loop.
    let mut sampler = CellSampler::new(block);
    for &p in &points {
        sampler.sample(p);
    }
    (KernelPair::new(reference_ns, fast_ns), sampler.stats().hit_rate())
}

fn bench_dopri5_step(block: &Block, cfg: &KernelsConfig) -> KernelPair {
    let seed = block.bounds.center();
    let tol = Tolerances::default();
    let h = 1e-2;
    let chain = if cfg.smoke { 256u64 } else { 2048 };
    let repeats = if cfg.smoke { 5 } else { 30 };

    let reference_ns = time_ns(repeats, 1, || {
        let mut f = |p: Vec3| block.sample(p);
        let mut y = seed;
        for _ in 0..chain {
            match Dopri5.step(&mut f, y, h, &tol) {
                Ok(r) => y = r.y,
                Err(_) => y = seed,
            }
        }
        black_box(y);
    }) / chain as f64;

    let fast_ns = time_ns(repeats, 1, || {
        let mut sampler = CellSampler::new(block);
        let mut f = |p: Vec3| sampler.sample(p);
        let mut fsal = FsalCache::new();
        let mut y = seed;
        for _ in 0..chain {
            match Dopri5.step_fsal(&mut f, y, h, &tol, &mut fsal) {
                Ok(r) => y = r.y,
                Err(_) => {
                    y = seed;
                    fsal.clear();
                }
            }
        }
        black_box(y);
    }) / chain as f64;

    KernelPair::new(reference_ns, fast_ns)
}

/// Advect one geometry-recording streamline from `seed` through `block`.
fn run_streamline(block: &Block, seed: Vec3, limits: &StepLimits, fast: bool) -> Streamline {
    let mut sl = Streamline::new(StreamlineId(0), seed, limits.h0);
    let bounds = block.bounds;
    let region = move |p: Vec3| bounds.contains(p);
    if fast {
        let mut sampler = CellSampler::new(block);
        let mut sample = |p: Vec3| sampler.sample(p);
        advect(&mut sl, &mut sample, &region, limits, &Dopri5);
    } else {
        let mut sample = |p: Vec3| block.sample(p);
        advect(&mut sl, &mut sample, &region, limits, &Dopri5NoReuse);
    }
    sl
}

fn bits(v: Vec3) -> [u64; 3] {
    [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()]
}

fn bench_whole_streamline(block: &Block, cfg: &KernelsConfig) -> (KernelPair, u64, bool) {
    let limits = StepLimits {
        h0: 1e-2,
        h_max: 0.05,
        max_steps: if cfg.smoke { 2_000 } else { 20_000 },
        ..Default::default()
    };
    let seed = block.bounds.center();

    // Exactness first: the speedup is meaningless if the trajectories
    // diverge. Compare every vertex bit-for-bit.
    let reference = run_streamline(block, seed, &limits, false);
    let fast = run_streamline(block, seed, &limits, true);
    let bit_identical = reference.geometry.len() == fast.geometry.len()
        && reference.geometry.iter().zip(&fast.geometry).all(|(&a, &b)| bits(a) == bits(b));
    assert!(
        bit_identical,
        "fast-path streamline diverged from the reference ({} vs {} vertices)",
        fast.geometry.len(),
        reference.geometry.len()
    );
    let steps = reference.state.steps;

    let repeats = if cfg.smoke { 5 } else { 20 };
    let reference_ns = time_ns(repeats, 1, || {
        black_box(run_streamline(block, black_box(seed), &limits, false).state.steps);
    });
    let fast_ns = time_ns(repeats, 1, || {
        black_box(run_streamline(block, black_box(seed), &limits, true).state.steps);
    });
    (KernelPair::new(reference_ns, fast_ns), steps, bit_identical)
}

/// `n` seeds scattered in a ball around the block center, like real dense
/// seeding concentrates streamlines in a region of interest.
fn ball_seeds(block: &Block, n: usize) -> Vec<Vec3> {
    let bounds = block.bounds;
    let radius = bounds.size().x.min(bounds.size().y).min(bounds.size().z) * 0.25;
    let mut r = rng::stream(11, "bench-kernels-batch-seeds");
    (0..n).map(|_| rng::point_in_ball(&mut r, bounds.center(), radius)).collect()
}

/// Every seed advanced through `block` by the scalar fast path, one
/// `advance_in_block` per streamline.
fn advance_group_scalar(
    seeds: &[Vec3],
    block: &Block,
    decomp: &streamline_field::decomp::BlockDecomposition,
    limits: &StepLimits,
) -> Vec<Streamline> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let mut sl = Streamline::new(StreamlineId(i as u32), s, limits.h0);
            advance_in_block(&mut sl, block, decomp, limits, &Dopri5);
            sl
        })
        .collect()
}

/// Every seed advanced through `block` by the batched kernel at `width`
/// lanes per call.
fn advance_group_batched(
    seeds: &[Vec3],
    block: &Block,
    decomp: &streamline_field::decomp::BlockDecomposition,
    limits: &StepLimits,
    width: usize,
    scratch: &mut StreamlineBatch,
) -> Vec<Streamline> {
    let mut sls: Vec<Streamline> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| Streamline::new(StreamlineId(i as u32), s, limits.h0))
        .collect();
    for chunk in sls.chunks_mut(width) {
        advance_batch_in_block(chunk, block, decomp, limits, scratch);
    }
    sls
}

/// The batch-vs-scalar curve on one block: the same seed group advanced by
/// `advance_in_block` per streamline and by `advance_batch_in_block` at
/// widths 1/4/16/64, bit-identity checked per width before timing.
fn bench_batch_curve(
    block: &Block,
    decomp: &streamline_field::decomp::BlockDecomposition,
    cfg: &KernelsConfig,
) -> Vec<BatchCurvePoint> {
    let n = 64;
    let seeds = ball_seeds(block, n);
    let limits = StepLimits {
        h0: 1e-2,
        h_max: 0.05,
        max_steps: if cfg.smoke { 500 } else { 5_000 },
        ..Default::default()
    };
    let repeats = if cfg.smoke { 5 } else { 15 };
    let reference = advance_group_scalar(&seeds, block, decomp, &limits);
    let scalar_ns = time_ns(repeats, 1, || {
        black_box(advance_group_scalar(&seeds, block, decomp, &limits));
    }) / n as f64;
    [1usize, 4, 16, 64]
        .iter()
        .map(|&width| {
            let mut scratch = StreamlineBatch::new();
            let got = advance_group_batched(&seeds, block, decomp, &limits, width, &mut scratch);
            let bit_identical = got == reference;
            let batch_ns = time_ns(repeats, 1, || {
                black_box(advance_group_batched(
                    &seeds,
                    block,
                    decomp,
                    &limits,
                    width,
                    &mut scratch,
                ));
            }) / n as f64;
            BatchCurvePoint {
                batch: width,
                scalar_ns,
                batch_ns,
                speedup: scalar_ns / batch_ns,
                bit_identical,
            }
        })
        .collect()
}

fn build_all_blocks(ds: &Dataset) -> BTreeMap<BlockId, Block> {
    (0..ds.decomp.num_blocks() as u32).map(|i| (BlockId(i), ds.build_block(BlockId(i)))).collect()
}

/// Chase every seed from its block to termination with the scalar fast
/// path, hopping blocks on `MovedTo` exactly like the drivers do.
fn chase_scalar(
    ds: &Dataset,
    blocks: &BTreeMap<BlockId, Block>,
    seeds: &[Vec3],
    limits: &StepLimits,
) -> Vec<Streamline> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let mut sl = Streamline::new(StreamlineId(i as u32), s, limits.h0);
            let Some(mut cur) = ds.decomp.locate(s) else {
                sl.terminate(Termination::ExitedDomain);
                return sl;
            };
            loop {
                let (exit, _) =
                    advance_in_block(&mut sl, &blocks[&cur], &ds.decomp, limits, &Dopri5);
                match exit {
                    BlockExit::MovedTo(next) => cur = next,
                    BlockExit::Done(_) => break,
                }
            }
            sl
        })
        .collect()
}

/// The batched counterpart of [`chase_scalar`]: a block-keyed worklist
/// drained `width` lanes at a time, movers re-queued under their next
/// block. The fullest group is drained first — streamlines are independent,
/// so the order cannot change any result, but draining big groups lets the
/// small ones accumulate movers and keeps batch occupancy high (the same
/// policy the drivers' batch scheduling uses).
/// Accepted steps per lane before a batched call returns its survivors for
/// re-bundling (see the comment at the call site).
const ROUND_CAP: u64 = 32;

fn chase_batched(
    ds: &Dataset,
    blocks: &BTreeMap<BlockId, Block>,
    seeds: &[Vec3],
    limits: &StepLimits,
    width: usize,
    scratch: &mut StreamlineBatch,
) -> Vec<Streamline> {
    let mut done: Vec<Option<Streamline>> = (0..seeds.len()).map(|_| None).collect();
    let mut worklist: BTreeMap<BlockId, Vec<Streamline>> = BTreeMap::new();
    for (i, &s) in seeds.iter().enumerate() {
        let mut sl = Streamline::new(StreamlineId(i as u32), s, limits.h0);
        match ds.decomp.locate(s) {
            Some(b) => worklist.entry(b).or_default().push(sl),
            None => {
                sl.terminate(Termination::ExitedDomain);
                done[i] = Some(sl);
            }
        }
    }
    // Below a few live lanes the batched kernel's fixed per-row cost loses
    // to the scalar fast path (the batch-1 curve point runs at ~0.7x), so
    // ragged tail groups drain through the scalar kernel instead. Either
    // kernel produces the same bits per streamline, so the policy only
    // moves time, never results.
    let scalar_cutoff = width.min(4);
    while let Some(&id) = worklist.iter().max_by_key(|(id, g)| (g.len(), *id)).map(|(id, _)| id) {
        let group = worklist.get_mut(&id).unwrap();
        if group.len() < scalar_cutoff {
            let tail = std::mem::take(group);
            worklist.remove(&id);
            for mut sl in tail {
                let (exit, _) =
                    advance_in_block(&mut sl, &blocks[&id], &ds.decomp, limits, &Dopri5);
                match exit {
                    BlockExit::MovedTo(next) => worklist.entry(next).or_default().push(sl),
                    BlockExit::Done(_) => {
                        let i = sl.id.0 as usize;
                        done[i] = Some(sl);
                    }
                }
            }
            continue;
        }
        let take = width.min(group.len());
        let mut chunk = group.split_off(group.len() - take);
        if group.is_empty() {
            worklist.remove(&id);
        }
        // Round-capped advance: a batch's occupancy decays as its quickest
        // lanes leave the block, so rather than draining it to the last
        // straggler, stop after ROUND_CAP accepted steps per lane and merge
        // the survivors back into the worklist, where they re-bundle into
        // full batches with newly arrived movers. The cap lands on accepted
        // step boundaries, so per-streamline results are unchanged.
        let (exits, _) = advance_batch_in_block_rounds(
            &mut chunk,
            &blocks[&id],
            &ds.decomp,
            limits,
            scratch,
            ROUND_CAP,
        );
        for (sl, exit) in chunk.into_iter().zip(exits) {
            match exit {
                Some(BlockExit::MovedTo(next)) => worklist.entry(next).or_default().push(sl),
                Some(BlockExit::Done(_)) => {
                    let i = sl.id.0 as usize;
                    done[i] = Some(sl);
                }
                None => worklist.entry(id).or_default().push(sl),
            }
        }
    }
    done.into_iter().map(|sl| sl.expect("every seed resolves")).collect()
}

/// Dense-seeding seed-to-termination throughput on the tokamak field at
/// fine integration resolution (the compute-bound dense regime of §5.3):
/// scalar chase vs batched chase at 64 lanes, bit-identity checked first.
fn bench_batch_end_to_end(cfg: &KernelsConfig) -> BatchEndToEnd {
    let ds = dataset_for(Workload::Fusion, SweepScale::Quick);
    let blocks = build_all_blocks(&ds);
    let n = if cfg.smoke { 96 } else { 512 };
    let seeds = ds.seeds_with_count(Seeding::Dense, n).points;
    let limits = StepLimits {
        h0: 1e-2,
        h_max: 0.01,
        max_steps: if cfg.smoke { 300 } else { 2_000 },
        ..Default::default()
    };
    let batch = 64;
    let reference = chase_scalar(&ds, &blocks, &seeds, &limits);
    let mut scratch = StreamlineBatch::new();
    let got = chase_batched(&ds, &blocks, &seeds, &limits, batch, &mut scratch);
    let bit_identical = got == reference;

    // The two chases are timed in interleaved pairs (scalar, batched,
    // scalar, batched, ...) so a slow scheduler episode inflates both sides
    // of a pair instead of skewing whichever path it happened to land on;
    // each side reports its median.
    let repeats = if cfg.smoke { 3 } else { 9 };
    let mut scalar_samples = Vec::with_capacity(repeats);
    let mut batch_samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t = Instant::now();
        black_box(chase_scalar(&ds, &blocks, &seeds, &limits));
        scalar_samples.push(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        black_box(chase_batched(&ds, &blocks, &seeds, &limits, batch, &mut scratch));
        batch_samples.push(t.elapsed().as_nanos() as f64);
    }
    let median = |mut v: Vec<f64>| {
        v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    let scalar_ns = median(scalar_samples);
    let batch_ns = median(batch_samples);
    let scalar_streamlines_per_sec = seeds.len() as f64 * 1e9 / scalar_ns;
    let batched_streamlines_per_sec = seeds.len() as f64 * 1e9 / batch_ns;
    BatchEndToEnd {
        seeds: seeds.len(),
        batch,
        scalar_streamlines_per_sec,
        batched_streamlines_per_sec,
        speedup: batched_streamlines_per_sec / scalar_streamlines_per_sec,
        bit_identical,
    }
}

fn bench_end_to_end(cfg: &KernelsConfig) -> EndToEnd {
    let load = LoadGenConfig {
        workload: Workload::Astro,
        scale: SweepScale::Quick,
        clients: 4,
        requests_per_client: if cfg.smoke { 4 } else { 16 },
        seeds_per_request: 8,
        ..LoadGenConfig::default()
    };
    let report = run_load(&load);
    EndToEnd {
        streamlines: report.streamlines,
        wall_secs: report.wall_secs,
        streamlines_per_sec: report.metrics.streamlines_per_sec,
        sampler_hit_rate: report.metrics.sampler_hit_rate,
    }
}

/// Run every kernel benchmark and the end-to-end timing.
///
/// Panics if the fast-path streamline is not bit-identical to the
/// reference — a perf harness must never certify a wrong answer as fast.
pub fn run_kernels(cfg: &KernelsConfig) -> KernelsReport {
    let astro = dataset_for(Workload::Astro, SweepScale::Quick);
    let block = astro.build_block(BlockId(13));
    // The tokamak field circulates inside a block for thousands of steps,
    // so it gives the whole-streamline pair a long trajectory to time; the
    // astro block's streamlines exit after a few dozen.
    let fusion = dataset_for(Workload::Fusion, SweepScale::Quick);
    let fusion_block = fusion.build_block(BlockId(21));
    // The batch curve wants the dense-seeding regime the kernel targets:
    // a core block whose field circulates in place, so grouped streamlines
    // stay resident for many steps with a hot stencil cache.
    let core_block = fusion.build_block(BlockId(35));

    eprintln!("[kernels] sampling ...");
    let (sampling, sampling_hit_rate) = bench_sampling(&block, cfg);
    eprintln!("[kernels] dopri5 step ...");
    let dopri5_step = bench_dopri5_step(&block, cfg);
    eprintln!("[kernels] whole streamline ...");
    let (whole_streamline, streamline_steps, bit_identical) =
        bench_whole_streamline(&fusion_block, cfg);
    eprintln!("[kernels] batch curve ...");
    let batch_curve = bench_batch_curve(&core_block, &fusion.decomp, cfg);
    eprintln!("[kernels] batch end-to-end ...");
    let batch_end_to_end = bench_batch_end_to_end(cfg);
    eprintln!("[kernels] end-to-end loadgen ...");
    let end_to_end = bench_end_to_end(cfg);

    let bit_identical = bit_identical
        && batch_curve.iter().all(|p| p.bit_identical)
        && batch_end_to_end.bit_identical;
    KernelsReport {
        smoke: cfg.smoke,
        sampling,
        sampling_hit_rate,
        dopri5_step,
        whole_streamline,
        streamline_steps,
        bit_identical,
        batch_curve,
        batch_end_to_end,
        end_to_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_sane_report() {
        let report = run_kernels(&KernelsConfig { smoke: true });
        assert!(report.smoke);
        assert!(report.bit_identical);
        assert!(report.streamline_steps > 0);
        assert!(report.sampling.reference_ns > 0.0 && report.sampling.fast_ns > 0.0);
        assert!(report.dopri5_step.reference_ns > 0.0 && report.dopri5_step.fast_ns > 0.0);
        // RK stages cluster: the walk must overwhelmingly hit the cached cell.
        assert!(
            report.sampling_hit_rate > 0.5,
            "walk hit rate {} suspiciously low",
            report.sampling_hit_rate
        );
        assert!(report.end_to_end.streamlines > 0);
        assert!(report.end_to_end.sampler_hit_rate > 0.0);
        // The batch curve covers the four widths, bit-identical at each.
        assert_eq!(
            report.batch_curve.iter().map(|p| p.batch).collect::<Vec<_>>(),
            vec![1, 4, 16, 64]
        );
        for p in &report.batch_curve {
            assert!(p.bit_identical, "batch {} diverged from the scalar path", p.batch);
            assert!(p.scalar_ns > 0.0 && p.batch_ns > 0.0);
        }
        let b = &report.batch_end_to_end;
        assert!(b.bit_identical, "batched chase diverged from the scalar chase");
        assert!(b.seeds > 0 && b.batch >= 16);
        assert!(b.scalar_streamlines_per_sec > 0.0 && b.batched_streamlines_per_sec > 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("whole_streamline"));
        assert!(json.contains("batch_curve"));
        assert!(json.contains("batch_end_to_end"));
    }

    #[test]
    fn stage_points_are_sampleable_and_exactly_n() {
        let ds = dataset_for(Workload::Astro, SweepScale::Quick);
        let block = ds.build_block(BlockId(13));
        let points = stage_points(&block, 256);
        assert_eq!(points.len(), 256);
        for p in points {
            assert!(block.sample(p).is_some());
        }
    }
}
