//! Kernel perf-regression harness (`bench kernels` / the `kernels` binary).
//!
//! Times the integration hot path at three granularities — one trilinear
//! sample, one DOPRI5 step, one whole streamline — each as a fast-path vs
//! reference-path pair, plus an end-to-end astro run through the
//! `streamline-serve` load generator. Results are machine-readable
//! ([`KernelsReport`] serializes to `BENCH_2.json`) so future PRs have a
//! trajectory to compare against.
//!
//! The fast path must be *exact*: the whole-streamline benchmark refuses to
//! report a speedup unless the fast trajectory is bit-identical to the
//! reference one, vertex by vertex.

use crate::experiments::{dataset_for, SweepScale, Workload};
use crate::loadgen::{run_load, LoadGenConfig};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use streamline_field::interp::trilinear;
use streamline_field::{Block, BlockId, CellSampler};
use streamline_integrate::tracer::{advect, StepLimits};
use streamline_integrate::{
    Dopri5, Dopri5NoReuse, FsalCache, Stepper, Streamline, StreamlineId, Tolerances,
};
use streamline_math::{rng, Vec3};

/// Shape of one harness invocation.
#[derive(Debug, Clone, Copy)]
pub struct KernelsConfig {
    /// Seconds-scale iteration counts for CI; full counts otherwise.
    pub smoke: bool,
}

/// Fast-vs-reference timing of one kernel granularity.
#[derive(Debug, Clone, Serialize)]
pub struct KernelPair {
    /// Reference path, nanoseconds per operation.
    pub reference_ns: f64,
    /// Fast path, nanoseconds per operation.
    pub fast_ns: f64,
    /// `reference_ns / fast_ns` (> 1.0 means the fast path won).
    pub speedup: f64,
}

impl KernelPair {
    fn new(reference_ns: f64, fast_ns: f64) -> Self {
        KernelPair { reference_ns, fast_ns, speedup: reference_ns / fast_ns }
    }
}

/// End-to-end serve-path numbers from the closed-loop load generator.
#[derive(Debug, Clone, Serialize)]
pub struct EndToEnd {
    pub streamlines: u64,
    pub wall_secs: f64,
    pub streamlines_per_sec: f64,
    pub sampler_hit_rate: f64,
}

/// Everything one harness run measured.
#[derive(Debug, Clone, Serialize)]
pub struct KernelsReport {
    /// True when run with reduced iteration counts (CI smoke mode).
    pub smoke: bool,
    /// One trilinear sample: plain `trilinear` vs [`CellSampler`] over a
    /// walk-like point sequence (consecutive points land in the same cell,
    /// as RK stages do).
    pub sampling: KernelPair,
    /// Cell-sampler stencil hit rate over the sampling benchmark's walk.
    pub sampling_hit_rate: f64,
    /// One DOPRI5 step against real block data: fresh 7-stage steps vs an
    /// FSAL chain reusing k7 as the next step's k1.
    pub dopri5_step: KernelPair,
    /// One whole streamline through a block: `Dopri5NoReuse` + plain
    /// `block.sample` vs `Dopri5` (FSAL) + [`CellSampler`].
    pub whole_streamline: KernelPair,
    /// Accepted steps per whole-streamline iteration (identical on both
    /// paths by construction).
    pub streamline_steps: u64,
    /// The fast trajectory matched the reference bit-for-bit.
    pub bit_identical: bool,
    pub end_to_end: EndToEnd,
}

impl KernelsReport {
    /// Human-readable summary, one line per benchmark.
    pub fn summary(&self) -> String {
        format!(
            "sampling:         {:>8.1} ns -> {:>8.1} ns  ({:.2}x, hit rate {:.3})\n\
             dopri5 step:      {:>8.1} ns -> {:>8.1} ns  ({:.2}x)\n\
             whole streamline: {:>8.0} ns -> {:>8.0} ns  ({:.2}x, {} steps, bit-identical: {})\n\
             end-to-end:       {:.1} streamlines/s over {:.2}s (sampler hit rate {:.3})",
            self.sampling.reference_ns,
            self.sampling.fast_ns,
            self.sampling.speedup,
            self.sampling_hit_rate,
            self.dopri5_step.reference_ns,
            self.dopri5_step.fast_ns,
            self.dopri5_step.speedup,
            self.whole_streamline.reference_ns,
            self.whole_streamline.fast_ns,
            self.whole_streamline.speedup,
            self.streamline_steps,
            self.bit_identical,
            self.end_to_end.streamlines_per_sec,
            self.end_to_end.wall_secs,
            self.end_to_end.sampler_hit_rate,
        )
    }
}

/// Median-of-repeats wall time per call of `body`, in nanoseconds. One
/// warm-up repeat is discarded; the median resists scheduler noise better
/// than the mean without needing criterion's machinery.
fn time_ns(repeats: usize, calls_per_repeat: u64, mut body: impl FnMut()) -> f64 {
    black_box(&mut body)();
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..calls_per_repeat {
                black_box(&mut body)();
            }
            t0.elapsed().as_nanos() as f64 / calls_per_repeat as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The exact field-evaluation sequence of real advections through `block`,
/// recorded by instrumenting the sampling closure — so the sampling
/// microbenchmark replays the true hot-path access pattern (RK stages
/// clustered inside a cell, adaptive steps crossing cell boundaries)
/// instead of a synthetic walk.
fn stage_points(block: &Block, n: usize) -> Vec<Vec3> {
    let limits = StepLimits { h0: 1e-2, h_max: 0.05, max_steps: 100_000, ..Default::default() };
    let bounds = block.bounds;
    let mut r = rng::stream(7, "bench-kernels-seeds");
    let radius = bounds.size().x.min(bounds.size().y).min(bounds.size().z) * 0.25;
    let mut points = Vec::with_capacity(n);
    while points.len() < n {
        let seed = rng::point_in_ball(&mut r, bounds.center(), radius);
        let mut sl = Streamline::new_lean(StreamlineId(0), seed, limits.h0);
        let mut sample = |p: Vec3| {
            let v = block.sample(p);
            if v.is_some() {
                points.push(p);
            }
            v
        };
        advect(&mut sl, &mut sample, &move |p| bounds.contains(p), &limits, &Dopri5NoReuse);
    }
    points.truncate(n);
    points
}

fn bench_sampling(block: &Block, cfg: &KernelsConfig) -> (KernelPair, f64) {
    let points = stage_points(block, if cfg.smoke { 512 } else { 4096 });
    let repeats = if cfg.smoke { 5 } else { 30 };
    let reference_ns = time_ns(repeats, 1, || {
        let mut acc = Vec3::ZERO;
        for &p in &points {
            acc += trilinear(block, black_box(p)).unwrap();
        }
        black_box(acc);
    }) / points.len() as f64;

    let fast_ns = time_ns(repeats, 1, || {
        let mut sampler = CellSampler::new(block);
        let mut acc = Vec3::ZERO;
        for &p in &points {
            acc += sampler.sample(black_box(p)).unwrap();
        }
        black_box(acc);
    }) / points.len() as f64;

    // Hit rate of the walk, measured once outside the timing loop.
    let mut sampler = CellSampler::new(block);
    for &p in &points {
        sampler.sample(p);
    }
    (KernelPair::new(reference_ns, fast_ns), sampler.stats().hit_rate())
}

fn bench_dopri5_step(block: &Block, cfg: &KernelsConfig) -> KernelPair {
    let seed = block.bounds.center();
    let tol = Tolerances::default();
    let h = 1e-2;
    let chain = if cfg.smoke { 256u64 } else { 2048 };
    let repeats = if cfg.smoke { 5 } else { 30 };

    let reference_ns = time_ns(repeats, 1, || {
        let mut f = |p: Vec3| block.sample(p);
        let mut y = seed;
        for _ in 0..chain {
            match Dopri5.step(&mut f, y, h, &tol) {
                Ok(r) => y = r.y,
                Err(_) => y = seed,
            }
        }
        black_box(y);
    }) / chain as f64;

    let fast_ns = time_ns(repeats, 1, || {
        let mut sampler = CellSampler::new(block);
        let mut f = |p: Vec3| sampler.sample(p);
        let mut fsal = FsalCache::new();
        let mut y = seed;
        for _ in 0..chain {
            match Dopri5.step_fsal(&mut f, y, h, &tol, &mut fsal) {
                Ok(r) => y = r.y,
                Err(_) => {
                    y = seed;
                    fsal.clear();
                }
            }
        }
        black_box(y);
    }) / chain as f64;

    KernelPair::new(reference_ns, fast_ns)
}

/// Advect one geometry-recording streamline from `seed` through `block`.
fn run_streamline(block: &Block, seed: Vec3, limits: &StepLimits, fast: bool) -> Streamline {
    let mut sl = Streamline::new(StreamlineId(0), seed, limits.h0);
    let bounds = block.bounds;
    let region = move |p: Vec3| bounds.contains(p);
    if fast {
        let mut sampler = CellSampler::new(block);
        let mut sample = |p: Vec3| sampler.sample(p);
        advect(&mut sl, &mut sample, &region, limits, &Dopri5);
    } else {
        let mut sample = |p: Vec3| block.sample(p);
        advect(&mut sl, &mut sample, &region, limits, &Dopri5NoReuse);
    }
    sl
}

fn bits(v: Vec3) -> [u64; 3] {
    [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()]
}

fn bench_whole_streamline(block: &Block, cfg: &KernelsConfig) -> (KernelPair, u64, bool) {
    let limits = StepLimits {
        h0: 1e-2,
        h_max: 0.05,
        max_steps: if cfg.smoke { 2_000 } else { 20_000 },
        ..Default::default()
    };
    let seed = block.bounds.center();

    // Exactness first: the speedup is meaningless if the trajectories
    // diverge. Compare every vertex bit-for-bit.
    let reference = run_streamline(block, seed, &limits, false);
    let fast = run_streamline(block, seed, &limits, true);
    let bit_identical = reference.geometry.len() == fast.geometry.len()
        && reference.geometry.iter().zip(&fast.geometry).all(|(&a, &b)| bits(a) == bits(b));
    assert!(
        bit_identical,
        "fast-path streamline diverged from the reference ({} vs {} vertices)",
        fast.geometry.len(),
        reference.geometry.len()
    );
    let steps = reference.state.steps;

    let repeats = if cfg.smoke { 5 } else { 20 };
    let reference_ns = time_ns(repeats, 1, || {
        black_box(run_streamline(block, black_box(seed), &limits, false).state.steps);
    });
    let fast_ns = time_ns(repeats, 1, || {
        black_box(run_streamline(block, black_box(seed), &limits, true).state.steps);
    });
    (KernelPair::new(reference_ns, fast_ns), steps, bit_identical)
}

fn bench_end_to_end(cfg: &KernelsConfig) -> EndToEnd {
    let load = LoadGenConfig {
        workload: Workload::Astro,
        scale: SweepScale::Quick,
        clients: 4,
        requests_per_client: if cfg.smoke { 4 } else { 16 },
        seeds_per_request: 8,
        ..LoadGenConfig::default()
    };
    let report = run_load(&load);
    EndToEnd {
        streamlines: report.streamlines,
        wall_secs: report.wall_secs,
        streamlines_per_sec: report.metrics.streamlines_per_sec,
        sampler_hit_rate: report.metrics.sampler_hit_rate,
    }
}

/// Run every kernel benchmark and the end-to-end timing.
///
/// Panics if the fast-path streamline is not bit-identical to the
/// reference — a perf harness must never certify a wrong answer as fast.
pub fn run_kernels(cfg: &KernelsConfig) -> KernelsReport {
    let astro = dataset_for(Workload::Astro, SweepScale::Quick);
    let block = astro.build_block(BlockId(13));
    // The tokamak field circulates inside a block for thousands of steps,
    // so it gives the whole-streamline pair a long trajectory to time; the
    // astro block's streamlines exit after a few dozen.
    let fusion = dataset_for(Workload::Fusion, SweepScale::Quick);
    let fusion_block = fusion.build_block(BlockId(21));

    eprintln!("[kernels] sampling ...");
    let (sampling, sampling_hit_rate) = bench_sampling(&block, cfg);
    eprintln!("[kernels] dopri5 step ...");
    let dopri5_step = bench_dopri5_step(&block, cfg);
    eprintln!("[kernels] whole streamline ...");
    let (whole_streamline, streamline_steps, bit_identical) =
        bench_whole_streamline(&fusion_block, cfg);
    eprintln!("[kernels] end-to-end loadgen ...");
    let end_to_end = bench_end_to_end(cfg);

    KernelsReport {
        smoke: cfg.smoke,
        sampling,
        sampling_hit_rate,
        dopri5_step,
        whole_streamline,
        streamline_steps,
        bit_identical,
        end_to_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_sane_report() {
        let report = run_kernels(&KernelsConfig { smoke: true });
        assert!(report.smoke);
        assert!(report.bit_identical);
        assert!(report.streamline_steps > 0);
        assert!(report.sampling.reference_ns > 0.0 && report.sampling.fast_ns > 0.0);
        assert!(report.dopri5_step.reference_ns > 0.0 && report.dopri5_step.fast_ns > 0.0);
        // RK stages cluster: the walk must overwhelmingly hit the cached cell.
        assert!(
            report.sampling_hit_rate > 0.5,
            "walk hit rate {} suspiciously low",
            report.sampling_hit_rate
        );
        assert!(report.end_to_end.streamlines > 0);
        assert!(report.end_to_end.sampler_hit_rate > 0.0);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("whole_streamline"));
    }

    #[test]
    fn stage_points_are_sampleable_and_exactly_n() {
        let ds = dataset_for(Workload::Astro, SweepScale::Quick);
        let block = ds.build_block(BlockId(13));
        let points = stage_points(&block, 256);
        assert_eq!(points.len(), 256);
        for p in points {
            assert!(block.sample(p).is_some());
        }
    }
}
