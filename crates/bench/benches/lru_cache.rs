//! LRU block-cache microbenchmarks: hit path, miss+evict path, and a
//! realistic mixed workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng;
use std::sync::Arc;
use streamline_field::block::{Block, BlockId};
use streamline_iosim::LruCache;
use streamline_math::{rng, Aabb, Vec3};

fn tiny_block(id: u32) -> Arc<Block> {
    Arc::new(Block::zeroed(BlockId(id), Aabb::unit(), 0, [2, 2, 2], Vec3::splat(1.0)))
}

fn lru(c: &mut Criterion) {
    let blocks: Vec<_> = (0..512).map(tiny_block).collect();
    let mut g = c.benchmark_group("lru");

    g.bench_function("hit", |b| {
        let mut cache = LruCache::new(64);
        for blk in blocks.iter().take(64) {
            cache.insert(Arc::clone(blk));
        }
        b.iter(|| black_box(cache.get(BlockId(31)).is_some()))
    });

    g.bench_function("miss_insert_evict", |b| {
        let mut cache = LruCache::new(64);
        for blk in blocks.iter().take(64) {
            cache.insert(Arc::clone(blk));
        }
        let mut i = 64u32;
        b.iter(|| {
            if cache.get(BlockId(i % 512)).is_none() {
                cache.insert(Arc::clone(&blocks[(i % 512) as usize]));
            }
            i = i.wrapping_add(97); // co-prime stride: constant misses
            black_box(cache.len())
        })
    });

    g.bench_function("mixed_zipf_ish", |b| {
        let mut cache = LruCache::new(64);
        let mut r = rng::stream(5, "bench-lru");
        b.iter(|| {
            // Mostly-local accesses with occasional far jumps, like a
            // streamline working set.
            let id = if r.gen_bool(0.9) { r.gen_range(0..80u32) } else { r.gen_range(0..512u32) };
            if cache.get(BlockId(id)).is_none() {
                cache.insert(Arc::clone(&blocks[id as usize]));
            }
            black_box(cache.stats().hits)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = lru
}
criterion_main!(benches);
