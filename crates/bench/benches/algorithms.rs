//! End-to-end algorithm benchmarks at quick scale: real host time for one
//! full simulated run of each §4 strategy (the figure harness measures
//! virtual time; this measures the simulator itself).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use streamline_bench::experiments::{case_config, dataset_for, SweepScale, Workload};
use streamline_core::{run_simulated_with_store, Algorithm};
use streamline_field::dataset::Seeding;
use streamline_iosim::{BlockStore, MemoryStore};

fn algorithms(c: &mut Criterion) {
    let workload = Workload::Thermal;
    let seeding = Seeding::Sparse;
    let dataset = dataset_for(workload, SweepScale::Quick);
    let seeds = dataset.seeds_with_count(seeding, 200);
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let mut g = c.benchmark_group("full_run_quick");
    for algo in Algorithm::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(algo.label()), &algo, |b, &algo| {
            let cfg = case_config(workload, seeding, algo, 8);
            b.iter(|| {
                let r = run_simulated_with_store(&dataset, &seeds, &cfg, Arc::clone(&store));
                assert!(r.outcome.completed());
                black_box(r.wall)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = algorithms
}
criterion_main!(benches);
