//! Microbenchmarks of the ODE steppers (§2.1): cost per step and cost of a
//! full block-local advection, per scheme.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use streamline_bench::experiments::{dataset_for, SweepScale, Workload};
use streamline_field::BlockId;
use streamline_integrate::tracer::{advect, StepLimits};
use streamline_integrate::{euler::Euler, rk4::Rk4};
use streamline_integrate::{Dopri5, Stepper, Streamline, StreamlineId, Tolerances};
use streamline_math::Vec3;

fn single_step(c: &mut Criterion) {
    let mut f = |p: Vec3| Some(Vec3::new(-p.y, p.x, 0.1 * (p.x * 3.0).sin()));
    let y = Vec3::new(1.0, 0.2, -0.3);
    let tol = Tolerances::default();
    let mut g = c.benchmark_group("single_step");
    g.bench_function("euler", |b| {
        b.iter(|| Euler.step(&mut f, black_box(y), black_box(0.01), &tol).unwrap())
    });
    g.bench_function("rk4", |b| {
        b.iter(|| Rk4.step(&mut f, black_box(y), black_box(0.01), &tol).unwrap())
    });
    g.bench_function("dopri5", |b| {
        b.iter(|| Dopri5.step(&mut f, black_box(y), black_box(0.01), &tol).unwrap())
    });
    g.finish();
}

fn block_advection(c: &mut Criterion) {
    // Advect through real sampled block data (the hot path of every run).
    let ds = dataset_for(Workload::Fusion, SweepScale::Quick);
    let block = ds.build_block(BlockId(21));
    let seed = block.bounds.center();
    let limits = StepLimits { h0: 1e-2, h_max: 0.05, max_steps: 100_000, ..Default::default() };
    c.bench_function("advect_through_block", |b| {
        b.iter(|| {
            let mut sl = Streamline::new_lean(StreamlineId(0), black_box(seed), limits.h0);
            let bounds = block.bounds;
            let r = advect(
                &mut sl,
                &mut |p| block.sample(p),
                &move |p| bounds.contains(p),
                &limits,
                &Dopri5,
            );
            black_box(r.steps)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = single_step, block_advection
}
criterion_main!(benches);
