//! Pathline benchmarks: non-autonomous stepping and the two §8 I/O
//! strategies at smoke scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use streamline_field::decomp::BlockDecomposition;
use streamline_field::timedecomp::TimeBlockDecomposition;
use streamline_field::unsteady::{UnsteadyDoubleGyre, UnsteadyField};
use streamline_integrate::unsteady::dopri5_step_t;
use streamline_integrate::{StepLimits, Tolerances};
use streamline_math::{Aabb, Vec3};
use streamline_pathline::{run_on_demand, run_time_sweep, PathlineConfig, SpaceTimeStore};

fn stepping(c: &mut Criterion) {
    let g = UnsteadyDoubleGyre::standard();
    let f = |p: Vec3, t: f64| Some(g.eval(p, t));
    c.bench_function("dopri5_step_unsteady", |b| {
        b.iter(|| {
            dopri5_step_t(
                &f,
                black_box(Vec3::new(1.1, 0.4, 0.0)),
                black_box(3.7),
                0.05,
                &Tolerances::default(),
            )
            .unwrap()
        })
    });
}

fn strategies(c: &mut Criterion) {
    let field = UnsteadyDoubleGyre::standard();
    let space = BlockDecomposition::new(
        Aabb::new(Vec3::ZERO, Vec3::new(2.0, 1.0, 0.25)),
        [2, 2, 1],
        [6, 6, 4],
        1,
    );
    let decomp = TimeBlockDecomposition::new(space, 6, 0.0, field.duration);
    let store = SpaceTimeStore::new(decomp, Arc::new(field));
    let seeds: Vec<Vec3> =
        (0..32).map(|i| Vec3::new(0.1 + 1.8 * (i as f64 / 32.0), 0.5, 0.12)).collect();
    let cfg = PathlineConfig {
        limits: StepLimits { h0: 1e-2, h_max: 0.1, max_steps: 50_000, ..Default::default() },
        cache_blocks: 4,
        ..Default::default()
    };
    let mut g = c.benchmark_group("pathline_strategies");
    g.bench_function("on_demand", |b| {
        b.iter(|| black_box(run_on_demand(&store, &seeds, &cfg).reads.loads))
    });
    g.bench_function("time_sweep", |b| {
        b.iter(|| black_box(run_time_sweep(&store, &seeds, &cfg).reads.loads))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = stepping, strategies
}
criterion_main!(benches);
