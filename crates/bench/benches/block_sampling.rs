//! Block construction benchmarks: direct node sampling vs the paper's
//! face→cell→node pipeline, and the on-disk format round trip.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use streamline_bench::experiments::{dataset_for, SweepScale, Workload};
use streamline_field::sample::{sample_block_face_pipeline, sample_block_nodes};
use streamline_field::BlockId;
use streamline_iosim::format;

fn sampling(c: &mut Criterion) {
    let ds = dataset_for(Workload::Astro, SweepScale::Quick);
    let mut g = c.benchmark_group("block_sampling");
    g.bench_function("direct_nodes", |b| {
        b.iter(|| black_box(sample_block_nodes(ds.field.as_ref(), &ds.decomp, BlockId(7))))
    });
    g.bench_function("face_cell_node_pipeline", |b| {
        b.iter(|| black_box(sample_block_face_pipeline(ds.field.as_ref(), &ds.decomp, BlockId(7))))
    });
    g.finish();
}

fn disk_format(c: &mut Criterion) {
    let ds = dataset_for(Workload::Thermal, SweepScale::Quick);
    let block = ds.build_block(BlockId(3));
    let bytes = format::encode(&block);
    let mut g = c.benchmark_group("disk_format");
    g.bench_function("encode", |b| b.iter(|| black_box(format::encode(&block))));
    g.bench_function("decode", |b| b.iter(|| black_box(format::decode(&bytes).unwrap())));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = sampling, disk_format
}
criterion_main!(benches);
