//! Trilinear interpolation microbenchmark — the innermost operation of the
//! whole system (seven evaluations per Dormand–Prince step).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng;
use streamline_bench::experiments::{dataset_for, SweepScale, Workload};
use streamline_field::BlockId;
use streamline_math::rng;

fn interpolation(c: &mut Criterion) {
    let ds = dataset_for(Workload::Astro, SweepScale::Quick);
    let block = ds.build_block(BlockId(13));
    let mut r = rng::stream(3, "bench-interp");
    let points: Vec<_> = (0..1024)
        .map(|_| {
            let b = block.bounds;
            streamline_math::Vec3::new(
                r.gen_range(b.min.x..b.max.x),
                r.gen_range(b.min.y..b.max.y),
                r.gen_range(b.min.z..b.max.z),
            )
        })
        .collect();
    c.bench_function("trilinear_1024_samples", |b| {
        b.iter(|| {
            let mut acc = streamline_math::Vec3::ZERO;
            for &p in &points {
                acc += block.sample(black_box(p)).unwrap();
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = interpolation
}
criterion_main!(benches);
