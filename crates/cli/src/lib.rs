//! The `slrepro` command-line interface, as a library so the argument
//! parsing and command plumbing are unit-testable.
//!
//! ```text
//! slrepro run      --dataset thermal --seeding dense --algorithm auto --procs 64
//! slrepro classify --dataset astro --seeding sparse
//! slrepro trace    --dataset fusion --seeds 200 --out out/ --formats vtk,ppm
//! slrepro ftle     --out gyre.ppm --nx 240 --ny 120
//! slrepro info
//! ```

pub mod args;
pub mod commands;

pub use args::{parse, Cli, Command};
