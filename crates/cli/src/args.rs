//! Hand-rolled argument parsing (no external CLI dependency).

use std::collections::BTreeMap;
use streamline_core::{Algorithm, BatchParams, DetectorKind, RankChaos, StealParams};
use streamline_field::dataset::Seeding;
use streamline_iosim::ChaosParams;

/// Which dataset a command targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    Astro,
    Fusion,
    Thermal,
}

impl DatasetKind {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "astro" | "astrophysics" | "supernova" => Ok(DatasetKind::Astro),
            "fusion" | "tokamak" => Ok(DatasetKind::Fusion),
            "thermal" | "thermal-hydraulics" => Ok(DatasetKind::Thermal),
            other => Err(format!("unknown dataset '{other}' (astro|fusion|thermal)")),
        }
    }
}

/// Seed-popularity shape of the cluster's open-loop trace workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficShape {
    Zipf,
    Uniform,
}

impl TrafficShape {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "zipf" => Ok(TrafficShape::Zipf),
            "uniform" => Ok(TrafficShape::Uniform),
            other => Err(format!("unknown workload '{other}' (zipf|uniform)")),
        }
    }
}

/// Algorithm selection, including advisor-driven `auto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoChoice {
    Fixed(Algorithm),
    Auto,
}

impl AlgoChoice {
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "static" => Ok(AlgoChoice::Fixed(Algorithm::StaticAllocation)),
            "lod" | "load-on-demand" => Ok(AlgoChoice::Fixed(Algorithm::LoadOnDemand)),
            "hybrid" => Ok(AlgoChoice::Fixed(Algorithm::HybridMasterSlave)),
            "steal" | "work-stealing" => Ok(AlgoChoice::Fixed(Algorithm::WorkStealing)),
            "auto" => Ok(AlgoChoice::Auto),
            other => Err(format!("unknown algorithm '{other}' (static|lod|hybrid|steal|auto)")),
        }
    }
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Run {
        dataset: DatasetKind,
        seeding: Seeding,
        algorithm: AlgoChoice,
        procs: usize,
        seeds: Option<usize>,
        cache: usize,
        /// Tuning knobs of the work-stealing driver (`--neighbors`,
        /// `--diffusion-period`, `--steal-batch`); defaults elsewhere.
        steal: StealParams,
        /// Batch-kernel width (`--batch auto|N`); results are identical at
        /// any width, this only tunes throughput.
        batch: BatchParams,
        /// Inject store faults from a seeded plan (degraded-mode run).
        chaos: bool,
        /// Seed for the chaos fault plan.
        chaos_seed: u64,
        /// Block-fault plan knobs (`--chaos-fault-prob` and friends),
        /// validated at parse so a driver never sees an illegal probability.
        chaos_params: ChaosParams,
        /// Kill simulated ranks from a seeded schedule and run every driver
        /// in resilient mode (`--rank-chaos` plus the `--rank-*` knobs).
        rank_chaos: Option<RankChaos>,
        /// Open-loop streaming ingestion: number of arrival epochs past the
        /// start-time base set (`--ingest-epochs`; 0 = closed run).
        ingest_epochs: usize,
        /// Virtual seconds between arrival epochs (`--ingest-interval`).
        ingest_interval: f64,
        /// Seeds delivered per arrival epoch (`--ingest-batch`).
        ingest_batch: usize,
        /// Termination detector (`--detector closed-set|frontier`).
        detector: DetectorKind,
        json: Option<String>,
        /// Write a virtual-time phase timeline (idle/io/compute/comm per
        /// rank) as trace JSON to this path.
        trace: Option<String>,
        /// Bucket width of the timeline, in virtual seconds.
        trace_bucket: f64,
        /// Write the run's metric registry as Prometheus text to this path.
        metrics: Option<String>,
        /// Write periodic snapshots (`ckpt-NNNNNN.ckpt`) into this directory.
        checkpoint: Option<String>,
        /// Virtual seconds between snapshots.
        checkpoint_interval: f64,
        /// Abandon the run after writing this many snapshots — the kill half
        /// of the crash/restart smoke test.
        kill_after_checkpoints: Option<u64>,
        /// Resume a previous run from this snapshot file (or the latest
        /// `ckpt-*.ckpt` if a directory is given) instead of starting fresh.
        resume: Option<String>,
    },
    Classify {
        dataset: DatasetKind,
        seeding: Seeding,
        seeds: Option<usize>,
    },
    Trace {
        dataset: DatasetKind,
        seeds: usize,
        out: String,
        formats: Vec<String>,
    },
    Ftle {
        out: String,
        nx: usize,
        ny: usize,
        horizon: f64,
    },
    /// Closed-loop load test of the `streamline-serve` query service.
    ServeBench {
        dataset: DatasetKind,
        clients: usize,
        /// Requests driven to completion by each client.
        requests: usize,
        /// Seeds per request.
        seeds: usize,
        workers: usize,
        cache: usize,
        shards: usize,
        /// Admission-control seed queue capacity.
        queue: usize,
        /// Batch-kernel width for the worker pool (`--batch auto|N`).
        batch: BatchParams,
        deadline_ms: Option<u64>,
        /// Inject store faults from a seeded plan and assert the
        /// resilience contract (every ticket answered, untouched
        /// streamlines bit-identical to a fault-free reference).
        chaos: bool,
        /// Seed for the chaos fault plan.
        chaos_seed: u64,
        json: Option<String>,
        /// Write the workers' wall-clock phase timeline as trace JSON to
        /// this path.
        trace: Option<String>,
        /// Bucket width of the wall-clock timeline, in milliseconds.
        trace_bucket_ms: u64,
        /// Write the service's Prometheus text export to this path.
        metrics: Option<String>,
        /// Warm-start manifest: prefetched on startup if present, rewritten
        /// from the shared cache's residency on drain.
        warm_start: Option<String>,
        /// `> 1` switches to the sharded multi-replica cluster driven by an
        /// open-loop trace; `1` (default) is the plain closed-loop service.
        replicas: usize,
        /// Hot-block replication factor across ring successors.
        replication: usize,
        /// Seed-popularity shape of the open-loop trace (`--workload`).
        traffic: TrafficShape,
        /// Zipf exponent of the trace's seed popularity.
        zipf_s: f64,
        /// Diurnal rate-swing amplitude in `[0, 1)`.
        diurnal: f64,
        /// Burst-episode rate multiplier (`1.0` disables bursts).
        burst: f64,
        /// Mean offered rate of the open-loop trace, requests per second.
        qps: f64,
        /// Trace length in seconds.
        duration_s: f64,
        /// Fail-stop injection: kill replica R at trace time T
        /// (`--replica-kill R@TIME`).
        replica_kill: Option<(usize, f64)>,
    },
    /// Kernel perf-regression harness: fast-vs-reference timings of the
    /// integration hot path plus the batch-vs-scalar curve, written as the
    /// `BENCH_7.json` trajectory.
    BenchKernels {
        /// Seconds-scale iteration counts (CI smoke mode).
        smoke: bool,
        /// Where the JSON report lands (`--out`).
        out: String,
        /// Overwrite an existing report file (`--force`); refused otherwise.
        force: bool,
    },
    /// Checkpoint-overhead harness: plain vs checkpointed wall-clock on the
    /// astrophysics/sparse workload, written as the `BENCH_5.json`
    /// trajectory.
    BenchCkpt {
        /// Seconds-scale iteration counts (CI smoke mode).
        smoke: bool,
        json: Option<String>,
    },
    /// Scheduling-driver comparison harness: all four drivers on every
    /// (workload, seeding) problem at 64–512 simulated ranks, written as the
    /// `BENCH_6.json` trajectory.
    BenchDrivers {
        /// Seconds-scale iteration counts (CI smoke mode).
        smoke: bool,
        json: Option<String>,
    },
    /// Cluster-serving capacity harness: max sustainable QPS under the
    /// trace-shaped open-loop workload across replica counts, written as
    /// the `BENCH_10.json` trajectory.
    BenchCluster {
        /// Seconds-scale single-cell pass (CI smoke mode).
        smoke: bool,
        /// Where the JSON report lands (`--out`).
        out: String,
        /// Write the smoke cluster's Prometheus text export to this path
        /// (smoke mode only).
        metrics: Option<String>,
    },
    /// Validate an emitted trace JSON, Prometheus snapshot and/or checkpoint
    /// file — the CI smoke gate behind `run --trace` and `run --checkpoint`.
    ObsCheck {
        trace: Option<String>,
        metrics: Option<String>,
        /// Validate a checkpoint container (magic, section CRCs, metadata).
        ckpt: Option<String>,
    },
    Info,
    Help,
}

/// Full parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    pub command: Command,
}

fn parse_seeding(s: &str) -> Result<Seeding, String> {
    match s {
        "sparse" => Ok(Seeding::Sparse),
        "dense" => Ok(Seeding::Dense),
        other => Err(format!("unknown seeding '{other}' (sparse|dense)")),
    }
}

fn parse_detector(s: &str) -> Result<DetectorKind, String> {
    match s {
        "closed-set" | "closed" => Ok(DetectorKind::ClosedSet),
        "frontier" => Ok(DetectorKind::Frontier),
        other => Err(format!("unknown detector '{other}' (closed-set|frontier)")),
    }
}

/// Split `--key value` pairs; rejects unknown keys against `allowed`.
fn options(args: &[String], allowed: &[&str]) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected --option, got '{a}'"));
        };
        if !allowed.contains(&key) {
            return Err(format!("unknown option --{key} (allowed: {})", allowed.join(", ")));
        }
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        out.insert(key.to_string(), value.clone());
    }
    Ok(out)
}

fn get_parse<T: std::str::FromStr>(
    opts: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse '{v}'")),
    }
}

/// `--batch auto|N` → [`BatchParams`], with the typed width validation.
fn parse_batch(opts: &BTreeMap<String, String>) -> Result<BatchParams, String> {
    let batch = match opts.get("batch").map(|s| s.as_str()) {
        None | Some("auto") => BatchParams { lanes: None },
        Some(v) => BatchParams {
            lanes: Some(
                v.parse()
                    .map_err(|_| format!("--batch: cannot parse '{v}' (auto or an integer)"))?,
            ),
        },
    };
    batch.validate().map_err(|e| e.to_string())?;
    Ok(batch)
}

/// `--chaos-*` knobs → [`ChaosParams`], rejected with the typed
/// [`ChaosConfigError`](streamline_iosim::ChaosConfigError) messages before
/// a fault plan can panic on them.
fn parse_chaos_params(opts: &BTreeMap<String, String>) -> Result<ChaosParams, String> {
    let d = ChaosParams::default();
    let params = ChaosParams {
        fault_prob: get_parse(opts, "chaos-fault-prob", d.fault_prob)?,
        transient_prob: get_parse(opts, "chaos-transient-prob", d.transient_prob)?,
        corrupt_prob: get_parse(opts, "chaos-corrupt-prob", d.corrupt_prob)?,
        max_clears: get_parse(opts, "chaos-max-clears", d.max_clears)?,
        latency_prob: get_parse(opts, "chaos-latency-prob", d.latency_prob)?,
        max_latency_us: get_parse(opts, "chaos-max-latency-us", d.max_latency_us)?,
    };
    params.validate().map_err(|e| e.to_string())?;
    Ok(params)
}

/// `--rank-*` knobs → [`RankChaos`]: `--rank-window START,END` bounds the
/// random kill times and `--rank-kill RANK@TIME` pins exactly one death.
/// Validated with the same typed errors as the block-fault chaos config.
fn parse_rank_chaos(opts: &BTreeMap<String, String>) -> Result<RankChaos, String> {
    let mut rc = RankChaos::seeded(get_parse(opts, "rank-chaos-seed", 0x5EED)?);
    rc.kill_prob = get_parse(opts, "rank-kill-prob", rc.kill_prob)?;
    rc.heartbeat_period = get_parse(opts, "rank-heartbeat", rc.heartbeat_period)?;
    rc.suspect_timeout = get_parse(opts, "rank-suspect-timeout", rc.suspect_timeout)?;
    if let Some(v) = opts.get("rank-window") {
        let (a, b) = v
            .split_once(',')
            .ok_or_else(|| format!("--rank-window: expected START,END, got '{v}'"))?;
        let num = |s: &str| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("--rank-window: cannot parse '{}'", s.trim()))
        };
        rc.window = (num(a)?, num(b)?);
    }
    if let Some(v) = opts.get("rank-kill") {
        let (r, t) = v
            .split_once('@')
            .ok_or_else(|| format!("--rank-kill: expected RANK@TIME, got '{v}'"))?;
        let rank = r
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("--rank-kill: cannot parse rank '{}'", r.trim()))?;
        let time = t
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("--rank-kill: cannot parse time '{}'", t.trim()))?;
        rc.kill = Some((rank, time));
    }
    rc.validate().map_err(|e| e.to_string())?;
    Ok(rc)
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let Some(cmd) = args.first() else {
        return Ok(Cli { command: Command::Help });
    };
    let rest = &args[1..];
    let command = match cmd.as_str() {
        "run" => {
            // `--chaos` and `--rank-chaos` are bare flags; peel them off
            // before the key-value pass.
            let mut kv: Vec<String> = rest.to_vec();
            let chaos = if let Some(i) = kv.iter().position(|a| a == "--chaos") {
                kv.remove(i);
                true
            } else {
                false
            };
            let rank_chaos_on = if let Some(i) = kv.iter().position(|a| a == "--rank-chaos") {
                kv.remove(i);
                true
            } else {
                false
            };
            let o = options(
                &kv,
                &[
                    "dataset",
                    "seeding",
                    "algorithm",
                    "procs",
                    "seeds",
                    "cache",
                    "batch",
                    "neighbors",
                    "diffusion-period",
                    "steal-batch",
                    "chaos-seed",
                    "chaos-fault-prob",
                    "chaos-transient-prob",
                    "chaos-corrupt-prob",
                    "chaos-max-clears",
                    "chaos-latency-prob",
                    "chaos-max-latency-us",
                    "rank-chaos-seed",
                    "rank-kill-prob",
                    "rank-window",
                    "rank-kill",
                    "rank-heartbeat",
                    "rank-suspect-timeout",
                    "ingest-epochs",
                    "ingest-interval",
                    "ingest-batch",
                    "detector",
                    "json",
                    "trace",
                    "trace-bucket",
                    "metrics",
                    "checkpoint",
                    "checkpoint-interval",
                    "kill-after-checkpoints",
                    "resume",
                ],
            )?;
            // Chaos knobs without the matching mode flag are a silent no-op
            // waiting to happen; reject them up front like the steal knobs.
            if !chaos {
                for knob in [
                    "chaos-fault-prob",
                    "chaos-transient-prob",
                    "chaos-corrupt-prob",
                    "chaos-max-clears",
                    "chaos-latency-prob",
                    "chaos-max-latency-us",
                ] {
                    if o.contains_key(knob) {
                        return Err(format!("--{knob} only applies with --chaos"));
                    }
                }
            }
            if !rank_chaos_on {
                for knob in [
                    "rank-chaos-seed",
                    "rank-kill-prob",
                    "rank-window",
                    "rank-kill",
                    "rank-heartbeat",
                    "rank-suspect-timeout",
                ] {
                    if o.contains_key(knob) {
                        return Err(format!("--{knob} only applies with --rank-chaos"));
                    }
                }
            }
            let algorithm =
                AlgoChoice::parse(o.get("algorithm").map(|s| s.as_str()).unwrap_or("auto"))?;
            // Steal knobs only make sense on the work-stealing driver; reject
            // the combination up front rather than silently ignoring it.
            if algorithm != AlgoChoice::Fixed(Algorithm::WorkStealing) {
                for knob in ["neighbors", "diffusion-period", "steal-batch"] {
                    if o.contains_key(knob) {
                        let got = match algorithm {
                            AlgoChoice::Fixed(a) => a.label(),
                            AlgoChoice::Auto => "auto",
                        };
                        return Err(format!(
                            "--{knob} only applies to --algorithm steal (got {got})"
                        ));
                    }
                }
            }
            let ingest_epochs: usize = get_parse(&o, "ingest-epochs", 0)?;
            // Ingest knobs without any arrival epochs would be a silent
            // no-op; reject like the chaos and steal knobs.
            if ingest_epochs == 0 {
                for knob in ["ingest-interval", "ingest-batch"] {
                    if o.contains_key(knob) {
                        return Err(format!(
                            "--{knob} only applies with --ingest-epochs N (N > 0)"
                        ));
                    }
                }
            }
            let ingest_interval: f64 = get_parse(&o, "ingest-interval", 2.0e-4)?;
            if !(ingest_interval > 0.0 && ingest_interval.is_finite()) {
                return Err(format!(
                    "--ingest-interval must be positive and finite, got {ingest_interval}"
                ));
            }
            let ingest_batch: usize = get_parse(&o, "ingest-batch", 32)?;
            if ingest_epochs > 0 && ingest_batch == 0 {
                return Err("--ingest-batch must be >= 1".into());
            }
            let detector =
                parse_detector(o.get("detector").map(|s| s.as_str()).unwrap_or("closed-set"))?;
            let defaults = StealParams::default();
            let steal = StealParams {
                neighbor_degree: get_parse(&o, "neighbors", defaults.neighbor_degree)?,
                diffusion_period: get_parse(&o, "diffusion-period", defaults.diffusion_period)?,
                steal_batch: get_parse(&o, "steal-batch", defaults.steal_batch)?,
            };
            steal.validate().map_err(|e| e.to_string())?;
            Command::Run {
                dataset: DatasetKind::parse(
                    o.get("dataset").map(|s| s.as_str()).unwrap_or("thermal"),
                )?,
                seeding: parse_seeding(o.get("seeding").map(|s| s.as_str()).unwrap_or("sparse"))?,
                algorithm,
                procs: get_parse(&o, "procs", 64)?,
                seeds: o
                    .get("seeds")
                    .map(|v| v.parse().map_err(|_| "--seeds: bad integer".to_string()))
                    .transpose()?,
                cache: get_parse(&o, "cache", 64)?,
                steal,
                batch: parse_batch(&o)?,
                chaos,
                chaos_seed: get_parse(&o, "chaos-seed", 0x5EED)?,
                chaos_params: parse_chaos_params(&o)?,
                rank_chaos: if rank_chaos_on { Some(parse_rank_chaos(&o)?) } else { None },
                ingest_epochs,
                ingest_interval,
                ingest_batch,
                detector,
                json: o.get("json").cloned(),
                trace: o.get("trace").cloned(),
                trace_bucket: get_parse(&o, "trace-bucket", 0.05)?,
                metrics: o.get("metrics").cloned(),
                checkpoint: o.get("checkpoint").cloned(),
                checkpoint_interval: get_parse(&o, "checkpoint-interval", 0.1)?,
                kill_after_checkpoints: o
                    .get("kill-after-checkpoints")
                    .map(|v| {
                        v.parse().map_err(|_| "--kill-after-checkpoints: bad integer".to_string())
                    })
                    .transpose()?,
                resume: o.get("resume").cloned(),
            }
        }
        "classify" => {
            let o = options(rest, &["dataset", "seeding", "seeds"])?;
            Command::Classify {
                dataset: DatasetKind::parse(
                    o.get("dataset").map(|s| s.as_str()).unwrap_or("thermal"),
                )?,
                seeding: parse_seeding(o.get("seeding").map(|s| s.as_str()).unwrap_or("sparse"))?,
                seeds: o
                    .get("seeds")
                    .map(|v| v.parse().map_err(|_| "--seeds: bad integer".to_string()))
                    .transpose()?,
            }
        }
        "trace" => {
            let o = options(rest, &["dataset", "seeds", "out", "formats"])?;
            Command::Trace {
                dataset: DatasetKind::parse(
                    o.get("dataset").map(|s| s.as_str()).unwrap_or("thermal"),
                )?,
                seeds: get_parse(&o, "seeds", 100)?,
                out: o.get("out").cloned().unwrap_or_else(|| "streamline-out".into()),
                formats: o
                    .get("formats")
                    .map(|s| s.split(',').map(|f| f.trim().to_string()).collect())
                    .unwrap_or_else(|| vec!["vtk".into(), "ppm".into()]),
            }
        }
        "ftle" => {
            let o = options(rest, &["out", "nx", "ny", "horizon"])?;
            Command::Ftle {
                out: o.get("out").cloned().unwrap_or_else(|| "ftle.ppm".into()),
                nx: get_parse(&o, "nx", 240)?,
                ny: get_parse(&o, "ny", 120)?,
                horizon: get_parse(&o, "horizon", 10.0)?,
            }
        }
        "serve-bench" => {
            // `--chaos` is a bare flag; peel it off before the key-value pass.
            let mut kv: Vec<String> = rest.to_vec();
            let chaos = if let Some(i) = kv.iter().position(|a| a == "--chaos") {
                kv.remove(i);
                true
            } else {
                false
            };
            let o = options(
                &kv,
                &[
                    "dataset",
                    "clients",
                    "requests",
                    "seeds",
                    "workers",
                    "cache",
                    "shards",
                    "queue",
                    "batch",
                    "deadline-ms",
                    "chaos-seed",
                    "json",
                    "trace",
                    "trace-bucket-ms",
                    "metrics",
                    "warm-start",
                    "replicas",
                    "replication",
                    "workload",
                    "zipf-s",
                    "diurnal",
                    "burst",
                    "qps",
                    "duration-s",
                    "replica-kill",
                ],
            )?;
            let replicas: usize = get_parse(&o, "replicas", 1)?;
            if replicas == 0 {
                return Err("--replicas must be at least 1".into());
            }
            // The open-loop cluster knobs mean nothing on the closed-loop
            // single service; reject them instead of silently ignoring them.
            if replicas <= 1 {
                for knob in [
                    "replication",
                    "workload",
                    "zipf-s",
                    "diurnal",
                    "burst",
                    "qps",
                    "duration-s",
                    "replica-kill",
                ] {
                    if o.contains_key(knob) {
                        return Err(format!("--{knob} only applies with --replicas > 1"));
                    }
                }
            } else {
                // Conversely, the closed-loop knobs have no cluster meaning.
                for knob in ["clients", "requests", "workers", "deadline-ms", "warm-start"] {
                    if o.contains_key(knob) {
                        return Err(format!(
                            "--{knob} only applies to the single service (--replicas 1)"
                        ));
                    }
                }
                if chaos || o.contains_key("chaos-seed") {
                    return Err("--chaos only applies to the single service (--replicas 1)".into());
                }
            }
            let replication: usize = get_parse(&o, "replication", 1)?;
            if replication == 0 || replication > replicas {
                return Err(format!("--replication must be in 1..={replicas} (got {replication})"));
            }
            let traffic =
                TrafficShape::parse(o.get("workload").map(|s| s.as_str()).unwrap_or("zipf"))?;
            if traffic == TrafficShape::Uniform && o.contains_key("zipf-s") {
                return Err("--zipf-s only applies with --workload zipf".into());
            }
            let diurnal: f64 = get_parse(&o, "diurnal", 0.5)?;
            if !(0.0..1.0).contains(&diurnal) {
                return Err(format!("--diurnal must be in [0, 1) (got {diurnal})"));
            }
            let burst: f64 = get_parse(&o, "burst", 3.0)?;
            if burst < 1.0 {
                return Err(format!("--burst must be at least 1.0 (got {burst})"));
            }
            let replica_kill =
                o.get("replica-kill")
                    .map(|v| -> Result<(usize, f64), String> {
                        let (r, t) = v.split_once('@').ok_or_else(|| {
                            format!("--replica-kill: expected REPLICA@TIME, got '{v}'")
                        })?;
                        let replica = r.trim().parse::<usize>().map_err(|_| {
                            format!("--replica-kill: cannot parse replica '{}'", r.trim())
                        })?;
                        if replica >= replicas {
                            return Err(format!(
                                "--replica-kill: replica {replica} out of range (0..{replicas})"
                            ));
                        }
                        let time = t.trim().parse::<f64>().map_err(|_| {
                            format!("--replica-kill: cannot parse time '{}'", t.trim())
                        })?;
                        Ok((replica, time))
                    })
                    .transpose()?;
            Command::ServeBench {
                dataset: DatasetKind::parse(
                    o.get("dataset").map(|s| s.as_str()).unwrap_or("astro"),
                )?,
                clients: get_parse(&o, "clients", 8)?,
                requests: get_parse(&o, "requests", 125)?,
                seeds: get_parse(&o, "seeds", 4)?,
                workers: get_parse(&o, "workers", 4)?,
                cache: get_parse(&o, "cache", 64)?,
                shards: get_parse(&o, "shards", 8)?,
                queue: get_parse(&o, "queue", 4096)?,
                batch: parse_batch(&o)?,
                deadline_ms: o
                    .get("deadline-ms")
                    .map(|v| v.parse().map_err(|_| "--deadline-ms: bad integer".to_string()))
                    .transpose()?,
                chaos,
                chaos_seed: get_parse(&o, "chaos-seed", 0x5EED)?,
                json: o.get("json").cloned(),
                trace: o.get("trace").cloned(),
                trace_bucket_ms: get_parse(&o, "trace-bucket-ms", 1)?,
                metrics: o.get("metrics").cloned(),
                warm_start: o.get("warm-start").cloned(),
                replicas,
                replication,
                traffic,
                zipf_s: get_parse(&o, "zipf-s", 1.1)?,
                diurnal,
                burst,
                qps: get_parse(&o, "qps", 20.0)?,
                duration_s: get_parse(&o, "duration-s", 1.0)?,
                replica_kill,
            }
        }
        "bench-cluster" => {
            // `--smoke` is a bare flag; peel it off before the key-value pass.
            let mut kv: Vec<String> = rest.to_vec();
            let smoke = if let Some(i) = kv.iter().position(|a| a == "--smoke") {
                kv.remove(i);
                true
            } else {
                false
            };
            let o = options(&kv, &["out", "metrics"])?;
            if o.contains_key("metrics") && !smoke {
                return Err("--metrics only applies with --smoke".into());
            }
            Command::BenchCluster {
                smoke,
                out: o.get("out").cloned().unwrap_or_else(|| "BENCH_10.json".into()),
                metrics: o.get("metrics").cloned(),
            }
        }
        "bench-kernels" => {
            // `--smoke` and `--force` are bare flags; peel them off before
            // the key-value pass.
            let mut kv: Vec<String> = rest.to_vec();
            let smoke = if let Some(i) = kv.iter().position(|a| a == "--smoke") {
                kv.remove(i);
                true
            } else {
                false
            };
            let force = if let Some(i) = kv.iter().position(|a| a == "--force") {
                kv.remove(i);
                true
            } else {
                false
            };
            let o = options(&kv, &["out"])?;
            Command::BenchKernels {
                smoke,
                out: o.get("out").cloned().unwrap_or_else(|| "BENCH_7.json".into()),
                force,
            }
        }
        "bench-ckpt" => {
            // `--smoke` is a bare flag; peel it off before the key-value pass.
            let mut kv: Vec<String> = rest.to_vec();
            let smoke = if let Some(i) = kv.iter().position(|a| a == "--smoke") {
                kv.remove(i);
                true
            } else {
                false
            };
            let o = options(&kv, &["json"])?;
            Command::BenchCkpt { smoke, json: o.get("json").cloned() }
        }
        "bench-drivers" => {
            // `--smoke` is a bare flag; peel it off before the key-value pass.
            let mut kv: Vec<String> = rest.to_vec();
            let smoke = if let Some(i) = kv.iter().position(|a| a == "--smoke") {
                kv.remove(i);
                true
            } else {
                false
            };
            let o = options(&kv, &["json"])?;
            Command::BenchDrivers { smoke, json: o.get("json").cloned() }
        }
        "obs-check" => {
            let o = options(rest, &["trace", "metrics", "ckpt"])?;
            if o.is_empty() {
                return Err("obs-check needs --trace, --metrics and/or --ckpt".into());
            }
            Command::ObsCheck {
                trace: o.get("trace").cloned(),
                metrics: o.get("metrics").cloned(),
                ckpt: o.get("ckpt").cloned(),
            }
        }
        "info" => Command::Info,
        "help" | "--help" | "-h" => Command::Help,
        other => {
            return Err(format!(
                "unknown command '{other}' \
                 (run|classify|trace|ftle|serve-bench|bench-kernels|bench-ckpt|bench-drivers|\
                 bench-cluster|obs-check|info|help)"
            ))
        }
    };
    Ok(Cli { command })
}

pub const USAGE: &str = "\
slrepro — parallel streamline computation (Pugmire et al., SC 2009)

USAGE:
  slrepro run      [--dataset astro|fusion|thermal] [--seeding sparse|dense]
                   [--algorithm static|lod|hybrid|steal|auto] [--procs N] [--seeds N]
                   [--cache BLOCKS] [--batch N|auto] [--neighbors N]
                   [--diffusion-period SECS]
                   [--steal-batch N] [--chaos] [--chaos-seed N]
                   [--chaos-fault-prob P] [--chaos-transient-prob P]
                   [--chaos-corrupt-prob P] [--chaos-max-clears N]
                   [--chaos-latency-prob P] [--chaos-max-latency-us US]
                   [--rank-chaos] [--rank-chaos-seed N] [--rank-kill-prob P]
                   [--rank-window START,END] [--rank-kill RANK@TIME]
                   [--rank-heartbeat SECS] [--rank-suspect-timeout SECS]
                   [--ingest-epochs N] [--ingest-interval SECS] [--ingest-batch N]
                   [--detector closed-set|frontier]
                   [--json FILE] [--trace FILE.json]
                   [--trace-bucket SECS] [--metrics FILE.prom]
                   [--checkpoint DIR] [--checkpoint-interval SECS]
                   [--kill-after-checkpoints N] [--resume FILE|DIR]
  slrepro classify [--dataset ...] [--seeding ...] [--seeds N]
  slrepro trace    [--dataset ...] [--seeds N] [--out DIR] [--formats vtk,obj,csv,ppm]
  slrepro ftle     [--out FILE.ppm] [--nx N] [--ny N] [--horizon T]
  slrepro serve-bench [--dataset astro|fusion|thermal] [--clients N] [--requests N]
                   [--seeds N] [--workers N] [--cache BLOCKS] [--shards N]
                   [--queue SEEDS] [--batch N|auto] [--deadline-ms MS]
                   [--chaos] [--chaos-seed N]
                   [--json FILE] [--trace FILE.json] [--trace-bucket-ms MS]
                   [--metrics FILE.prom] [--warm-start FILE.ckpt]
                   [--replicas N] [--replication N] [--workload zipf|uniform]
                   [--zipf-s S] [--diurnal A] [--burst M] [--qps RATE]
                   [--duration-s SECS] [--replica-kill REPLICA@TIME]
  slrepro bench-kernels [--smoke] [--out FILE] [--force]
  slrepro bench-cluster [--smoke] [--out FILE] [--metrics FILE.prom]
  slrepro bench-ckpt [--smoke] [--json FILE]
  slrepro bench-drivers [--smoke] [--json FILE]
  slrepro obs-check [--trace FILE.json] [--metrics FILE.prom] [--ckpt FILE.ckpt]
  slrepro info
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn run_defaults() {
        let cli = parse(&argv("run")).unwrap();
        match cli.command {
            Command::Run {
                dataset,
                seeding,
                algorithm,
                procs,
                seeds,
                cache,
                steal,
                batch,
                chaos,
                chaos_seed,
                chaos_params,
                rank_chaos,
                ingest_epochs,
                ingest_interval,
                ingest_batch,
                detector,
                json,
                trace,
                trace_bucket,
                metrics,
                checkpoint,
                checkpoint_interval,
                kill_after_checkpoints,
                resume,
            } => {
                assert_eq!(ingest_epochs, 0);
                assert_eq!(ingest_interval, 2.0e-4);
                assert_eq!(ingest_batch, 32);
                assert_eq!(detector, DetectorKind::ClosedSet);
                assert_eq!(dataset, DatasetKind::Thermal);
                assert_eq!(seeding, Seeding::Sparse);
                assert_eq!(algorithm, AlgoChoice::Auto);
                assert_eq!(procs, 64);
                assert_eq!(seeds, None);
                assert_eq!(cache, 64);
                assert_eq!(steal, StealParams::default());
                assert_eq!(batch, BatchParams::default());
                assert!(!chaos);
                assert_eq!(chaos_seed, 0x5EED);
                assert_eq!(chaos_params, ChaosParams::default());
                assert_eq!(rank_chaos, None);
                assert_eq!(json, None);
                assert_eq!(trace, None);
                assert_eq!(trace_bucket, 0.05);
                assert_eq!(metrics, None);
                assert_eq!(checkpoint, None);
                assert_eq!(checkpoint_interval, 0.1);
                assert_eq!(kill_after_checkpoints, None);
                assert_eq!(resume, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_full_options() {
        let cli = parse(&argv(
            "run --dataset astro --seeding dense --algorithm hybrid --procs 128 --seeds 5000 --cache 32 --batch 8 --json r.json --trace t.json --trace-bucket 0.01 --metrics m.prom --checkpoint ck --checkpoint-interval 0.02 --kill-after-checkpoints 3 --resume ck/ckpt-000003.ckpt",
        ))
        .unwrap();
        match cli.command {
            Command::Run {
                dataset,
                seeding,
                algorithm,
                procs,
                seeds,
                cache,
                steal,
                batch,
                chaos,
                chaos_seed,
                chaos_params,
                rank_chaos,
                ingest_epochs,
                ingest_interval,
                ingest_batch,
                detector,
                json,
                trace,
                trace_bucket,
                metrics,
                checkpoint,
                checkpoint_interval,
                kill_after_checkpoints,
                resume,
            } => {
                assert_eq!(ingest_epochs, 0);
                assert_eq!(ingest_interval, 2.0e-4);
                assert_eq!(ingest_batch, 32);
                assert_eq!(detector, DetectorKind::ClosedSet);
                assert_eq!(dataset, DatasetKind::Astro);
                assert_eq!(seeding, Seeding::Dense);
                assert_eq!(algorithm, AlgoChoice::Fixed(Algorithm::HybridMasterSlave));
                assert_eq!(procs, 128);
                assert_eq!(seeds, Some(5000));
                assert_eq!(cache, 32);
                assert_eq!(steal, StealParams::default());
                assert_eq!(batch, BatchParams { lanes: Some(8) });
                assert!(!chaos);
                assert_eq!(chaos_seed, 0x5EED);
                assert_eq!(chaos_params, ChaosParams::default());
                assert_eq!(rank_chaos, None);
                assert_eq!(json.as_deref(), Some("r.json"));
                assert_eq!(trace.as_deref(), Some("t.json"));
                assert_eq!(trace_bucket, 0.01);
                assert_eq!(metrics.as_deref(), Some("m.prom"));
                assert_eq!(checkpoint.as_deref(), Some("ck"));
                assert_eq!(checkpoint_interval, 0.02);
                assert_eq!(kill_after_checkpoints, Some(3));
                assert_eq!(resume.as_deref(), Some("ck/ckpt-000003.ckpt"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_option_rejected() {
        let e = parse(&argv("run --bogus 3")).unwrap_err();
        assert!(e.contains("unknown option --bogus"), "{e}");
    }

    #[test]
    fn missing_value_rejected() {
        let e = parse(&argv("run --procs")).unwrap_err();
        assert!(e.contains("needs a value"), "{e}");
    }

    #[test]
    fn bad_integer_rejected() {
        let e = parse(&argv("run --procs many")).unwrap_err();
        assert!(e.contains("cannot parse"), "{e}");
    }

    #[test]
    fn trace_formats_split() {
        let cli = parse(&argv("trace --formats vtk,obj,csv")).unwrap();
        match cli.command {
            Command::Trace { formats, .. } => {
                assert_eq!(formats, vec!["vtk", "obj", "csv"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bench_kernels_defaults_and_flags() {
        assert_eq!(
            parse(&argv("bench-kernels")).unwrap().command,
            Command::BenchKernels { smoke: false, out: "BENCH_7.json".into(), force: false }
        );
        assert_eq!(
            parse(&argv("bench-kernels --smoke --out k.json --force")).unwrap().command,
            Command::BenchKernels { smoke: true, out: "k.json".into(), force: true }
        );
        // Flag position must not matter relative to key-value options.
        assert_eq!(
            parse(&argv("bench-kernels --force --out k.json --smoke")).unwrap().command,
            Command::BenchKernels { smoke: true, out: "k.json".into(), force: true }
        );
        let e = parse(&argv("bench-kernels --bogus 1")).unwrap_err();
        assert!(e.contains("unknown option"), "{e}");
    }

    #[test]
    fn batch_knob_round_trips_on_run_and_serve_bench() {
        match parse(&argv("run --batch 16")).unwrap().command {
            Command::Run { batch, .. } => assert_eq!(batch, BatchParams { lanes: Some(16) }),
            other => panic!("{other:?}"),
        }
        match parse(&argv("run --batch auto")).unwrap().command {
            Command::Run { batch, .. } => assert_eq!(batch, BatchParams { lanes: None }),
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve-bench --batch 4")).unwrap().command {
            Command::ServeBench { batch, .. } => assert_eq!(batch, BatchParams { lanes: Some(4) }),
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve-bench")).unwrap().command {
            Command::ServeBench { batch, .. } => assert_eq!(batch, BatchParams::default()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_batch_values_are_typed_errors_not_panics() {
        let e = parse(&argv("run --batch 0")).unwrap_err();
        assert!(e.contains("batch size must be >= 1"), "{e}");
        let e = parse(&argv("serve-bench --batch 0")).unwrap_err();
        assert!(e.contains("batch size must be >= 1"), "{e}");
        let e = parse(&argv("run --batch lots")).unwrap_err();
        assert!(e.contains("cannot parse"), "{e}");
    }

    #[test]
    fn serve_bench_chaos_flags() {
        let cli = parse(&argv("serve-bench --chaos --chaos-seed 42 --clients 2")).unwrap();
        match cli.command {
            Command::ServeBench { chaos, chaos_seed, clients, .. } => {
                assert!(chaos);
                assert_eq!(chaos_seed, 42);
                assert_eq!(clients, 2);
            }
            other => panic!("{other:?}"),
        }
        // Without the flag: chaos off, seed defaulted; flag position free.
        match parse(&argv("serve-bench")).unwrap().command {
            Command::ServeBench { chaos, chaos_seed, .. } => {
                assert!(!chaos);
                assert_eq!(chaos_seed, 0x5EED);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve-bench --clients 3 --chaos")).unwrap().command {
            Command::ServeBench { chaos, .. } => assert!(chaos),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_bench_trace_options() {
        match parse(&argv("serve-bench --trace t.json --trace-bucket-ms 5 --metrics m.prom"))
            .unwrap()
            .command
        {
            Command::ServeBench { trace, trace_bucket_ms, metrics, .. } => {
                assert_eq!(trace.as_deref(), Some("t.json"));
                assert_eq!(trace_bucket_ms, 5);
                assert_eq!(metrics.as_deref(), Some("m.prom"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn obs_check_needs_an_input() {
        assert!(parse(&argv("obs-check")).is_err());
        match parse(&argv("obs-check --trace t.json")).unwrap().command {
            Command::ObsCheck { trace, metrics, ckpt } => {
                assert_eq!(trace.as_deref(), Some("t.json"));
                assert_eq!(metrics, None);
                assert_eq!(ckpt, None);
            }
            other => panic!("{other:?}"),
        }
        // A checkpoint alone is a valid input.
        match parse(&argv("obs-check --ckpt c.ckpt")).unwrap().command {
            Command::ObsCheck { trace, metrics, ckpt } => {
                assert_eq!(trace, None);
                assert_eq!(metrics, None);
                assert_eq!(ckpt.as_deref(), Some("c.ckpt"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bench_ckpt_defaults_and_flags() {
        assert_eq!(
            parse(&argv("bench-ckpt")).unwrap().command,
            Command::BenchCkpt { smoke: false, json: None }
        );
        assert_eq!(
            parse(&argv("bench-ckpt --smoke --json c.json")).unwrap().command,
            Command::BenchCkpt { smoke: true, json: Some("c.json".into()) }
        );
    }

    #[test]
    fn serve_bench_warm_start_option() {
        match parse(&argv("serve-bench --warm-start warm.ckpt")).unwrap().command {
            Command::ServeBench { warm_start, .. } => {
                assert_eq!(warm_start.as_deref(), Some("warm.ckpt"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn steal_algorithm_and_knobs_round_trip() {
        let cli = parse(&argv(
            "run --algorithm steal --neighbors 3 --diffusion-period 0.002 --steal-batch 4",
        ))
        .unwrap();
        match cli.command {
            Command::Run { algorithm, steal, .. } => {
                assert_eq!(algorithm, AlgoChoice::Fixed(Algorithm::WorkStealing));
                assert_eq!(steal.neighbor_degree, 3);
                assert_eq!(steal.diffusion_period, 0.002);
                assert_eq!(steal.steal_batch, 4);
            }
            other => panic!("{other:?}"),
        }
        // Alias and defaults.
        match parse(&argv("run --algorithm work-stealing")).unwrap().command {
            Command::Run { algorithm, steal, .. } => {
                assert_eq!(algorithm, AlgoChoice::Fixed(Algorithm::WorkStealing));
                assert_eq!(steal, StealParams::default());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn steal_knobs_without_steal_algorithm_rejected() {
        // With a different fixed algorithm, and with the default (auto).
        let e = parse(&argv("run --algorithm lod --steal-batch 4")).unwrap_err();
        assert!(e.contains("only applies to --algorithm steal"), "{e}");
        let e = parse(&argv("run --neighbors 3")).unwrap_err();
        assert!(e.contains("only applies to --algorithm steal"), "{e}");
    }

    #[test]
    fn invalid_steal_knob_values_are_typed_errors_not_panics() {
        let e = parse(&argv("run --algorithm steal --neighbors 0")).unwrap_err();
        assert!(e.contains("neighbor degree"), "{e}");
        let e = parse(&argv("run --algorithm steal --steal-batch 0")).unwrap_err();
        assert!(e.contains("steal batch"), "{e}");
        let e = parse(&argv("run --algorithm steal --diffusion-period -1")).unwrap_err();
        assert!(e.contains("diffusion period"), "{e}");
        let e = parse(&argv("run --algorithm steal --diffusion-period nan")).unwrap_err();
        assert!(e.contains("diffusion period"), "{e}");
        // Unparseable values fail in the generic option parser.
        let e = parse(&argv("run --algorithm steal --neighbors many")).unwrap_err();
        assert!(e.contains("cannot parse"), "{e}");
    }

    #[test]
    fn run_chaos_flags() {
        match parse(&argv("run --algorithm steal --chaos --chaos-seed 7")).unwrap().command {
            Command::Run { chaos, chaos_seed, .. } => {
                assert!(chaos);
                assert_eq!(chaos_seed, 7);
            }
            other => panic!("{other:?}"),
        }
        // Flag position must not matter relative to key-value options.
        match parse(&argv("run --chaos --algorithm lod")).unwrap().command {
            Command::Run { chaos, algorithm, .. } => {
                assert!(chaos);
                assert_eq!(algorithm, AlgoChoice::Fixed(Algorithm::LoadOnDemand));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn chaos_param_knobs_round_trip_and_validate() {
        match parse(&argv("run --chaos --chaos-fault-prob 0.9 --chaos-max-clears 7"))
            .unwrap()
            .command
        {
            Command::Run { chaos, chaos_params, .. } => {
                assert!(chaos);
                assert_eq!(chaos_params.fault_prob, 0.9);
                assert_eq!(chaos_params.max_clears, 7);
                // Untouched knobs keep their defaults.
                assert_eq!(chaos_params.latency_prob, ChaosParams::default().latency_prob);
            }
            other => panic!("{other:?}"),
        }
        // Out-of-range values are typed errors naming the knob, not panics.
        let e = parse(&argv("run --chaos --chaos-fault-prob 1.5")).unwrap_err();
        assert!(e.contains("fault_prob"), "{e}");
        let e = parse(&argv("run --chaos --chaos-transient-prob -0.1")).unwrap_err();
        assert!(e.contains("transient_prob"), "{e}");
        let e = parse(&argv("run --chaos --chaos-max-clears 0")).unwrap_err();
        assert!(e.contains("max_clears"), "{e}");
        // Knobs without --chaos are rejected, not silently ignored.
        let e = parse(&argv("run --chaos-fault-prob 0.5")).unwrap_err();
        assert!(e.contains("only applies with --chaos"), "{e}");
    }

    #[test]
    fn rank_chaos_flags_round_trip() {
        match parse(&argv("run --rank-chaos")).unwrap().command {
            Command::Run { rank_chaos, .. } => {
                let rc = rank_chaos.expect("flag turns rank chaos on");
                assert_eq!(rc.seed, 0x5EED);
                assert_eq!(rc.kill, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "run --rank-chaos --rank-chaos-seed 9 --rank-kill-prob 0.25 --rank-window 0.1,0.4 \
             --rank-heartbeat 0.05 --rank-suspect-timeout 0.5",
        ))
        .unwrap()
        .command
        {
            Command::Run { rank_chaos, .. } => {
                let rc = rank_chaos.unwrap();
                assert_eq!(rc.seed, 9);
                assert_eq!(rc.kill_prob, 0.25);
                assert_eq!(rc.window, (0.1, 0.4));
                assert_eq!(rc.heartbeat_period, 0.05);
                assert_eq!(rc.suspect_timeout, 0.5);
            }
            other => panic!("{other:?}"),
        }
        // A pinned kill; flag position free relative to key-value options.
        match parse(&argv("run --rank-kill 3@0.002 --rank-chaos")).unwrap().command {
            Command::Run { rank_chaos, .. } => {
                assert_eq!(rank_chaos.unwrap().kill, Some((3, 0.002)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_rank_chaos_values_are_typed_errors_not_panics() {
        let e = parse(&argv("run --rank-chaos --rank-kill-prob 2")).unwrap_err();
        assert!(e.contains("kill_prob"), "{e}");
        let e = parse(&argv("run --rank-chaos --rank-window 0.5,0.1")).unwrap_err();
        assert!(e.contains("window"), "{e}");
        let e = parse(&argv("run --rank-chaos --rank-window 0.5")).unwrap_err();
        assert!(e.contains("START,END"), "{e}");
        let e = parse(&argv("run --rank-chaos --rank-kill 3")).unwrap_err();
        assert!(e.contains("RANK@TIME"), "{e}");
        let e = parse(&argv("run --rank-chaos --rank-kill 3@-1")).unwrap_err();
        assert!(e.contains("window"), "{e}");
        let e = parse(&argv("run --rank-chaos --rank-heartbeat 0")).unwrap_err();
        assert!(e.contains("heartbeat"), "{e}");
        // Knobs without the mode flag are rejected, not silently ignored.
        let e = parse(&argv("run --rank-kill 1@0.5")).unwrap_err();
        assert!(e.contains("only applies with --rank-chaos"), "{e}");
    }

    #[test]
    fn bench_drivers_defaults_and_flags() {
        assert_eq!(
            parse(&argv("bench-drivers")).unwrap().command,
            Command::BenchDrivers { smoke: false, json: None }
        );
        assert_eq!(
            parse(&argv("bench-drivers --smoke --json d.json")).unwrap().command,
            Command::BenchDrivers { smoke: true, json: Some("d.json".into()) }
        );
    }

    #[test]
    fn ingest_flags_round_trip_and_validate() {
        match parse(&argv("run")).unwrap().command {
            Command::Run { ingest_epochs, ingest_interval, ingest_batch, detector, .. } => {
                assert_eq!(ingest_epochs, 0);
                assert_eq!(ingest_interval, 2.0e-4);
                assert_eq!(ingest_batch, 32);
                assert_eq!(detector, DetectorKind::ClosedSet);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "run --ingest-epochs 3 --ingest-interval 0.001 --ingest-batch 8 --detector frontier",
        ))
        .unwrap()
        .command
        {
            Command::Run { ingest_epochs, ingest_interval, ingest_batch, detector, .. } => {
                assert_eq!(ingest_epochs, 3);
                assert_eq!(ingest_interval, 0.001);
                assert_eq!(ingest_batch, 8);
                assert_eq!(detector, DetectorKind::Frontier);
            }
            other => panic!("{other:?}"),
        }
        // The detector knob stands alone (it is invisible on closed runs).
        match parse(&argv("run --detector closed")).unwrap().command {
            Command::Run { detector, .. } => assert_eq!(detector, DetectorKind::ClosedSet),
            other => panic!("{other:?}"),
        }
        // Ingest knobs without epochs are rejected, not silently ignored.
        let e = parse(&argv("run --ingest-interval 0.1")).unwrap_err();
        assert!(e.contains("only applies with --ingest-epochs"), "{e}");
        let e = parse(&argv("run --ingest-batch 8")).unwrap_err();
        assert!(e.contains("only applies with --ingest-epochs"), "{e}");
        // Degenerate values are typed errors.
        let e = parse(&argv("run --ingest-epochs 2 --ingest-interval 0")).unwrap_err();
        assert!(e.contains("positive and finite"), "{e}");
        let e = parse(&argv("run --ingest-epochs 2 --ingest-batch 0")).unwrap_err();
        assert!(e.contains("--ingest-batch"), "{e}");
        let e = parse(&argv("run --detector bogus")).unwrap_err();
        assert!(e.contains("unknown detector"), "{e}");
    }

    #[test]
    fn dataset_aliases() {
        assert_eq!(DatasetKind::parse("supernova").unwrap(), DatasetKind::Astro);
        assert_eq!(DatasetKind::parse("tokamak").unwrap(), DatasetKind::Fusion);
        assert!(DatasetKind::parse("xyz").is_err());
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap().command, Command::Help);
    }

    #[test]
    fn unknown_command_rejected() {
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn serve_bench_cluster_flags_round_trip() {
        let cli = parse(&argv(
            "serve-bench --replicas 4 --replication 2 --workload zipf --zipf-s 1.3 \
             --diurnal 0.4 --burst 2.5 --qps 50 --duration-s 1.5 --replica-kill 2@0.7",
        ))
        .unwrap();
        match cli.command {
            Command::ServeBench {
                replicas,
                replication,
                traffic,
                zipf_s,
                diurnal,
                burst,
                qps,
                duration_s,
                replica_kill,
                ..
            } => {
                assert_eq!(replicas, 4);
                assert_eq!(replication, 2);
                assert_eq!(traffic, TrafficShape::Zipf);
                assert_eq!(zipf_s, 1.3);
                assert_eq!(diurnal, 0.4);
                assert_eq!(burst, 2.5);
                assert_eq!(qps, 50.0);
                assert_eq!(duration_s, 1.5);
                assert_eq!(replica_kill, Some((2, 0.7)));
            }
            other => panic!("{other:?}"),
        }
        // Defaults: a plain serve-bench is the single service.
        match parse(&argv("serve-bench")).unwrap().command {
            Command::ServeBench { replicas, replication, traffic, replica_kill, .. } => {
                assert_eq!(replicas, 1);
                assert_eq!(replication, 1);
                assert_eq!(traffic, TrafficShape::Zipf);
                assert_eq!(replica_kill, None);
            }
            other => panic!("{other:?}"),
        }
        // Uniform shape parses too.
        match parse(&argv("serve-bench --replicas 2 --workload uniform")).unwrap().command {
            Command::ServeBench { traffic, .. } => assert_eq!(traffic, TrafficShape::Uniform),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_bench_cluster_flags_are_typed_errors() {
        // Cluster-only knobs without --replicas > 1 are rejected.
        for bad in [
            "serve-bench --replication 2",
            "serve-bench --workload zipf",
            "serve-bench --zipf-s 1.2",
            "serve-bench --diurnal 0.3",
            "serve-bench --burst 2.0",
            "serve-bench --qps 10",
            "serve-bench --duration-s 2",
            "serve-bench --replica-kill 0@0.5",
            "serve-bench --replicas 1 --qps 10",
        ] {
            let e = parse(&argv(bad)).unwrap_err();
            assert!(e.contains("only applies with --replicas > 1"), "{bad}: {e}");
        }
        // Closed-loop knobs on the cluster path are rejected right back.
        for bad in [
            "serve-bench --replicas 2 --clients 4",
            "serve-bench --replicas 2 --requests 10",
            "serve-bench --replicas 2 --workers 2",
            "serve-bench --replicas 2 --deadline-ms 100",
            "serve-bench --replicas 2 --warm-start w.ckpt",
            "serve-bench --replicas 2 --chaos",
        ] {
            let e = parse(&argv(bad)).unwrap_err();
            assert!(e.contains("only applies to the single service"), "{bad}: {e}");
        }
        // Degenerate values are typed errors, not panics downstream.
        let e = parse(&argv("serve-bench --replicas 0")).unwrap_err();
        assert!(e.contains("--replicas must be at least 1"), "{e}");
        let e = parse(&argv("serve-bench --replicas 2 --replication 3")).unwrap_err();
        assert!(e.contains("--replication must be in 1..=2"), "{e}");
        let e = parse(&argv("serve-bench --replicas 2 --workload bogus")).unwrap_err();
        assert!(e.contains("unknown workload 'bogus'"), "{e}");
        let e =
            parse(&argv("serve-bench --replicas 2 --workload uniform --zipf-s 1.2")).unwrap_err();
        assert!(e.contains("--zipf-s only applies with --workload zipf"), "{e}");
        let e = parse(&argv("serve-bench --replicas 2 --diurnal 1.5")).unwrap_err();
        assert!(e.contains("--diurnal must be in [0, 1)"), "{e}");
        let e = parse(&argv("serve-bench --replicas 2 --burst 0.5")).unwrap_err();
        assert!(e.contains("--burst must be at least 1.0"), "{e}");
        let e = parse(&argv("serve-bench --replicas 2 --replica-kill 5@0.5")).unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        let e = parse(&argv("serve-bench --replicas 2 --replica-kill nope")).unwrap_err();
        assert!(e.contains("expected REPLICA@TIME"), "{e}");
    }

    #[test]
    fn bench_cluster_round_trip() {
        match parse(&argv("bench-cluster")).unwrap().command {
            Command::BenchCluster { smoke, out, metrics } => {
                assert!(!smoke);
                assert_eq!(out, "BENCH_10.json");
                assert_eq!(metrics, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("bench-cluster --smoke --out x.json --metrics x.prom")).unwrap().command {
            Command::BenchCluster { smoke, out, metrics } => {
                assert!(smoke);
                assert_eq!(out, "x.json");
                assert_eq!(metrics.as_deref(), Some("x.prom"));
            }
            other => panic!("{other:?}"),
        }
        let e = parse(&argv("bench-cluster --metrics x.prom")).unwrap_err();
        assert!(e.contains("--metrics only applies with --smoke"), "{e}");
        let e = parse(&argv("bench-cluster --bogus 1")).unwrap_err();
        assert!(e.contains("unknown option"), "{e}");
    }
}
