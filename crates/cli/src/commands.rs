//! Command implementations behind the `slrepro` binary.

use crate::args::{AlgoChoice, Command, DatasetKind, TrafficShape};
use streamline_core::{
    classify, recommend, run_simulated_detailed, run_simulated_traced, summarize, Algorithm,
    FlowKnowledge, RunConfig,
};
use streamline_field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_field::unsteady::UnsteadyDoubleGyre;
use streamline_integrate::{advect, Dopri5, StepLimits, Streamline, StreamlineId};
use streamline_math::Vec3;
use streamline_output::{csv, obj, ppm, vtk};
use streamline_pathline::ftle::ftle_grid;

fn build_dataset(kind: DatasetKind) -> Dataset {
    // CLI default: the paper's 512-block topology at laptop cell counts.
    let cfg = DatasetConfig::default();
    match kind {
        DatasetKind::Astro => Dataset::astrophysics(cfg),
        DatasetKind::Fusion => Dataset::fusion(cfg),
        DatasetKind::Thermal => Dataset::thermal_hydraulics(cfg),
    }
}

fn limits_for(kind: DatasetKind, seeding: Seeding) -> StepLimits {
    let mut l = StepLimits::default();
    match kind {
        DatasetKind::Astro => {
            l.h0 = 1e-3;
            l.h_max = 0.02;
            l.max_steps = 2_500;
            l.min_speed = 1e-4;
        }
        DatasetKind::Fusion => {
            l.h0 = 1e-2;
            l.h_max = 0.08;
            l.max_steps = 1_500;
        }
        DatasetKind::Thermal => {
            l.h0 = 1e-3;
            l.h_max = 0.01;
            l.max_steps = if seeding == Seeding::Dense { 2_500 } else { 1_000 };
            l.max_arc_length = if seeding == Seeding::Dense { 3.0 } else { 10.0 };
        }
    }
    l
}

/// Execute a parsed command; returns the process exit code.
/// The `serve-bench --replicas N` knob set, peeled off the flat
/// [`Command::ServeBench`] variant.
struct ServeBenchCluster {
    dataset: DatasetKind,
    seeds: usize,
    cache: usize,
    shards: usize,
    queue: usize,
    batch: streamline_core::BatchParams,
    json: Option<String>,
    trace: Option<String>,
    trace_bucket_ms: u64,
    metrics: Option<String>,
    replicas: usize,
    replication: usize,
    traffic: TrafficShape,
    zipf_s: f64,
    diurnal: f64,
    burst: f64,
    qps: f64,
    duration_s: f64,
    replica_kill: Option<(usize, f64)>,
}

/// Open-loop trace replay against the sharded cluster — the
/// `serve-bench --replicas > 1` path.
fn serve_bench_cluster(a: ServeBenchCluster) -> i32 {
    use streamline_bench::{
        run_cluster_trace, ClusterTraceConfig, SweepScale, TraceWorkloadConfig, Workload,
    };
    use streamline_cluster::ClusterConfig;
    let workload = match a.dataset {
        DatasetKind::Astro => Workload::Astro,
        DatasetKind::Fusion => Workload::Fusion,
        DatasetKind::Thermal => Workload::Thermal,
    };
    let cfg = ClusterTraceConfig {
        workload,
        scale: SweepScale::Quick,
        cluster: ClusterConfig {
            replicas: a.replicas,
            replication: a.replication,
            cache_blocks: a.cache,
            cache_shards: a.shards,
            queue_capacity: a.queue,
            batch: a.batch.resolve(),
            trace_bucket: a
                .trace
                .is_some()
                .then(|| std::time::Duration::from_millis(a.trace_bucket_ms.max(1))),
            ..ClusterConfig::default()
        },
        trace: TraceWorkloadConfig {
            base_qps: a.qps,
            duration_s: a.duration_s,
            zipf_s: match a.traffic {
                TrafficShape::Zipf => a.zipf_s,
                TrafficShape::Uniform => 0.0,
            },
            seeds_per_request: a.seeds,
            diurnal_amplitude: a.diurnal,
            burst_multiplier: a.burst,
            ..TraceWorkloadConfig::default()
        },
        replica_kill: a.replica_kill,
        emit_prometheus: a.metrics.is_some(),
        ..ClusterTraceConfig::default()
    };
    eprintln!(
        "serve-bench: {} workload, {} replicas (replication {}), open-loop {} trace, \
         {:.0} req/s x {}s{} ...",
        workload.label(),
        a.replicas,
        a.replication,
        match a.traffic {
            TrafficShape::Zipf => format!("zipf(s={})", a.zipf_s),
            TrafficShape::Uniform => "uniform".into(),
        },
        a.qps,
        a.duration_s,
        match a.replica_kill {
            Some((r, t)) => format!(", killing replica {r} at t={t}s"),
            None => String::new(),
        }
    );
    let report = run_cluster_trace(&cfg);
    let m = &report.metrics;
    println!(
        "requests  answered {}  gone {}  rejected {}  (of {} arrivals)",
        report.answered, report.gone, report.rejected, report.arrivals
    );
    println!(
        "latency   p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        m.latency_p50_ms, m.latency_p95_ms, m.latency_p99_ms
    );
    println!(
        "cluster   handoffs {} ({} B)  redispatches {} ({} B)  hot-local {}  deaths {}",
        m.handoffs,
        m.handoff_bytes,
        m.redispatches,
        m.redispatch_bytes,
        m.hot_local_hits,
        m.replica_deaths
    );
    for r in &m.per_replica {
        println!(
            "replica {} {}  done {:>6}  handoffs-out {:>5}  hit-rate {:.3}  \
             p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
            r.replica,
            if r.alive { "up  " } else { "DEAD" },
            r.streamlines_completed,
            r.handoffs_out,
            r.cache_hit_rate,
            r.latency_p50_ms,
            r.latency_p95_ms,
            r.latency_p99_ms
        );
    }
    println!(
        "ledger    admitted {}  completed {}  gone {}  conservation {}",
        m.submitted,
        m.completed,
        m.requests_gone,
        if report.conservation_holds() { "exact" } else { "VIOLATED" }
    );
    if let Some(path) = a.json {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s + "\n") {
                    eprintln!("error writing {path}: {e}");
                    return 1;
                }
                eprintln!("wrote {path}");
            }
            Err(e) => {
                eprintln!("serialization error: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = a.trace {
        let tf = report.trace.as_ref().expect("trace_bucket was set");
        if let Err(e) = tf.validate() {
            eprintln!("internal error: emitted trace is invalid: {e}");
            return 1;
        }
        match serde_json::to_string_pretty(tf) {
            Ok(s) => {
                if let Err(e) = std::fs::write(&path, s + "\n") {
                    eprintln!("error writing {path}: {e}");
                    return 1;
                }
                eprintln!("wrote {path}");
            }
            Err(e) => {
                eprintln!("serialization error: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = a.metrics {
        let text = report.prometheus.as_ref().expect("emit_prometheus was set");
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("error writing {path}: {e}");
            return 1;
        }
        eprintln!("wrote {path}");
    }
    // Without a kill every admitted request must be answered; with one,
    // `ServiceGone` is legal and the exact ledger is the contract.
    let healthy = report.conservation_holds() && (a.replica_kill.is_some() || report.gone == 0);
    if healthy {
        0
    } else {
        2
    }
}

pub fn execute(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{}", crate::args::USAGE);
            0
        }
        Command::Info => {
            println!("datasets (512 blocks each at default config):");
            for kind in [DatasetKind::Astro, DatasetKind::Fusion, DatasetKind::Thermal] {
                let ds = build_dataset(kind);
                println!(
                    "  {:<20} blocks {:?}x{:?} cells, domain {:?} -> {:?}, paper seeds {} sparse / {} dense",
                    ds.name,
                    ds.decomp.blocks_per_axis,
                    ds.decomp.cells_per_block,
                    ds.decomp.domain.min.to_array(),
                    ds.decomp.domain.max.to_array(),
                    ds.paper_seed_count(Seeding::Sparse),
                    ds.paper_seed_count(Seeding::Dense),
                );
            }
            println!(
                "\nalgorithms: static (§4.1), lod (§4.2), hybrid (§4.3), \
                 steal (decentralized work stealing), auto (§6 advisor)"
            );
            0
        }
        Command::Classify { dataset, seeding, seeds } => {
            let ds = build_dataset(dataset);
            let n = seeds.unwrap_or_else(|| ds.paper_seed_count(seeding));
            let set = ds.seeds_with_count(seeding, n);
            let cfg = RunConfig::new(Algorithm::HybridMasterSlave, 64);
            let profile = classify(&ds, &set, &cfg);
            println!(
                "problem: {} / {} / {} seeds\n  data: {:.1} GB ({} blocks)\n  fits in one rank's cache: {}\n  seed set small: {}\n  seed extent fraction: {:.3} (dense: {})\n  seeded block fraction: {:.3}",
                ds.name,
                seeding.label(),
                n,
                profile.data_bytes / 1e9,
                ds.decomp.num_blocks(),
                profile.fits_in_memory,
                profile.seed_set_small,
                profile.seed_extent_fraction,
                profile.seeds_dense,
                profile.seeded_block_fraction,
            );
            let rec = recommend(&profile, FlowKnowledge::Unknown);
            println!("\nadvisor (§6, flow unknown): {} — {}", rec.algorithm.label(), rec.rationale);
            0
        }
        Command::Run {
            dataset,
            seeding,
            algorithm,
            procs,
            seeds,
            cache,
            steal,
            batch,
            chaos,
            chaos_seed,
            chaos_params,
            rank_chaos,
            ingest_epochs,
            ingest_interval,
            ingest_batch,
            detector,
            json,
            trace,
            trace_bucket,
            metrics,
            checkpoint,
            checkpoint_interval,
            kill_after_checkpoints,
            resume,
        } => {
            use std::sync::Arc;
            use streamline_core::{
                latest_checkpoint, resume_simulated_detailed_with_store,
                resume_simulated_open_detailed_with_store, run_simulated_checkpointed_with_store,
                run_simulated_detailed_with_store, run_simulated_open_checkpointed_with_store,
                run_simulated_open_detailed, run_simulated_open_traced, CheckpointOptions,
                SeedSource,
            };
            use streamline_iosim::{BlockStore, FaultPlan, FaultStore, FieldStore};
            if trace.is_some() && (checkpoint.is_some() || resume.is_some()) {
                eprintln!("error: --trace cannot be combined with --checkpoint/--resume");
                return 64;
            }
            if resume.is_some() && checkpoint.is_some() {
                eprintln!("error: --resume and --checkpoint are mutually exclusive");
                return 64;
            }
            if chaos && (trace.is_some() || checkpoint.is_some() || resume.is_some()) {
                eprintln!("error: --chaos cannot be combined with --trace/--checkpoint/--resume");
                return 64;
            }
            if chaos && ingest_epochs > 0 {
                eprintln!("error: --chaos cannot be combined with --ingest-epochs");
                return 64;
            }
            // Parsing already validates the knobs; re-check here so
            // programmatic construction cannot smuggle bad values past the
            // typed error into a driver panic.
            if let Err(e) = steal.validate() {
                eprintln!("error: {e}");
                return 64;
            }
            if let Err(e) = batch.validate() {
                eprintln!("error: {e}");
                return 64;
            }
            if let Err(e) = chaos_params.validate() {
                eprintln!("error: {e}");
                return 64;
            }
            if let Some(rc) = &rank_chaos {
                if let Err(e) = rc.validate() {
                    eprintln!("error: {e}");
                    return 64;
                }
            }
            let ds = build_dataset(dataset);
            let n = seeds.unwrap_or_else(|| ds.paper_seed_count(seeding));
            let set = ds.seeds_with_count(seeding, n);
            // Open-loop schedule: `--ingest-epochs` batches of dense-layout
            // seeds arriving every `--ingest-interval` virtual seconds. The
            // schedule is a pure function of the flags, so a resume under
            // the same flags rebuilds it bit-exactly.
            let source = (ingest_epochs > 0).then(|| {
                let extra = ds.seeds_with_count(Seeding::Dense, ingest_epochs * ingest_batch);
                let epochs: Vec<(f64, Vec<Vec3>)> = (0..ingest_epochs)
                    .map(|e| {
                        let at = (e + 1) as f64 * ingest_interval;
                        (at, extra.points[e * ingest_batch..(e + 1) * ingest_batch].to_vec())
                    })
                    .collect();
                SeedSource::new(&set, epochs)
                    .expect("flag validation guarantees a well-formed schedule")
            });
            let mut cfg = RunConfig::new(Algorithm::HybridMasterSlave, procs);
            cfg.limits = limits_for(dataset, seeding);
            cfg.cache_blocks = cache;
            cfg.steal = steal;
            cfg.batch = batch;
            cfg.rank_chaos = rank_chaos;
            cfg.detector = detector;
            cfg.algorithm = match algorithm {
                AlgoChoice::Fixed(a) => a,
                AlgoChoice::Auto => {
                    let rec = recommend(&classify(&ds, &set, &cfg), FlowKnowledge::Unknown);
                    eprintln!("advisor picked {}: {}", rec.algorithm.label(), rec.rationale);
                    rec.algorithm
                }
            };
            eprintln!(
                "running {} on {} / {} ({} seeds, {} ranks) ...",
                cfg.algorithm.label(),
                ds.name,
                seeding.label(),
                n,
                procs
            );
            if let Some(src) = &source {
                eprintln!(
                    "open-loop: {} arrival epochs of {ingest_batch} seeds every \
                     {ingest_interval}s ({} seeds total), {:?} detector",
                    ingest_epochs,
                    src.total_seeds(),
                    cfg.detector,
                );
            }
            if let Some(rc) = &cfg.rank_chaos {
                match rc.kill {
                    Some((rank, time)) => {
                        eprintln!("rank-chaos: pinned kill of rank {rank} at t={time}s")
                    }
                    None => eprintln!(
                        "rank-chaos: seed {:#x}, kill prob {}, window [{}, {}]s",
                        rc.seed, rc.kill_prob, rc.window.0, rc.window.1
                    ),
                }
            }
            let mut ckpt_snapshots = 0u64;
            let mut ckpt_bytes = 0u64;
            let mut ckpt_restores = 0u64;
            let (report, finished, timeline) = if let Some(from) = resume {
                let given = std::path::PathBuf::from(&from);
                let path = if given.is_dir() {
                    match latest_checkpoint(&given) {
                        Ok(Some(p)) => p,
                        Ok(None) => {
                            eprintln!("error: no ckpt-*.ckpt files in {from}");
                            return 1;
                        }
                        Err(e) => {
                            eprintln!("error scanning {from}: {e}");
                            return 1;
                        }
                    }
                } else {
                    given
                };
                eprintln!("resuming from {} ...", path.display());
                let store = Arc::new(FieldStore::new(ds.clone()));
                let resumed = match &source {
                    Some(src) => {
                        resume_simulated_open_detailed_with_store(&ds, src, &cfg, store, &path)
                    }
                    None => resume_simulated_detailed_with_store(&ds, &set, &cfg, store, &path),
                };
                match resumed {
                    Ok((r, f)) => {
                        ckpt_restores = 1;
                        (r, f, None)
                    }
                    Err(e) => {
                        eprintln!("cannot resume from {}: {e}", path.display());
                        return 1;
                    }
                }
            } else if let Some(dir) = checkpoint {
                let opts = CheckpointOptions {
                    kill_after: kill_after_checkpoints,
                    ..CheckpointOptions::new(&dir, checkpoint_interval)
                };
                let store = Arc::new(FieldStore::new(ds.clone()));
                let outcome = match &source {
                    Some(src) => {
                        run_simulated_open_checkpointed_with_store(&ds, src, &cfg, store, &opts)
                    }
                    None => run_simulated_checkpointed_with_store(&ds, &set, &cfg, store, &opts),
                };
                match outcome {
                    Ok(out) => {
                        ckpt_snapshots = out.checkpoints.len() as u64;
                        ckpt_bytes = out.bytes_written;
                        if let Some(last) = out.checkpoints.last() {
                            eprintln!(
                                "wrote {ckpt_snapshots} snapshots ({ckpt_bytes} bytes), \
                                 latest {}",
                                last.display()
                            );
                        }
                        match out.result {
                            Some((r, f)) => (r, f, None),
                            None => {
                                // The kill half of the crash/restart smoke
                                // test: abandoning after N snapshots is the
                                // requested outcome, not a failure.
                                eprintln!(
                                    "run abandoned after {ckpt_snapshots} snapshots as \
                                     requested; continue with: slrepro run ... --resume {dir}"
                                );
                                return 0;
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("checkpoint error: {e}");
                        return 1;
                    }
                }
            } else if chaos {
                let plan = FaultPlan::random(chaos_seed, ds.decomp.num_blocks(), &chaos_params)
                    .expect("chaos params validated at the CLI boundary");
                eprintln!(
                    "chaos: {} faulty blocks from seed {chaos_seed:#x} ({} permanently lost)",
                    plan.len(),
                    plan.unavailable_blocks().len(),
                );
                let inner: Arc<dyn BlockStore> = Arc::new(FieldStore::new(ds.clone()));
                let fs = Arc::new(FaultStore::new(inner, plan));
                let (r, f) = run_simulated_detailed_with_store(&ds, &set, &cfg, fs.clone());
                let c = fs.counters();
                eprintln!(
                    "chaos: injected {} faults; {} retries, {} load failures, {} streamlines \
                     terminated unavailable",
                    c.faults_injected(),
                    r.load_retries,
                    r.load_failures,
                    r.unavailable_terminations,
                );
                (r, f, None)
            } else if trace.is_some() {
                let (r, f, t, pingpong) = match &source {
                    Some(src) => run_simulated_open_traced(&ds, src, &cfg, trace_bucket),
                    None => run_simulated_traced(&ds, &set, &cfg, trace_bucket),
                };
                (r, f, Some((t, pingpong)))
            } else if let Some(src) = &source {
                let (r, f) = run_simulated_open_detailed(&ds, src, &cfg);
                (r, f, None)
            } else {
                let (r, f) = run_simulated_detailed(&ds, &set, &cfg);
                (r, f, None)
            };
            println!("{}", report.summary());
            if report.outcome.completed() {
                print!("{}", summarize(&finished));
            }
            println!(
                "  compute {:.3}s  idle {:.3}s  imbalance {:.2}  steps {}  events {}",
                report.compute_time,
                report.idle_time,
                report.load_imbalance(),
                report.total_steps,
                report.events,
            );
            if report.ingest_epochs > 1 {
                println!(
                    "  ingest    epochs {}  frontier-confirmed {}  lag mean {:.4}s  max {:.4}s",
                    report.ingest_epochs,
                    report.ingest_frontier_epochs,
                    report.ingest_lag_mean,
                    report.ingest_lag_max,
                );
            }
            if !report.rank_deaths.is_empty() {
                println!(
                    "  rank-chaos  deaths {:?}  lost {}  reassigned {}  detection mean {:.4}s \
                     max {:.4}s  dropped events {}",
                    report.rank_deaths,
                    report.rank_lost_streamlines,
                    report.reassigned_streamlines,
                    report.detection_latency_mean,
                    report.detection_latency_max,
                    report.dropped_events,
                );
            }
            if let Some(path) = json {
                match serde_json::to_string_pretty(&report) {
                    Ok(s) => {
                        if let Err(e) = std::fs::write(&path, s) {
                            eprintln!("error writing {path}: {e}");
                            return 1;
                        }
                        eprintln!("wrote {path}");
                    }
                    Err(e) => {
                        eprintln!("serialization error: {e}");
                        return 1;
                    }
                }
            }
            if let (Some(path), Some((timeline, pingpong))) = (trace, timeline) {
                let mut tf = timeline.to_trace("virtual");
                tf.schedule = Some(
                    streamline_obs::ScheduleTrace::from_timeline(&timeline, &pingpong)
                        .with_rank_deaths(&timeline, &report.rank_deaths)
                        .with_ingest(
                            &timeline,
                            &report.ingest_epoch_arrivals,
                            &report.ingest_epoch_completions,
                        ),
                );
                if let Err(e) = tf.validate() {
                    eprintln!("internal error: emitted trace is invalid: {e}");
                    return 1;
                }
                match serde_json::to_string_pretty(&tf) {
                    Ok(s) => {
                        if let Err(e) = std::fs::write(&path, s + "\n") {
                            eprintln!("error writing {path}: {e}");
                            return 1;
                        }
                        eprintln!("wrote {path}");
                    }
                    Err(e) => {
                        eprintln!("serialization error: {e}");
                        return 1;
                    }
                }
            }
            if let Some(path) = metrics {
                let registry = report.to_registry();
                registry.set_counter(streamline_obs::names::CKPT_SNAPSHOTS_TOTAL, ckpt_snapshots);
                registry.set_counter(streamline_obs::names::CKPT_WRITE_BYTES_TOTAL, ckpt_bytes);
                registry.set_counter(streamline_obs::names::CKPT_RESTORES_TOTAL, ckpt_restores);
                let text = registry.render_prometheus();
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("error writing {path}: {e}");
                    return 1;
                }
                eprintln!("wrote {path}");
            }
            if report.outcome.completed() {
                0
            } else {
                2
            }
        }
        Command::ServeBench {
            dataset,
            clients,
            requests,
            seeds,
            workers,
            cache,
            shards,
            queue,
            batch,
            deadline_ms,
            chaos,
            chaos_seed,
            json,
            trace,
            trace_bucket_ms,
            metrics,
            warm_start,
            replicas,
            replication,
            traffic,
            zipf_s,
            diurnal,
            burst,
            qps,
            duration_s,
            replica_kill,
        } => {
            use streamline_bench::{ChaosConfig, LoadGenConfig, SweepScale, Workload};
            use streamline_iosim::ChaosParams;
            use streamline_serve::ServiceConfig;
            if replicas > 1 {
                return serve_bench_cluster(ServeBenchCluster {
                    dataset,
                    seeds,
                    cache,
                    shards,
                    queue,
                    batch,
                    json,
                    trace,
                    trace_bucket_ms,
                    metrics,
                    replicas,
                    replication,
                    traffic,
                    zipf_s,
                    diurnal,
                    burst,
                    qps,
                    duration_s,
                    replica_kill,
                });
            }
            if seeds > queue {
                eprintln!(
                    "error: a request of {seeds} seeds can never be admitted to a {queue}-seed \
                     queue; raise --queue or lower --seeds"
                );
                return 64;
            }
            let workload = match dataset {
                DatasetKind::Astro => Workload::Astro,
                DatasetKind::Fusion => Workload::Fusion,
                DatasetKind::Thermal => Workload::Thermal,
            };
            let cfg = LoadGenConfig {
                workload,
                scale: SweepScale::Quick,
                clients,
                requests_per_client: requests,
                seeds_per_request: seeds,
                deadline: deadline_ms.map(std::time::Duration::from_millis),
                service: ServiceConfig {
                    workers,
                    cache_blocks: cache,
                    cache_shards: shards,
                    queue_capacity: queue,
                    batch: batch.resolve(),
                    trace_bucket: trace
                        .is_some()
                        .then(|| std::time::Duration::from_millis(trace_bucket_ms.max(1))),
                    ..ServiceConfig::default()
                },
                chaos: chaos
                    .then(|| ChaosConfig { seed: chaos_seed, params: ChaosParams::default() }),
                emit_prometheus: metrics.is_some(),
                warm_start: warm_start.map(std::path::PathBuf::from),
            };
            eprintln!(
                "serve-bench: {} workload, {clients} clients x {requests} requests x {seeds} \
                 seeds, {workers} workers, {cache}-block cache{} ...",
                workload.label(),
                if chaos { format!(", chaos seed {chaos_seed:#x}") } else { String::new() }
            );
            let report = streamline_bench::run_load(&cfg);
            let m = &report.metrics;
            println!(
                "requests  completed {}  rejected(retried) {}  deadline-exceeded {}",
                report.completed, report.rejections, report.deadline_exceeded
            );
            println!(
                "latency   p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
                m.latency_p50_ms, m.latency_p95_ms, m.latency_p99_ms
            );
            println!(
                "rate      {:.0} req/s  {:.0} streamlines/s  ({} streamlines, {:.2}s wall)",
                report.completed as f64 / report.wall_secs,
                report.streamlines as f64 / report.wall_secs,
                report.streamlines,
                report.wall_secs
            );
            println!(
                "cache     hit rate {:.3}  efficiency E {:.3}  loaded {}  purged {}  resident {}/{}",
                m.cache_hit_rate,
                m.block_efficiency,
                m.cache.loaded,
                m.cache.purged,
                m.cache_resident,
                m.cache_capacity
            );
            if report.warm_start_blocks > 0 {
                println!("warm      prefetched {} blocks from manifest", report.warm_start_blocks);
            }
            if chaos {
                println!(
                    "chaos     faults {}  retries {}  load-failures {}  fast-fails {}  \
                     quarantined {}  partial {}  unavailable {}",
                    report.faults_injected,
                    m.load_retries,
                    m.load_failures,
                    m.fast_fails,
                    m.blocks_quarantined,
                    m.partial,
                    m.streamlines_unavailable
                );
            }
            if let Some(path) = json {
                match serde_json::to_string_pretty(&report) {
                    Ok(s) => {
                        if let Err(e) = std::fs::write(&path, s) {
                            eprintln!("error writing {path}: {e}");
                            return 1;
                        }
                        eprintln!("wrote {path}");
                    }
                    Err(e) => {
                        eprintln!("serialization error: {e}");
                        return 1;
                    }
                }
            }
            if let Some(path) = trace {
                let tf = report.trace.as_ref().expect("trace_bucket was set");
                if let Err(e) = tf.validate() {
                    eprintln!("internal error: emitted trace is invalid: {e}");
                    return 1;
                }
                match serde_json::to_string_pretty(tf) {
                    Ok(s) => {
                        if let Err(e) = std::fs::write(&path, s + "\n") {
                            eprintln!("error writing {path}: {e}");
                            return 1;
                        }
                        eprintln!("wrote {path}");
                    }
                    Err(e) => {
                        eprintln!("serialization error: {e}");
                        return 1;
                    }
                }
            }
            if let Some(path) = metrics {
                let text = report.prometheus.as_ref().expect("emit_prometheus was set");
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("error writing {path}: {e}");
                    return 1;
                }
                eprintln!("wrote {path}");
            }
            if report.completed == (clients * requests) as u64 {
                0
            } else {
                2
            }
        }
        Command::ObsCheck { trace, metrics, ckpt } => {
            let mut ok = true;
            if let Some(path) = trace {
                match std::fs::read_to_string(&path) {
                    Ok(text) => match serde_json::from_str::<streamline_obs::TraceFile>(&text) {
                        Ok(tf) => match tf.validate() {
                            Ok(()) => {
                                let t = &tf.totals;
                                println!(
                                    "{path}: valid {} trace, {} ranks, {} buckets of {}s \
                                     (compute {:.3}s io {:.3}s comm {:.3}s idle {:.3}s)",
                                    tf.clock,
                                    tf.n_ranks,
                                    tf.ranks.first().map(|r| r.buckets.len()).unwrap_or(0),
                                    tf.bucket_width,
                                    t.compute,
                                    t.io,
                                    t.comm,
                                    t.idle,
                                );
                            }
                            Err(e) => {
                                eprintln!("{path}: invalid trace: {e}");
                                ok = false;
                            }
                        },
                        Err(e) => {
                            eprintln!("{path}: not trace JSON: {e}");
                            ok = false;
                        }
                    },
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        ok = false;
                    }
                }
            }
            if let Some(path) = metrics {
                match std::fs::read_to_string(&path) {
                    Ok(text) => match streamline_obs::prom::parse_text(&text) {
                        Ok(samples) if samples.is_empty() => {
                            eprintln!("{path}: no metric samples");
                            ok = false;
                        }
                        Ok(samples) => {
                            println!("{path}: valid Prometheus text, {} samples", samples.len());
                        }
                        Err(e) => {
                            eprintln!("{path}: invalid Prometheus text: {e}");
                            ok = false;
                        }
                    },
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        ok = false;
                    }
                }
            }
            if let Some(path) = ckpt {
                match streamline_ckpt::validate(std::path::Path::new(&path)) {
                    Ok(summary) => {
                        let m = &summary.meta;
                        println!(
                            "{path}: valid {} checkpoint #{} ({} on {}, {} ranks, {} seeds, \
                             taken at t={:.6}s), {} sections, {} bytes, all CRCs good",
                            m.kind,
                            m.snapshot_seq,
                            m.algorithm,
                            m.dataset,
                            m.n_procs,
                            m.n_seeds,
                            m.taken_at,
                            summary.sections.len(),
                            summary.file_bytes,
                        );
                    }
                    Err(e) => {
                        eprintln!("{path}: invalid checkpoint: {e}");
                        ok = false;
                    }
                }
            }
            if ok {
                0
            } else {
                1
            }
        }
        Command::BenchKernels { smoke, out, force } => {
            use streamline_bench::{run_kernels, KernelsConfig};
            // Refuse to clobber an earlier report unless asked: benchmark
            // trajectories are the artifact, losing one silently is worse
            // than failing fast.
            if !force && std::path::Path::new(&out).exists() {
                eprintln!("error: {out} already exists; pass --force to overwrite");
                return 64;
            }
            let report = run_kernels(&KernelsConfig { smoke });
            println!("{}", report.summary());
            match serde_json::to_string_pretty(&report) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(&out, s + "\n") {
                        eprintln!("error writing {out}: {e}");
                        return 1;
                    }
                    eprintln!("wrote {out}");
                }
                Err(e) => {
                    eprintln!("serialization error: {e}");
                    return 1;
                }
            }
            if report.bit_identical {
                0
            } else {
                2
            }
        }
        Command::BenchCkpt { smoke, json } => {
            use streamline_bench::{run_ckpt_overhead, CkptOverheadConfig};
            let report = run_ckpt_overhead(&CkptOverheadConfig { smoke });
            println!("{}", report.summary());
            if let Some(path) = json {
                match serde_json::to_string_pretty(&report) {
                    Ok(s) => {
                        if let Err(e) = std::fs::write(&path, s + "\n") {
                            eprintln!("error writing {path}: {e}");
                            return 1;
                        }
                        eprintln!("wrote {path}");
                    }
                    Err(e) => {
                        eprintln!("serialization error: {e}");
                        return 1;
                    }
                }
            }
            // Smoke runs are microsecond-scale and noise-dominated, so only
            // the correctness invariant gates them; the overhead budget
            // gates the full run.
            if report.all_resumes_bit_identical && (smoke || report.within_budget) {
                0
            } else {
                2
            }
        }
        Command::BenchDrivers { smoke, json } => {
            use streamline_bench::{run_drivers, DriversConfig};
            let report = run_drivers(&DriversConfig { smoke });
            println!("{}", report.summary());
            if let Some(path) = json {
                match serde_json::to_string_pretty(&report) {
                    Ok(s) => {
                        if let Err(e) = std::fs::write(&path, s + "\n") {
                            eprintln!("error writing {path}: {e}");
                            return 1;
                        }
                        eprintln!("wrote {path}");
                    }
                    Err(e) => {
                        eprintln!("serialization error: {e}");
                        return 1;
                    }
                }
            }
            if report.all_drivers_agree && report.rank_chaos_conserved {
                0
            } else {
                2
            }
        }
        Command::BenchCluster { smoke, out, metrics } => {
            use streamline_bench::{run_cluster_bench, ClusterBenchConfig};
            let cfg =
                if smoke { ClusterBenchConfig::smoke() } else { ClusterBenchConfig::default() };
            eprintln!(
                "bench-cluster: {} mode, replica counts {:?}, p99 budget {:.0} ms ...",
                if smoke { "smoke" } else { "full" },
                cfg.replicas,
                cfg.p99_budget_ms
            );
            let report = run_cluster_bench(&cfg);
            for cell in &report.cells {
                println!(
                    "replicas {:>2}: max sustainable {:>6.0} req/s  ({} rungs swept)",
                    cell.replicas,
                    cell.max_sustainable_qps,
                    cell.rungs.len()
                );
            }
            println!(
                "kill cell : {} answered, {} gone of {} submitted  conservation {}",
                report.kill.answered,
                report.kill.gone,
                report.kill.submitted,
                if report.kill.conservation_holds { "exact" } else { "VIOLATED" }
            );
            println!(
                "gates     : bit-identical {}  scaling {}",
                report.bit_identical,
                if report.smoke { "n/a (smoke)".into() } else { format!("{}", report.scaling_ok) }
            );
            match serde_json::to_string_pretty(&report) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(&out, s + "\n") {
                        eprintln!("error writing {out}: {e}");
                        return 1;
                    }
                    eprintln!("wrote {out}");
                }
                Err(e) => {
                    eprintln!("serialization error: {e}");
                    return 1;
                }
            }
            if let Some(path) = metrics {
                let text = report.prometheus.as_ref().expect("smoke embeds metrics");
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("error writing {path}: {e}");
                    return 1;
                }
                eprintln!("wrote {path}");
            }
            if report.healthy() {
                0
            } else {
                2
            }
        }
        Command::Trace { dataset, seeds, out, formats } => {
            let ds = build_dataset(dataset);
            let set = ds.seeds_with_count(Seeding::Sparse, seeds);
            let limits = limits_for(dataset, Seeding::Sparse);
            let field = &ds.field;
            let domain = ds.decomp.domain;
            let mut sample = |p: Vec3| Some(field.eval(p));
            let region = move |p: Vec3| domain.contains(p);
            let streams: Vec<Streamline> = set
                .points
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let mut sl = Streamline::new(StreamlineId(i as u32), p, limits.h0);
                    advect(&mut sl, &mut sample, &region, &limits, &Dopri5);
                    sl
                })
                .collect();
            let dir = std::path::Path::new(&out);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {out}: {e}");
                return 1;
            }
            for fmt in &formats {
                let path = dir.join(format!("{}.{fmt}", ds.name));
                let res = match fmt.as_str() {
                    "vtk" => vtk::write_polylines_file(&path, &streams),
                    "obj" => obj::write_lines_file(&path, &streams),
                    "csv" => csv::write_summary_file(&path, &streams),
                    "ppm" => {
                        let d = ds.decomp.domain;
                        let mut canvas = ppm::Canvas::new(
                            800,
                            (800.0 * d.size().y / d.size().x).round().max(64.0) as usize,
                            (d.min.x, d.min.y),
                            (d.max.x, d.max.y),
                            ppm::Projection::DropZ,
                        );
                        for (i, s) in streams.iter().enumerate() {
                            canvas.draw_streamline(s, ppm::palette(i));
                        }
                        canvas.write_ppm_file(&path)
                    }
                    other => {
                        eprintln!("unknown format '{other}' (vtk|obj|csv|ppm)");
                        return 1;
                    }
                };
                match res {
                    Ok(()) => eprintln!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("error writing {}: {e}", path.display());
                        return 1;
                    }
                }
            }
            0
        }
        Command::Ftle { out, nx, ny, horizon } => {
            let field = UnsteadyDoubleGyre::standard();
            let limits =
                StepLimits { h0: 1e-2, h_max: 0.1, max_steps: 100_000, ..Default::default() };
            eprintln!("computing {nx}x{ny} FTLE of the unsteady double gyre ...");
            let f = ftle_grid(&field, [0.0, 0.0], [2.0, 1.0], 0.0, nx, ny, 0.0, horizon, &limits);
            // Grayscale render.
            let mut canvas =
                ppm::Canvas::new(nx, ny, (0.0, 0.0), (2.0, 1.0), ppm::Projection::DropZ);
            let max = f.max_value().max(1e-9);
            for j in 0..ny {
                for i in 0..nx {
                    let v = f.get(i, j);
                    if v.is_finite() {
                        let g = ((v.max(0.0) / max) * 255.0) as u8;
                        let p = Vec3::new(
                            i as f64 / (nx - 1) as f64 * 2.0,
                            j as f64 / (ny - 1) as f64,
                            0.0,
                        );
                        canvas.plot(p, [g, g, g]);
                    }
                }
            }
            match canvas.write_ppm_file(std::path::Path::new(&out)) {
                Ok(()) => {
                    eprintln!("wrote {out} (max FTLE {:.3})", max);
                    0
                }
                Err(e) => {
                    eprintln!("error writing {out}: {e}");
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_core::{BatchParams, StealParams};

    #[test]
    fn limits_vary_by_dataset() {
        let a = limits_for(DatasetKind::Astro, Seeding::Sparse);
        let t = limits_for(DatasetKind::Thermal, Seeding::Dense);
        assert!(a.h_max > t.h_max);
        assert!(t.max_arc_length < f64::INFINITY);
    }

    #[test]
    fn datasets_build() {
        for kind in [DatasetKind::Astro, DatasetKind::Fusion, DatasetKind::Thermal] {
            let ds = build_dataset(kind);
            assert_eq!(ds.decomp.num_blocks(), 512);
        }
    }

    #[test]
    fn help_and_info_succeed() {
        assert_eq!(execute(Command::Help), 0);
        assert_eq!(execute(Command::Info), 0);
    }

    #[test]
    fn run_small_completes() {
        let code = execute(Command::Run {
            dataset: DatasetKind::Thermal,
            seeding: Seeding::Sparse,
            algorithm: AlgoChoice::Fixed(Algorithm::LoadOnDemand),
            procs: 4,
            seeds: Some(32),
            cache: 16,
            steal: StealParams::default(),
            batch: BatchParams::default(),
            chaos: false,
            chaos_seed: 0,
            chaos_params: streamline_iosim::ChaosParams::default(),
            rank_chaos: None,
            ingest_epochs: 0,
            ingest_interval: 2.0e-4,
            ingest_batch: 32,
            detector: streamline_core::DetectorKind::ClosedSet,
            json: None,
            trace: None,
            trace_bucket: 0.05,
            metrics: None,
            checkpoint: None,
            checkpoint_interval: 0.1,
            kill_after_checkpoints: None,
            resume: None,
        });
        assert_eq!(code, 0);
    }

    fn ckpt_run_cmd(
        checkpoint: Option<String>,
        kill_after_checkpoints: Option<u64>,
        resume: Option<String>,
    ) -> Command {
        Command::Run {
            dataset: DatasetKind::Thermal,
            seeding: Seeding::Sparse,
            algorithm: AlgoChoice::Fixed(Algorithm::HybridMasterSlave),
            procs: 4,
            seeds: Some(32),
            cache: 16,
            steal: StealParams::default(),
            batch: BatchParams::default(),
            chaos: false,
            chaos_seed: 0,
            chaos_params: streamline_iosim::ChaosParams::default(),
            rank_chaos: None,
            ingest_epochs: 0,
            ingest_interval: 2.0e-4,
            ingest_batch: 32,
            detector: streamline_core::DetectorKind::ClosedSet,
            json: None,
            trace: None,
            trace_bucket: 0.05,
            metrics: None,
            checkpoint,
            checkpoint_interval: 2.0e-4,
            kill_after_checkpoints,
            resume,
        }
    }

    #[test]
    fn run_kill_and_resume_round_trips_through_the_cli() {
        let dir = std::env::temp_dir().join(format!("slrepro-ckpt-{}", std::process::id()));
        let ckpt_dir = dir.join("ckpts").to_string_lossy().into_owned();
        // Kill after two snapshots: exit 0 (the requested outcome),
        // checkpoints on disk.
        assert_eq!(execute(ckpt_run_cmd(Some(ckpt_dir.clone()), Some(2), None)), 0);
        let latest = streamline_core::latest_checkpoint(std::path::Path::new(&ckpt_dir))
            .unwrap()
            .expect("kill wrote snapshots");
        // The snapshot passes obs-check --ckpt.
        let check = execute(Command::ObsCheck {
            trace: None,
            metrics: None,
            ckpt: Some(latest.to_string_lossy().into_owned()),
        });
        assert_eq!(check, 0, "obs-check must accept what run --checkpoint emits");
        // Resume from the directory (latest snapshot) and complete.
        assert_eq!(execute(ckpt_run_cmd(None, None, Some(ckpt_dir))), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_with_trace_emits_files_that_obs_check_accepts() {
        let dir = std::env::temp_dir().join(format!("slrepro-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json").to_string_lossy().into_owned();
        let metrics_path = dir.join("metrics.prom").to_string_lossy().into_owned();
        let code = execute(Command::Run {
            dataset: DatasetKind::Thermal,
            seeding: Seeding::Sparse,
            algorithm: AlgoChoice::Fixed(Algorithm::LoadOnDemand),
            procs: 4,
            seeds: Some(32),
            cache: 16,
            steal: StealParams::default(),
            batch: BatchParams::default(),
            chaos: false,
            chaos_seed: 0,
            chaos_params: streamline_iosim::ChaosParams::default(),
            rank_chaos: None,
            ingest_epochs: 0,
            ingest_interval: 2.0e-4,
            ingest_batch: 32,
            detector: streamline_core::DetectorKind::ClosedSet,
            json: None,
            trace: Some(trace_path.clone()),
            trace_bucket: 0.05,
            metrics: Some(metrics_path.clone()),
            checkpoint: None,
            checkpoint_interval: 0.1,
            kill_after_checkpoints: None,
            resume: None,
        });
        assert_eq!(code, 0);
        let check = execute(Command::ObsCheck {
            trace: Some(trace_path),
            metrics: Some(metrics_path),
            ckpt: None,
        });
        assert_eq!(check, 0, "obs-check must accept what run emits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_with_rank_chaos_reports_faults_and_validates_obs() {
        let dir = std::env::temp_dir().join(format!("slrepro-rankchaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json").to_string_lossy().into_owned();
        let metrics_path = dir.join("metrics.prom").to_string_lossy().into_owned();
        let code = execute(Command::Run {
            dataset: DatasetKind::Thermal,
            seeding: Seeding::Sparse,
            algorithm: AlgoChoice::Fixed(Algorithm::LoadOnDemand),
            procs: 4,
            seeds: Some(32),
            cache: 16,
            steal: StealParams::default(),
            batch: BatchParams::default(),
            chaos: false,
            chaos_seed: 0,
            chaos_params: streamline_iosim::ChaosParams::default(),
            rank_chaos: Some(streamline_core::RankChaos::one_kill(3, 1.0e-4)),
            ingest_epochs: 0,
            ingest_interval: 2.0e-4,
            ingest_batch: 32,
            detector: streamline_core::DetectorKind::ClosedSet,
            json: None,
            trace: Some(trace_path.clone()),
            trace_bucket: 0.05,
            metrics: Some(metrics_path.clone()),
            checkpoint: None,
            checkpoint_interval: 0.1,
            kill_after_checkpoints: None,
            resume: None,
        });
        assert_eq!(code, 0, "a killed slave rank must not fail the run");
        // The death shows up in the Prometheus export and the trace still
        // passes obs-check.
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(prom.contains("streamline_faults_rank_deaths_total 1"), "{prom}");
        let trace_text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace_text.contains("rank_deaths"), "trace carries the death series");
        let check = execute(Command::ObsCheck {
            trace: Some(trace_path),
            metrics: Some(metrics_path),
            ckpt: None,
        });
        assert_eq!(check, 0, "obs-check must accept what a rank-chaos run emits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn open_run_cmd(
        trace: Option<String>,
        metrics: Option<String>,
        checkpoint: Option<String>,
        kill_after_checkpoints: Option<u64>,
        resume: Option<String>,
    ) -> Command {
        Command::Run {
            dataset: DatasetKind::Thermal,
            seeding: Seeding::Sparse,
            algorithm: AlgoChoice::Fixed(Algorithm::LoadOnDemand),
            procs: 4,
            seeds: Some(32),
            cache: 16,
            steal: StealParams::default(),
            batch: BatchParams::default(),
            chaos: false,
            chaos_seed: 0,
            chaos_params: streamline_iosim::ChaosParams::default(),
            rank_chaos: None,
            ingest_epochs: 2,
            ingest_interval: 2.0e-4,
            ingest_batch: 8,
            detector: streamline_core::DetectorKind::Frontier,
            json: None,
            trace,
            trace_bucket: 0.05,
            metrics,
            checkpoint,
            checkpoint_interval: 2.0e-4,
            kill_after_checkpoints,
            resume,
        }
    }

    #[test]
    fn open_loop_run_emits_frontier_obs_that_obs_check_accepts() {
        let dir = std::env::temp_dir().join(format!("slrepro-open-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json").to_string_lossy().into_owned();
        let metrics_path = dir.join("metrics.prom").to_string_lossy().into_owned();
        let code = execute(open_run_cmd(
            Some(trace_path.clone()),
            Some(metrics_path.clone()),
            None,
            None,
            None,
        ));
        assert_eq!(code, 0, "an open-loop run must complete");
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(prom.contains("streamline_run_ingest_epochs 3"), "{prom}");
        assert!(prom.contains("streamline_run_frontier_epochs 3"), "{prom}");
        assert!(prom.contains("streamline_run_frontier_lag_mean_seconds"), "{prom}");
        let trace_text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(
            trace_text.contains("ingest_epochs_cumulative"),
            "trace carries the ingest staircase"
        );
        assert!(
            trace_text.contains("frontier_epochs_cumulative"),
            "trace carries the frontier staircase"
        );
        let check = execute(Command::ObsCheck {
            trace: Some(trace_path),
            metrics: Some(metrics_path),
            ckpt: None,
        });
        assert_eq!(check, 0, "obs-check must accept what an open-loop run emits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_loop_kill_and_resume_round_trips_through_the_cli() {
        let dir = std::env::temp_dir().join(format!("slrepro-openckpt-{}", std::process::id()));
        let ckpt_dir = dir.join("ckpts").to_string_lossy().into_owned();
        assert_eq!(execute(open_run_cmd(None, None, Some(ckpt_dir.clone()), Some(2), None)), 0);
        let latest = streamline_core::latest_checkpoint(std::path::Path::new(&ckpt_dir))
            .unwrap()
            .expect("kill wrote snapshots");
        let check = execute(Command::ObsCheck {
            trace: None,
            metrics: None,
            ckpt: Some(latest.to_string_lossy().into_owned()),
        });
        assert_eq!(check, 0, "obs-check must accept an open-loop snapshot");
        // Resume with the same ingest flags and complete.
        assert_eq!(execute(open_run_cmd(None, None, None, None, Some(ckpt_dir))), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn obs_check_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("slrepro-obsbad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json").to_string_lossy().into_owned();
        std::fs::write(&bad, "{\"schema\": \"nope\"}").unwrap();
        assert_eq!(
            execute(Command::ObsCheck { trace: Some(bad.clone()), metrics: None, ckpt: None }),
            1
        );
        assert_eq!(
            execute(Command::ObsCheck {
                trace: None,
                metrics: Some("/nonexistent/x".into()),
                ckpt: None
            }),
            1
        );
        // A truncated/garbage checkpoint is rejected, never a panic.
        let bad_ckpt = dir.join("bad.ckpt").to_string_lossy().into_owned();
        std::fs::write(&bad_ckpt, b"not a checkpoint").unwrap();
        assert_eq!(
            execute(Command::ObsCheck { trace: None, metrics: None, ckpt: Some(bad_ckpt) }),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
