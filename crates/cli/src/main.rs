//! `slrepro` — parallel streamline computation from the command line.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match streamline_cli::parse(&args) {
        Ok(cli) => std::process::exit(streamline_cli::commands::execute(cli.command)),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", streamline_cli::args::USAGE);
            std::process::exit(64);
        }
    }
}
