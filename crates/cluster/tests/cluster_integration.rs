//! Cluster-level invariants: a cluster of one is the single service, a
//! sharded cluster answers bit-identically to a single-shot driver run,
//! and replica kills resolve every in-flight ticket typed with exact
//! conservation.

use std::sync::Arc;
use std::time::Duration;
use streamline_cluster::{ClusterConfig, ClusterService, Outcome, Request};
use streamline_core::advance::advance_in_block;
use streamline_core::workspace::BlockExit;
use streamline_field::dataset::{Dataset, DatasetConfig, Seeding};
use streamline_field::decomp::BlockDecomposition;
use streamline_integrate::{Dopri5, StepLimits, Streamline, StreamlineId};
use streamline_iosim::{BlockStore, FaultPlan, FaultStore, MemoryStore};
use streamline_math::Vec3;
use streamline_serve::breaker::{BreakerConfig, RetryPolicy};
use streamline_serve::{Service, ServiceConfig};

fn tiny_dataset() -> Dataset {
    let mut dcfg = DatasetConfig::tiny();
    dcfg.blocks_per_axis = [2, 2, 2];
    Dataset::thermal_hydraulics(dcfg)
}

fn limits() -> StepLimits {
    StepLimits { max_steps: 300, ..StepLimits::default() }
}

fn fast_cluster(
    dataset: &Dataset,
    store: Arc<dyn BlockStore>,
    cfg: ClusterConfig,
) -> ClusterService {
    ClusterService::start(dataset.decomp, store, cfg)
}

/// The reference everything is compared to: each seed advanced serially
/// through the scalar kernel, block by block, loading straight from the
/// store — the single-shot driver path with no service, no cluster, no
/// cache, no concurrency.
fn single_shot(
    decomp: &BlockDecomposition,
    store: &dyn BlockStore,
    seeds: &[Vec3],
    limits: &StepLimits,
) -> Vec<Streamline> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let mut sl = Streamline::new_lean(StreamlineId(i as u32), p, limits.h0);
            let Some(mut block_id) = decomp.locate(p) else {
                sl.terminate(streamline_integrate::Termination::ExitedDomain);
                return sl;
            };
            loop {
                let block = store.load(block_id);
                let (exit, _) = advance_in_block(&mut sl, &block, decomp, limits, &Dopri5);
                match exit {
                    BlockExit::MovedTo(next) => block_id = next,
                    BlockExit::Done(_) => return sl,
                }
            }
        })
        .collect()
}

fn assert_bit_identical(got: &[Streamline], want: &[Streamline]) {
    assert_eq!(got.len(), want.len());
    for (a, b) in got.iter().zip(want) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.status, b.status, "streamline {:?} status diverged", a.id);
        assert_eq!(
            a.state.position.to_array().map(f64::to_bits),
            b.state.position.to_array().map(f64::to_bits),
            "streamline {:?} position diverged",
            a.id
        );
        assert_eq!(a.state.h.to_bits(), b.state.h.to_bits());
        assert_eq!(a.geometry, b.geometry, "streamline {:?} geometry diverged", a.id);
    }
}

#[test]
fn cluster_of_one_is_bit_identical_to_the_single_service() {
    let dataset = tiny_dataset();
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 24);

    let cluster = fast_cluster(
        &dataset,
        Arc::clone(&store),
        ClusterConfig { replicas: 1, ..ClusterConfig::default() },
    );
    let service = Service::start(dataset.decomp, Arc::clone(&store), ServiceConfig::default());

    let got = cluster
        .submit(Request::new(seeds.points.clone()).with_limits(limits()))
        .expect("admitted")
        .wait()
        .expect("cluster answers");
    let want = service
        .submit(Request::new(seeds.points.clone()).with_limits(limits()))
        .expect("admitted")
        .wait()
        .expect("service answers");
    assert_eq!(got.outcome, Outcome::Completed);
    assert_eq!(got.outcome, want.outcome);
    assert_bit_identical(&got.streamlines, &want.streamlines);

    let m = cluster.shutdown();
    assert_eq!(m.handoffs, 0, "one replica owns everything; nothing to hand off");
    assert!(m.conservation_holds());
    service.shutdown();
}

#[test]
fn cluster_of_one_is_bit_identical_under_chaos() {
    // Transient store faults on every block: the per-replica retry budget
    // absorbs them invisibly, exactly like the single service under the
    // same plan — faults deny, they never corrupt.
    let dataset = tiny_dataset();
    let clean: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let mut plan = FaultPlan::new();
    for b in 0..8 {
        plan = plan.transient(streamline_field::block::BlockId(b), 2);
    }
    let faulted: Arc<dyn BlockStore> = Arc::new(FaultStore::new(Arc::clone(&clean), plan));
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 16);

    let cluster = fast_cluster(
        &dataset,
        faulted,
        ClusterConfig {
            replicas: 1,
            retry: RetryPolicy {
                max_attempts: 4,
                base: Duration::from_micros(100),
                max: Duration::from_micros(500),
            },
            breaker: BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(600) },
            ..ClusterConfig::default()
        },
    );
    let service = Service::start(dataset.decomp, clean, ServiceConfig::default());

    let got = cluster
        .submit(Request::new(seeds.points.clone()).with_limits(limits()))
        .expect("admitted")
        .wait()
        .expect("cluster answers");
    let want = service
        .submit(Request::new(seeds.points.clone()).with_limits(limits()))
        .expect("admitted")
        .wait()
        .expect("service answers");
    assert_eq!(got.outcome, Outcome::Completed, "transient faults must be invisible");
    assert_bit_identical(&got.streamlines, &want.streamlines);
    let m = cluster.shutdown();
    assert!(m.conservation_holds());
    service.shutdown();
}

#[test]
fn cross_replica_handoffs_are_bit_identical_to_a_single_shot_run() {
    let dataset = tiny_dataset();
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let seeds = dataset.seeds_with_count(Seeding::Dense, 48);
    let lim = limits();

    let cluster = fast_cluster(
        &dataset,
        Arc::clone(&store),
        ClusterConfig { replicas: 4, ..ClusterConfig::default() },
    );
    let got = cluster
        .submit(Request::new(seeds.points.clone()).with_limits(lim))
        .expect("admitted")
        .wait()
        .expect("cluster answers");
    let want = single_shot(&dataset.decomp, store.as_ref(), &seeds.points, &lim);
    assert_eq!(got.outcome, Outcome::Completed);
    assert_bit_identical(&got.streamlines, &want);

    let m = cluster.shutdown();
    assert!(m.handoffs > 0, "8 blocks over 4 replicas: dense trajectories must cross shards");
    assert!(m.handoff_bytes > m.handoffs, "hand-offs carry geometry, not just headers");
    assert!(m.conservation_holds());
}

#[test]
fn hot_block_replication_keeps_answers_bit_identical() {
    let dataset = tiny_dataset();
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let seeds = dataset.seeds_with_count(Seeding::Dense, 32);
    let lim = limits();

    let cluster = fast_cluster(
        &dataset,
        Arc::clone(&store),
        ClusterConfig {
            replicas: 4,
            replication: 2,
            hot_k: 8, // every touched block is eligible
            heartbeat_every: Duration::from_millis(1),
            ..ClusterConfig::default()
        },
    );
    // Repeat the workload so the monitor's hot set (recomputed on the
    // heartbeat cadence) is in force for the later rounds.
    let want = single_shot(&dataset.decomp, store.as_ref(), &seeds.points, &lim);
    for _ in 0..20 {
        let got = cluster
            .submit(Request::new(seeds.points.clone()).with_limits(lim))
            .expect("admitted")
            .wait()
            .expect("cluster answers");
        assert_eq!(got.outcome, Outcome::Completed);
        assert_bit_identical(&got.streamlines, &want);
    }
    let m = cluster.shutdown();
    assert!(m.conservation_holds());
    // Replication is an optimization, not a semantic: whether a hot block
    // was advanced locally or handed off, the answers above already proved
    // bit-identity. The traffic split just has to add up.
    assert!(m.handoffs + m.hot_local_hits > 0, "cross-shard traffic must exist");
}

#[test]
fn replica_kill_resolves_every_ticket_typed_with_exact_conservation() {
    let dataset = tiny_dataset();
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let seeds = dataset.seeds_with_count(Seeding::Dense, 64);
    let lim = limits();

    let cluster = fast_cluster(
        &dataset,
        Arc::clone(&store),
        ClusterConfig {
            replicas: 3,
            heartbeat_every: Duration::from_millis(1),
            suspect_after: Duration::from_millis(10),
            ..ClusterConfig::default()
        },
    );
    let mut tickets = Vec::new();
    for _ in 0..4 {
        tickets.push(
            cluster.submit(Request::new(seeds.points.clone()).with_limits(lim)).expect("admitted"),
        );
    }
    assert!(cluster.kill_replica(1), "first kill succeeds");
    assert!(!cluster.kill_replica(1), "second kill is a no-op");
    for _ in 0..4 {
        tickets.push(
            cluster.submit(Request::new(seeds.points.clone()).with_limits(lim)).expect("admitted"),
        );
    }

    // Every ticket resolves typed — an answer or ServiceGone, never a hang.
    let want = single_shot(&dataset.decomp, store.as_ref(), &seeds.points, &lim);
    let mut answered = 0u64;
    let mut gone = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(resp) => {
                answered += 1;
                assert_eq!(resp.outcome, Outcome::Completed);
                // Re-dispatched trajectories moved intact: answers from a
                // run with a mid-flight death are still bit-identical.
                assert_bit_identical(&resp.streamlines, &want);
            }
            Err(_) => gone += 1,
        }
    }
    let m = cluster.shutdown();
    assert_eq!(m.replica_deaths, 1, "the monitor detected exactly one death");
    assert_eq!(m.replicas_alive, 2);
    assert_eq!(m.completed, answered);
    assert_eq!(m.requests_gone, gone);
    assert!(
        m.conservation_holds(),
        "completed {} + gone {} != submitted {}",
        m.completed,
        m.requests_gone,
        m.submitted
    );
}

#[test]
fn killed_cluster_routes_new_requests_around_the_dead_replica() {
    let dataset = tiny_dataset();
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 16);
    let lim = limits();

    let cluster = fast_cluster(
        &dataset,
        Arc::clone(&store),
        ClusterConfig {
            replicas: 2,
            heartbeat_every: Duration::from_millis(1),
            suspect_after: Duration::from_millis(10),
            ..ClusterConfig::default()
        },
    );
    cluster.kill_replica(0);
    // Wait out detection, then submit: everything must route to replica 1.
    std::thread::sleep(Duration::from_millis(60));
    let resp = cluster
        .submit(Request::new(seeds.points.clone()).with_limits(lim))
        .expect("admitted")
        .wait()
        .expect("the surviving replica answers");
    assert_eq!(resp.outcome, Outcome::Completed);
    let want = single_shot(&dataset.decomp, store.as_ref(), &seeds.points, &lim);
    assert_bit_identical(&resp.streamlines, &want);
    let m = cluster.shutdown();
    assert_eq!(m.replica_deaths, 1);
    assert!(m.conservation_holds());
    let dead = &m.per_replica[0];
    assert!(!dead.alive);
    assert_eq!(dead.queue_depth, 0, "the dead replica holds no admission seats");
}

#[test]
fn overload_rejects_typed_without_enqueuing() {
    let dataset = tiny_dataset();
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let seeds = dataset.seeds_with_count(Seeding::Dense, 64);

    let cluster = fast_cluster(
        &dataset,
        store,
        ClusterConfig { replicas: 2, queue_capacity: 8, ..ClusterConfig::default() },
    );
    // 64 seeds over 2 replicas with 8 seats each must overflow somewhere.
    let err = cluster
        .submit(Request::new(seeds.points.clone()).with_limits(limits()))
        .expect_err("must be rejected");
    match err {
        streamline_cluster::SubmitError::Overloaded { capacity, requested, .. } => {
            assert_eq!(capacity, 8);
            assert_eq!(requested, 64);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // The rollback was complete: a fitting request is admitted and runs.
    let resp = cluster
        .submit(Request::new(seeds.points[..4].to_vec()).with_limits(limits()))
        .expect("admitted")
        .wait()
        .expect("cluster answers");
    assert_eq!(resp.streamlines.len(), 4);
    let m = cluster.shutdown();
    assert_eq!(m.rejected, 1);
    assert_eq!(m.submitted, 1);
    assert!(m.conservation_holds());
    for r in &m.per_replica {
        assert_eq!(r.queue_depth, 0, "rejection must leak no admission seats");
    }
}

#[test]
fn bootstrap_prefetches_each_replicas_shard() {
    let dataset = tiny_dataset();
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 16);

    let cluster = fast_cluster(
        &dataset,
        Arc::clone(&store),
        ClusterConfig { replicas: 2, ..ClusterConfig::default() },
    );
    let prefetched = cluster.bootstrap();
    assert_eq!(prefetched, 8, "2 replicas x their shards cover all 8 blocks once");
    let resp = cluster
        .submit(Request::new(seeds.points.clone()).with_limits(limits()))
        .expect("admitted")
        .wait()
        .expect("cluster answers");
    assert_eq!(resp.outcome, Outcome::Completed);
    let m = cluster.shutdown();
    // Every block a replica served was already resident from bootstrap.
    let total_loaded: u64 = m.per_replica.iter().map(|r| r.cache_loaded).sum();
    assert_eq!(total_loaded, 8, "the workload itself took no cold loads");
    assert!(m.per_replica.iter().any(|r| r.cache_hits > 0));
}

#[test]
fn worker_panic_is_contained_and_resolves_tickets_gone() {
    let dataset = tiny_dataset();
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let seeds = dataset.seeds_with_count(Seeding::Sparse, 16);
    let target = dataset.decomp.locate(seeds.points[0]).expect("seed in domain");

    let cluster = fast_cluster(
        &dataset,
        store,
        ClusterConfig { replicas: 2, panic_on_block: Some(target), ..ClusterConfig::default() },
    );
    let err = cluster
        .submit(Request::new(seeds.points.clone()).with_limits(limits()))
        .expect("admitted")
        .wait()
        .expect_err("the panicked batch resolves its ticket as ServiceGone");
    assert_eq!(err.request_id, 0);
    // Contained: the same workload completes afterwards.
    let resp = cluster
        .submit(Request::new(seeds.points.clone()).with_limits(limits()))
        .expect("admitted")
        .wait()
        .expect("cluster answers after the panic");
    assert_eq!(resp.outcome, Outcome::Completed);
    let m = cluster.shutdown();
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.requests_gone, 1);
    assert!(m.conservation_holds());
    for r in &m.per_replica {
        assert_eq!(r.queue_depth, 0, "panic recovery released every admission seat");
    }
}

#[test]
fn traced_cluster_emits_a_valid_timeline_with_schedule_and_deaths() {
    let dataset = tiny_dataset();
    let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
    let seeds = dataset.seeds_with_count(Seeding::Dense, 48);

    let cluster = fast_cluster(
        &dataset,
        store,
        ClusterConfig {
            replicas: 3,
            trace_bucket: Some(Duration::from_millis(1)),
            heartbeat_every: Duration::from_millis(1),
            suspect_after: Duration::from_millis(10),
            ..ClusterConfig::default()
        },
    );
    let t =
        cluster.submit(Request::new(seeds.points.clone()).with_limits(limits())).expect("admitted");
    cluster.kill_replica(2);
    let _ = t.wait();
    // Let the monitor notice the death before snapshotting.
    std::thread::sleep(Duration::from_millis(60));
    let tf = cluster.timeline().expect("tracing was enabled");
    tf.validate().expect("trace invariants hold");
    assert_eq!(tf.clock, "wall");
    assert_eq!(tf.n_ranks, 3);
    let schedule = tf.schedule.as_ref().expect("schedule section present");
    assert_eq!(
        schedule.rank_deaths.len(),
        1,
        "the kill shows up as a rank death in the schedule trace"
    );
    let m = cluster.shutdown();
    assert!(m.conservation_holds());

    // The metrics dump carries the cluster namespace end to end.
    let cluster2 = {
        let dataset = tiny_dataset();
        let store: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
        ClusterService::start(dataset.decomp, store, ClusterConfig::default())
    };
    let text = cluster2.dump_metrics();
    assert!(text.contains("streamline_cluster_replicas"));
    assert!(text.contains("streamline_cluster_handoffs_total"));
    assert!(text.contains("streamline_cluster_replica_cache_hit_rate_r0"));
    cluster2.shutdown();
}
