//! Sharded multi-replica serving of streamline queries.
//!
//! The paper parallelizes over data: blocks are assigned to ranks and a
//! streamline crossing a block boundary is handed to the rank owning the
//! destination block. This crate applies the same design to the serving
//! tier: N replicas of the [`streamline_serve`] stack sit behind a
//! consistent-hash block router ([`ring::Ring`]); each replica caches and
//! serves only its shard, and trajectories crossing shard boundaries move
//! between replicas as typed [`streamline_core::msg::ReplicaMsg`] hand-offs
//! whose wire cost is geometry-dominated, exactly like the rank hand-offs
//! of the batch drivers.
//!
//! On top of the steady-state path the cluster adds:
//! - **hot-block replication** — the top-k most-accessed blocks may be
//!   advanced locally by up to `replication` ring successors, trading cache
//!   residency for hand-off traffic;
//! - **warm-start bootstrap** — [`ClusterService::bootstrap`] prefetches
//!   each replica's shard through the serve crate's warm-start manifests;
//! - **fail-stop replica recovery** — heartbeat staleness declares a
//!   replica dead, the router skips it, and its parked streamlines are
//!   re-dispatched intact to ring successors; in-flight tickets resolve
//!   typed, and `completed + gone == admitted` stays exact.
//!
//! Requests, responses, tickets, and errors are the serve crate's own
//! types, so a cluster of one is observationally identical to a single
//! [`streamline_serve::Service`] — a property the integration tests pin
//! down to the bit.

pub mod cluster;
pub mod ring;

pub use cluster::{ClusterConfig, ClusterMetrics, ClusterService, ReplicaMetrics};
pub use ring::Ring;

// One-stop re-exports of the serve vocabulary the cluster speaks.
pub use streamline_serve::{Outcome, Request, Response, ServiceGone, SubmitError, Ticket, TryWait};
