//! The sharded replica cluster.
//!
//! # Life of a request
//!
//! 1. [`ClusterService::submit`] locates every seed, routes it to the
//!    replica owning its block on the consistent-hash [`Ring`], and reserves
//!    an admission seat on that replica — any replica over capacity rejects
//!    the whole request with the same typed
//!    [`SubmitError::Overloaded`] the single service uses.
//! 2. Each replica runs its own serve stack — shared LRU block cache,
//!    per-block circuit breakers, retry schedule, per-block batch former —
//!    and one worker thread advancing parked streamlines through the same
//!    batch kernel as the single service, so results are bit-identical.
//! 3. When a trajectory exits the blocks a replica owns, the partial
//!    streamline is handed to the owner replica (the serving analogue of
//!    the paper's rank hand-off; wire bytes are geometry-dominated, modelled
//!    by [`ReplicaMsg::wire_bytes`]). Blocks globally hot (top-k by access
//!    count) may instead be advanced by up to `replication` ring successors
//!    locally, trading cache residency for hand-off traffic.
//! 4. Replica death is fail-stop: a killed replica stops heartbeating, the
//!    monitor declares it dead after `suspect_after`, re-routes its shard to
//!    ring successors, and re-dispatches its parked streamlines intact —
//!    in-flight tickets resolve typed ([`streamline_serve::ServiceGone`] or
//!    re-dispatched), never a hang, and `completed + gone == admitted`
//!    stays exact.

use crate::ring::Ring;
use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamline_core::advance::advance_batch_in_block;
use streamline_core::msg::ReplicaMsg;
use streamline_core::workspace::BlockExit;
use streamline_field::block::{Block, BlockId};
use streamline_field::decomp::BlockDecomposition;
use streamline_integrate::{StepLimits, Streamline, StreamlineBatch, StreamlineId, Termination};
use streamline_iosim::BlockStore;
use streamline_obs::{
    names, Counter, MetricsRegistry, Phase, ScheduleTrace, TraceFile, WallTimeline,
};
use streamline_serve::breaker::{Admit, BlockBreakers, BreakerConfig, RetryPolicy};
use streamline_serve::cache::SharedBlockCache;
use streamline_serve::metrics::LatencyHistogram;
use streamline_serve::warm::WarmStartManifest;
use streamline_serve::{Outcome, Request, Response, SubmitError, Ticket};

/// Tuning knobs for [`ClusterService::start`]. Per-replica knobs mirror
/// [`streamline_serve::ServiceConfig`]; each replica runs one worker thread
/// (the replica is the unit of parallelism, like a rank in the paper).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of service replicas behind the router.
    pub replicas: usize,
    /// Replicas allowed to serve a *hot* block locally: the owner plus
    /// `replication - 1` ring successors. 1 disables replication.
    pub replication: usize,
    /// Virtual nodes per replica on the hash ring.
    pub vnodes: usize,
    /// How many globally hottest blocks (by access count) are replicated.
    pub hot_k: usize,
    /// Per-replica block cache capacity.
    pub cache_blocks: usize,
    /// Lock shards per replica cache.
    pub cache_shards: usize,
    /// Per-replica admission bound (seeds admitted but unresolved).
    pub queue_capacity: usize,
    pub retry: RetryPolicy,
    pub breaker: BreakerConfig,
    /// Batch width for the advection kernel (bit-identical at any width).
    pub batch: usize,
    /// Record a wall-clock per-replica phase timeline at this resolution.
    pub trace_bucket: Option<Duration>,
    /// Heartbeat cadence of each replica's liveness beat.
    pub heartbeat_every: Duration,
    /// Heartbeat staleness after which the monitor declares a replica dead.
    pub suspect_after: Duration,
    /// Fault injection for tests: the first worker batch claiming this
    /// block panics, exercising the panic-containment path. Fires once.
    #[doc(hidden)]
    pub panic_on_block: Option<BlockId>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 2,
            replication: 1,
            vnodes: 64,
            hot_k: 8,
            cache_blocks: 64,
            cache_shards: 8,
            queue_capacity: 4096,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            batch: 16,
            trace_bucket: None,
            heartbeat_every: Duration::from_millis(5),
            // Generous by default: on a loaded single-core host the beat
            // thread can starve for tens of milliseconds without the
            // replica being dead.
            suspect_after: Duration::from_millis(250),
            panic_on_block: None,
        }
    }
}

/// One streamline parked on a replica, plus its parent request and the
/// replica holding its admission seat (seats stay home even when the
/// trajectory is handed off, so conservation is exact per replica).
struct ClusterItem {
    sl: Streamline,
    req: Arc<RequestState>,
    home: usize,
}

/// Shared, mostly-atomic state of one in-flight request (the cluster twin
/// of the single service's request state; responses go out as the same
/// [`Response`] type, so clients cannot tell the difference).
struct RequestState {
    id: u64,
    limits: StepLimits,
    deadline: Option<Instant>,
    submitted: Instant,
    /// Replica charged with this request's latency sample (owner of the
    /// first in-domain seed).
    home: usize,
    expired: AtomicBool,
    poisoned: AtomicBool,
    remaining: AtomicUsize,
    dropped: AtomicUsize,
    unavailable: AtomicUsize,
    finished: Mutex<Vec<Streamline>>,
    tx: Sender<Response>,
}

/// The per-replica batch former.
#[derive(Default)]
struct ReplicaSched {
    queues: BTreeMap<BlockId, Vec<ClusterItem>>,
    /// Items checked out by this replica's worker.
    in_flight: usize,
    /// Set by the monitor when this replica is declared dead; nothing may
    /// park here afterwards (parkers re-route to the ring successor).
    dead: bool,
}

struct Replica {
    cache: SharedBlockCache,
    breakers: BlockBreakers,
    sched: Mutex<ReplicaSched>,
    work_ready: Condvar,
    /// Admission seats taken on this replica (seeds admitted, unresolved).
    pending_seeds: AtomicUsize,
    /// Fail-stop injection flag: the replica's worker and heartbeat stop
    /// cooperating at their next safe point.
    killed: AtomicBool,
    /// Nanoseconds since cluster start of the last heartbeat.
    heartbeat: AtomicU64,
    streamlines_completed: Counter,
    handoffs_out: Counter,
    latency: LatencyHistogram,
}

struct ClusterInner {
    decomp: BlockDecomposition,
    store: Arc<dyn BlockStore>,
    ring: Ring,
    replicas: Vec<Replica>,
    alive: Vec<AtomicBool>,
    replication: usize,
    retry: RetryPolicy,
    batch: usize,
    hot_k: usize,
    queue_capacity: usize,
    heartbeat_every: Duration,
    suspect_after: Duration,
    shutting_down: AtomicBool,
    /// Streamlines parked or checked out anywhere in the cluster; workers
    /// may exit only when shutting down *and* this is globally zero (a
    /// hand-off can land on any replica until the last item resolves).
    outstanding: AtomicUsize,
    next_request_id: AtomicU64,
    started: Instant,
    /// Per-block access counts feeding the hot-set selection.
    access: Vec<AtomicU64>,
    /// Per-block "currently replicated" flags, recomputed by the monitor.
    hot: RwLock<Vec<bool>>,
    registry: Arc<MetricsRegistry>,
    submitted: Counter,
    completed: Counter,
    rejected: Counter,
    requests_gone: Counter,
    streamlines_completed: Counter,
    streamlines_unavailable: Counter,
    total_steps: Counter,
    handoffs: Counter,
    handoff_bytes: Counter,
    redispatches: Counter,
    redispatch_bytes: Counter,
    replica_deaths: Counter,
    hot_local_hits: Counter,
    worker_panics: Counter,
    latency: LatencyHistogram,
    trace: Option<WallTimeline>,
    /// Hand-off wall times (secs since start) — the schedule trace's
    /// ping-pong series. Only collected while tracing.
    handoff_times: Mutex<Vec<f64>>,
    /// Detected replica deaths as `(replica, secs since start)`.
    deaths: Mutex<Vec<(usize, f64)>>,
    panic_on_block: Option<BlockId>,
    panic_fired: AtomicBool,
}

/// A running sharded serve cluster. See the [module docs](self).
pub struct ClusterService {
    inner: Arc<ClusterInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    aux: Vec<std::thread::JoinHandle<()>>,
}

/// Point-in-time health snapshot of one replica.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReplicaMetrics {
    pub replica: usize,
    pub alive: bool,
    pub streamlines_completed: u64,
    pub handoffs_out: u64,
    pub queue_depth: usize,
    pub cache_resident: usize,
    pub cache_loaded: u64,
    pub cache_hits: u64,
    pub cache_hit_rate: f64,
    pub blocks_quarantined: usize,
    pub latency_p50_ms: f64,
    pub latency_p95_ms: f64,
    pub latency_p99_ms: f64,
}

/// Point-in-time health snapshot of the whole cluster.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ClusterMetrics {
    pub replicas: usize,
    pub replicas_alive: usize,
    pub submitted: u64,
    pub completed: u64,
    pub rejected: u64,
    pub requests_gone: u64,
    pub streamlines_completed: u64,
    pub streamlines_unavailable: u64,
    pub total_steps: u64,
    pub handoffs: u64,
    pub handoff_bytes: u64,
    pub redispatches: u64,
    pub redispatch_bytes: u64,
    pub replica_deaths: u64,
    pub hot_local_hits: u64,
    pub worker_panics: u64,
    pub latency_p50_ms: f64,
    pub latency_p95_ms: f64,
    pub latency_p99_ms: f64,
    pub per_replica: Vec<ReplicaMetrics>,
}

impl ClusterMetrics {
    /// Exact durable-completion conservation: every admitted request is
    /// answered or typed gone — under replica kills included.
    pub fn conservation_holds(&self) -> bool {
        self.completed + self.requests_gone == self.submitted
    }
}

impl ClusterService {
    /// Spawn `cfg.replicas` replicas (one worker, one heartbeat each) plus
    /// the failure-detection monitor, and start routing requests.
    pub fn start(
        decomp: BlockDecomposition,
        store: Arc<dyn BlockStore>,
        cfg: ClusterConfig,
    ) -> Self {
        let n = cfg.replicas.max(1);
        let registry = Arc::new(MetricsRegistry::new());
        let n_blocks = decomp.num_blocks();
        let replicas = (0..n)
            .map(|r| Replica {
                cache: SharedBlockCache::new(cfg.cache_blocks, cfg.cache_shards),
                breakers: BlockBreakers::new(cfg.breaker),
                sched: Mutex::new(ReplicaSched::default()),
                work_ready: Condvar::new(),
                pending_seeds: AtomicUsize::new(0),
                killed: AtomicBool::new(false),
                heartbeat: AtomicU64::new(0),
                streamlines_completed: registry.counter(&names::per_replica(
                    names::CLUSTER_REPLICA_STREAMLINES_COMPLETED_TOTAL,
                    r,
                )),
                handoffs_out: registry
                    .counter(&names::per_replica(names::CLUSTER_REPLICA_HANDOFFS_OUT_TOTAL, r)),
                latency: LatencyHistogram::in_registry(
                    &registry,
                    &names::per_replica(names::CLUSTER_REPLICA_LATENCY_NANOSECONDS, r),
                ),
            })
            .collect();
        let inner = Arc::new(ClusterInner {
            decomp,
            store,
            ring: Ring::new(n, cfg.vnodes),
            replicas,
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
            replication: cfg.replication.max(1),
            retry: cfg.retry,
            batch: cfg.batch.max(1),
            hot_k: cfg.hot_k,
            queue_capacity: cfg.queue_capacity.max(1),
            heartbeat_every: cfg.heartbeat_every.max(Duration::from_micros(100)),
            suspect_after: cfg.suspect_after.max(cfg.heartbeat_every * 4),
            shutting_down: AtomicBool::new(false),
            outstanding: AtomicUsize::new(0),
            next_request_id: AtomicU64::new(0),
            started: Instant::now(),
            access: (0..n_blocks).map(|_| AtomicU64::new(0)).collect(),
            hot: RwLock::new(vec![false; n_blocks]),
            submitted: registry.counter(names::CLUSTER_SUBMITTED_TOTAL),
            completed: registry.counter(names::CLUSTER_COMPLETED_TOTAL),
            rejected: registry.counter(names::CLUSTER_REJECTED_TOTAL),
            requests_gone: registry.counter(names::CLUSTER_REQUESTS_GONE_TOTAL),
            streamlines_completed: registry.counter(names::CLUSTER_STREAMLINES_COMPLETED_TOTAL),
            streamlines_unavailable: registry.counter(names::CLUSTER_STREAMLINES_UNAVAILABLE_TOTAL),
            total_steps: registry.counter(names::CLUSTER_STEPS_TOTAL),
            handoffs: registry.counter(names::CLUSTER_HANDOFFS_TOTAL),
            handoff_bytes: registry.counter(names::CLUSTER_HANDOFF_BYTES_TOTAL),
            redispatches: registry.counter(names::CLUSTER_REDISPATCHES_TOTAL),
            redispatch_bytes: registry.counter(names::CLUSTER_REDISPATCH_BYTES_TOTAL),
            replica_deaths: registry.counter(names::CLUSTER_REPLICA_DEATHS_TOTAL),
            hot_local_hits: registry.counter(names::CLUSTER_HOT_LOCAL_HITS_TOTAL),
            worker_panics: registry.counter(names::CLUSTER_WORKER_PANICS_TOTAL),
            latency: LatencyHistogram::in_registry(&registry, names::CLUSTER_LATENCY_NANOSECONDS),
            trace: cfg.trace_bucket.map(|w| WallTimeline::new(n, w)),
            handoff_times: Mutex::new(Vec::new()),
            deaths: Mutex::new(Vec::new()),
            panic_on_block: cfg.panic_on_block,
            panic_fired: AtomicBool::new(false),
            registry,
        });
        let workers = (0..n)
            .map(|r| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cluster-replica-{r}"))
                    .spawn(move || worker_loop(&inner, r))
                    .expect("spawn cluster replica worker")
            })
            .collect();
        let mut aux: Vec<std::thread::JoinHandle<()>> = (0..n)
            .map(|r| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cluster-heartbeat-{r}"))
                    .spawn(move || heartbeat_loop(&inner, r))
                    .expect("spawn cluster heartbeat")
            })
            .collect();
        {
            let inner = Arc::clone(&inner);
            aux.push(
                std::thread::Builder::new()
                    .name("cluster-monitor".into())
                    .spawn(move || monitor_loop(&inner))
                    .expect("spawn cluster monitor"),
            );
        }
        ClusterService { inner, workers, aux }
    }

    /// Submit a request: seeds are routed to their owner replicas, one
    /// admission seat each. Any target replica over capacity rejects the
    /// whole request (typed, without enqueuing anything anywhere).
    pub fn submit(&self, req: Request) -> Result<Ticket, SubmitError> {
        let inner = &self.inner;
        let n = req.seeds.len();
        if n == 0 {
            return Err(SubmitError::Empty);
        }
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let alive = alive_mask(inner);

        // Route every seed before touching any shared state.
        let mut routed: Vec<(usize, BlockId, usize)> = Vec::with_capacity(n); // (seed, block, replica)
        let mut out_of_domain: Vec<usize> = Vec::new();
        for (i, &p) in req.seeds.iter().enumerate() {
            match inner.decomp.locate(p).and_then(|b| inner.ring.owner(b, &alive).map(|r| (b, r))) {
                Some((b, r)) => routed.push((i, b, r)),
                None => out_of_domain.push(i),
            }
        }

        // Optimistic per-replica admission: reserve seats in replica order,
        // roll back everything on the first refusal.
        let mut want = vec![0usize; inner.replicas.len()];
        for &(_, _, r) in &routed {
            want[r] += 1;
        }
        let mut reserved: Vec<(usize, usize)> = Vec::new();
        for (r, &k) in want.iter().enumerate() {
            if k == 0 {
                continue;
            }
            let prev = inner.replicas[r].pending_seeds.fetch_add(k, Ordering::AcqRel);
            reserved.push((r, k));
            if prev + k > inner.queue_capacity {
                for &(rr, kk) in &reserved {
                    inner.replicas[rr].pending_seeds.fetch_sub(kk, Ordering::AcqRel);
                }
                inner.rejected.inc();
                return Err(SubmitError::Overloaded {
                    queue_depth: prev,
                    capacity: inner.queue_capacity,
                    requested: n,
                });
            }
        }

        // Claim the cluster-wide outstanding slots, then re-check the drain
        // flag: workers exit only when `shutting_down && outstanding == 0`,
        // so once this add is visible no worker exits under us — and if the
        // drain began first, we roll everything back untouched.
        inner.outstanding.fetch_add(routed.len(), Ordering::SeqCst);
        if inner.shutting_down.load(Ordering::SeqCst) {
            for &(rr, kk) in &reserved {
                inner.replicas[rr].pending_seeds.fetch_sub(kk, Ordering::AcqRel);
            }
            release_outstanding_n(inner, routed.len());
            return Err(SubmitError::ShuttingDown);
        }

        let id = inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        let home = routed.first().map(|&(_, _, r)| r).unwrap_or(0);
        let state = Arc::new(RequestState {
            id,
            limits: req.limits,
            deadline: req.deadline,
            submitted: Instant::now(),
            home,
            expired: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            remaining: AtomicUsize::new(n),
            dropped: AtomicUsize::new(0),
            unavailable: AtomicUsize::new(0),
            finished: Mutex::new(Vec::with_capacity(n)),
            tx,
        });

        // Seed-order ids, exactly like the single service and the batch
        // drivers — the invariant every bit-identity test leans on.
        let mut per_replica: BTreeMap<usize, BTreeMap<BlockId, Vec<ClusterItem>>> = BTreeMap::new();
        for (i, block, r) in routed {
            let sl = Streamline::new_lean(StreamlineId(i as u32), req.seeds[i], req.limits.h0);
            per_replica.entry(r).or_default().entry(block).or_default().push(ClusterItem {
                sl,
                req: Arc::clone(&state),
                home: r,
            });
        }
        inner.submitted.inc();
        for (r, blocks) in per_replica {
            for (block, items) in blocks {
                park(inner, r, block, items);
            }
        }

        // Out-of-domain seeds terminate instantly on the client thread.
        for i in out_of_domain {
            let mut sl = Streamline::new_lean(StreamlineId(i as u32), req.seeds[i], req.limits.h0);
            sl.terminate(Termination::ExitedDomain);
            finish_item(inner, home, &state, Some(sl), false);
        }

        Ok(Ticket::from_parts(id, rx))
    }

    /// Fail-stop injection: replica `r` stops heartbeating and cooperating.
    /// The monitor will declare it dead after `suspect_after` and re-route
    /// its shard. Returns `false` if `r` was already killed or out of range.
    pub fn kill_replica(&self, r: usize) -> bool {
        let Some(rep) = self.inner.replicas.get(r) else { return false };
        if rep.killed.swap(true, Ordering::AcqRel) {
            return false;
        }
        // Wake the worker so it observes the kill instead of idling.
        rep.work_ready.notify_all();
        true
    }

    /// Bootstrap every replica's cache from its shard: each replica
    /// prefetches (up to cache capacity) the blocks it owns on the ring via
    /// a [`WarmStartManifest`] — the same warm-start path the single
    /// service uses on restart. Returns total blocks prefetched.
    pub fn bootstrap(&self) -> usize {
        let inner = &self.inner;
        let alive = alive_mask(inner);
        let mut total = 0;
        for (r, rep) in inner.replicas.iter().enumerate() {
            if !alive[r] {
                continue;
            }
            let mut blocks = inner.ring.shard(r, &alive, inner.decomp.num_blocks());
            blocks.truncate(rep.cache.capacity());
            let manifest = WarmStartManifest { blocks, shards: rep.cache.shard_count() };
            total += manifest.prefetch(&rep.cache, inner.store.as_ref());
        }
        total
    }

    /// Residency manifest of one replica's cache (for persistence across
    /// instances, exactly like [`streamline_serve::Service`]).
    pub fn residency_manifest(&self, r: usize) -> Option<WarmStartManifest> {
        self.inner.replicas.get(r).map(|rep| WarmStartManifest::of(&rep.cache))
    }

    /// Point-in-time health snapshot.
    pub fn metrics(&self) -> ClusterMetrics {
        snapshot(&self.inner)
    }

    /// The unified metric store (aggregate `streamline_cluster_*` series
    /// plus per-replica series named via [`names::per_replica`]).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.inner.registry
    }

    /// Refresh gauges and render every metric in Prometheus text format.
    pub fn dump_metrics(&self) -> String {
        refresh_registry(&self.inner);
        self.inner.registry.render_prometheus()
    }

    /// The per-replica wall-clock phase timeline with its schedule section
    /// (hand-offs as the ping-pong series, replica deaths marked), or
    /// `None` when started without [`ClusterConfig::trace_bucket`].
    pub fn timeline(&self) -> Option<TraceFile> {
        let tl = self.inner.trace.as_ref()?;
        let snap = tl.snapshot();
        let mut tf = snap.to_trace("wall");
        let pingpong = self.inner.handoff_times.lock().clone();
        let deaths = self.inner.deaths.lock().clone();
        tf.schedule =
            Some(ScheduleTrace::from_timeline(&snap, &pingpong).with_rank_deaths(&snap, &deaths));
        Some(tf)
    }

    /// Stop admitting, drain every parked and in-flight streamline across
    /// all replicas (hand-offs included), join every thread, and return the
    /// final metrics. Every pending ticket resolves before this returns.
    pub fn shutdown(mut self) -> ClusterMetrics {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for h in self.aux.drain(..) {
            let _ = h.join();
        }
        snapshot(&self.inner)
    }

    fn begin_shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        for rep in &self.inner.replicas {
            let _st = rep.sched.lock();
            rep.work_ready.notify_all();
        }
    }
}

impl Drop for ClusterService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.begin_shutdown();
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
            for h in self.aux.drain(..) {
                let _ = h.join();
            }
        }
    }
}

fn alive_mask(inner: &ClusterInner) -> Vec<bool> {
    inner.alive.iter().map(|a| a.load(Ordering::Acquire)).collect()
}

fn secs_since_start(inner: &ClusterInner) -> f64 {
    inner.started.elapsed().as_secs_f64()
}

/// Park `items` in `target`'s queue for `block`. If `target` was declared
/// dead in the meantime, re-route to the block's current owner; if no
/// replica is alive at all, the items terminate `BlockUnavailable` — typed,
/// never a hang.
fn park(inner: &ClusterInner, mut target: usize, block: BlockId, mut items: Vec<ClusterItem>) {
    loop {
        let rep = &inner.replicas[target];
        let mut st = rep.sched.lock();
        if !st.dead {
            st.queues.entry(block).or_default().append(&mut items);
            rep.work_ready.notify_one();
            return;
        }
        drop(st);
        let alive = alive_mask(inner);
        match inner.ring.owner(block, &alive) {
            Some(next) if next != target => target = next,
            _ => {
                // No live owner: resolve every item typed instead of
                // leaking its seat.
                for mut item in items {
                    item.sl.terminate(Termination::BlockUnavailable);
                    item.req.unavailable.fetch_add(1, Ordering::Relaxed);
                    inner.streamlines_unavailable.inc();
                    let home = item.home;
                    finish_item(inner, home, &item.req, Some(item.sl), true);
                }
                return;
            }
        }
    }
}

/// Resolve one seed: record the streamline (unless dropped), release its
/// `home` admission seat and outstanding slot (skipped for out-of-domain
/// seeds, which reserved neither), and complete the request if it was the
/// last. `home` is also the replica credited with the completion.
fn finish_item(
    inner: &ClusterInner,
    home: usize,
    req: &Arc<RequestState>,
    sl: Option<Streamline>,
    parked: bool,
) {
    match sl {
        Some(sl) => {
            inner.streamlines_completed.inc();
            inner.replicas[home].streamlines_completed.inc();
            req.finished.lock().push(sl);
        }
        None => {
            req.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
    if parked {
        inner.replicas[home].pending_seeds.fetch_sub(1, Ordering::AcqRel);
        release_outstanding_n(inner, 1);
    }
    if req.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        complete_request(inner, req);
    }
}

/// Resolve one seed destroyed by a worker panic: poison the request (its
/// ticket resolves [`ServiceGone`]), release the seat, complete if last.
fn abandon_item(inner: &ClusterInner, home: usize, req: &Arc<RequestState>) {
    req.poisoned.store(true, Ordering::Release);
    inner.replicas[home].pending_seeds.fetch_sub(1, Ordering::AcqRel);
    release_outstanding_n(inner, 1);
    if req.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        complete_request(inner, req);
    }
}

fn release_outstanding_n(inner: &ClusterInner, n: usize) {
    if inner.outstanding.fetch_sub(n, Ordering::SeqCst) == n
        && inner.shutting_down.load(Ordering::SeqCst)
    {
        // Global drain: wake every replica's worker so it can exit.
        for rep in &inner.replicas {
            let _st = rep.sched.lock();
            rep.work_ready.notify_all();
        }
    }
}

fn complete_request(inner: &ClusterInner, req: &Arc<RequestState>) {
    if req.poisoned.load(Ordering::Acquire) {
        // Same contract as the single service: part of the request's state
        // was destroyed, so dropping the sender resolves the ticket as the
        // typed `ServiceGone` — never a hang, never a partial lie.
        inner.requests_gone.inc();
        return;
    }
    let latency = req.submitted.elapsed();
    let dropped = req.dropped.load(Ordering::Relaxed);
    let unavailable = req.unavailable.load(Ordering::Relaxed);
    let outcome = if dropped > 0 || req.expired.load(Ordering::Relaxed) {
        Outcome::DeadlineExceeded { dropped }
    } else if unavailable > 0 {
        Outcome::Partial { unavailable }
    } else {
        Outcome::Completed
    };
    let mut streamlines = std::mem::take(&mut *req.finished.lock());
    streamlines.sort_by_key(|sl| sl.id);
    inner.latency.record(latency);
    inner.replicas[req.home].latency.record(latency);
    inner.completed.inc();
    let _ = req.tx.send(Response { request_id: req.id, outcome, streamlines, latency });
}

/// Claim the fullest queue of `replica` (ties toward the lowest block id).
/// Returns `None` when the replica is killed, or when shutting down and the
/// *cluster* is fully drained.
fn claim_batch(inner: &ClusterInner, replica: usize) -> Option<(BlockId, Vec<ClusterItem>)> {
    let rep = &inner.replicas[replica];
    let mut st = rep.sched.lock();
    loop {
        if rep.killed.load(Ordering::Acquire) {
            return None;
        }
        if let Some(block) = st
            .queues
            .iter()
            .min_by_key(|(id, items)| (std::cmp::Reverse(items.len()), **id))
            .map(|(id, _)| *id)
        {
            let items = st.queues.remove(&block).expect("queue just observed");
            st.in_flight += items.len();
            return Some((block, items));
        }
        if inner.shutting_down.load(Ordering::SeqCst)
            && inner.outstanding.load(Ordering::SeqCst) == 0
        {
            rep.work_ready.notify_all();
            return None;
        }
        rep.work_ready.wait(&mut st);
    }
}

fn maybe_inject_panic(inner: &ClusterInner, block_id: BlockId) {
    if inner.panic_on_block == Some(block_id) && !inner.panic_fired.swap(true, Ordering::AcqRel) {
        panic!("injected cluster worker panic on {block_id:?}");
    }
}

fn worker_loop(inner: &ClusterInner, replica: usize) {
    let mut scratch = StreamlineBatch::new();
    loop {
        let wait_start = inner.trace.as_ref().map(|_| Instant::now());
        let claimed = claim_batch(inner, replica);
        if let (Some(tl), Some(ws)) = (inner.trace.as_ref(), wait_start) {
            tl.record(replica, Phase::Idle, ws, ws.elapsed());
        }
        let Some((block_id, items)) = claimed else { break };
        process_batch(inner, replica, block_id, items, &mut scratch);
    }
}

fn load_with_retry(
    inner: &ClusterInner,
    replica: usize,
    block_id: BlockId,
    probe: bool,
) -> Option<Arc<Block>> {
    let rep = &inner.replicas[replica];
    let attempts = if probe { 1 } else { inner.retry.max_attempts.max(1) };
    for attempt in 1..=attempts {
        match rep.cache.get_or_load(block_id, inner.store.as_ref()) {
            Ok((b, _hit)) => return Some(b),
            Err(_) if attempt < attempts => {
                std::thread::sleep(inner.retry.backoff(attempt, u64::from(block_id.0)));
            }
            Err(_) => {}
        }
    }
    None
}

fn process_batch(
    inner: &ClusterInner,
    replica: usize,
    block_id: BlockId,
    items: Vec<ClusterItem>,
    scratch: &mut StreamlineBatch,
) {
    let rep = &inner.replicas[replica];
    let trace = inner.trace.as_ref();
    let n_claimed = items.len();
    if let Some(a) = inner.access.get(block_id.0 as usize) {
        a.fetch_add(n_claimed as u64, Ordering::Relaxed);
    }

    // A kill between claim and processing is the fail-stop window: the
    // claimed items were checked out by a worker that died with them. They
    // resolve typed as `ServiceGone` — conservation stays exact.
    if rep.killed.load(Ordering::Acquire) {
        settle_in_flight(inner, replica, n_claimed);
        for item in items {
            abandon_item(inner, item.home, &item.req);
        }
        return;
    }

    let io_start = trace.map(|_| Instant::now());
    let block = match rep.breakers.admit(block_id) {
        Admit::FastFail => None,
        admit => {
            let b = load_with_retry(inner, replica, block_id, admit == Admit::Probe);
            match &b {
                Some(_) => rep.breakers.on_success(block_id),
                None => {
                    rep.breakers.on_failure(block_id);
                }
            }
            b
        }
    };
    if let (Some(tl), Some(t0)) = (trace, io_start) {
        tl.record(replica, Phase::Io, t0, t0.elapsed());
    }
    let Some(block) = block else {
        settle_in_flight(inner, replica, n_claimed);
        for mut item in items {
            if item.req.expired.load(Ordering::Relaxed) {
                finish_item(inner, replica, &item.req, None, true);
            } else {
                item.sl.terminate(Termination::BlockUnavailable);
                item.req.unavailable.fetch_add(1, Ordering::Relaxed);
                inner.streamlines_unavailable.inc();
                let home = item.home;
                finish_item(inner, home, &item.req, Some(item.sl), true);
            }
        }
        return;
    };

    let mut finished: Vec<(usize, Arc<RequestState>, Option<Streamline>)> = Vec::new();
    let compute_start = trace.map(|_| Instant::now());
    let now = Instant::now();
    let mut live: Vec<ClusterItem> = Vec::with_capacity(items.len());
    for item in items {
        let expired = item.req.expired.load(Ordering::Relaxed)
            || item.req.deadline.is_some_and(|d| {
                let hit = now >= d;
                if hit {
                    item.req.expired.store(true, Ordering::Relaxed);
                }
                hit
            });
        if expired {
            finished.push((item.home, item.req, None));
        } else {
            live.push(item);
        }
    }
    // Same batched advance as the single service: runs of equal limits,
    // chunked to the batch width, bit-identical at any width — and
    // regardless of *which replica* does the advancing, which is why
    // hand-off and replication placement never show up in the answers.
    let homes_reqs: Vec<(usize, Arc<RequestState>)> =
        live.iter().map(|it| (it.home, Arc::clone(&it.req))).collect();
    let advanced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        maybe_inject_panic(inner, block_id);
        let mut cmoved: BTreeMap<BlockId, Vec<ClusterItem>> = BTreeMap::new();
        let mut cdone: Vec<(usize, Arc<RequestState>, Option<Streamline>)> = Vec::new();
        let mut rest = live;
        while !rest.is_empty() {
            let limits = rest[0].req.limits;
            let run_len = rest.iter().take_while(|it| it.req.limits == limits).count();
            let tail = rest.split_off(run_len);
            let (mut sls, tags): (Vec<Streamline>, Vec<(usize, Arc<RequestState>)>) =
                rest.into_iter().map(|it| (it.sl, (it.home, it.req))).unzip();
            let mut exits = Vec::with_capacity(sls.len());
            for chunk in sls.chunks_mut(inner.batch) {
                let (ex, stats) =
                    advance_batch_in_block(chunk, &block, &inner.decomp, &limits, scratch);
                inner.total_steps.add(stats.steps);
                exits.extend(ex);
            }
            for ((sl, (home, req)), exit) in sls.into_iter().zip(tags).zip(exits) {
                match exit {
                    BlockExit::MovedTo(next) => {
                        cmoved.entry(next).or_default().push(ClusterItem { sl, req, home })
                    }
                    BlockExit::Done(_) => cdone.push((home, req, Some(sl))),
                }
            }
            rest = tail;
        }
        (cmoved, cdone)
    }));
    if let (Some(tl), Some(t0)) = (trace, compute_start) {
        tl.record(replica, Phase::Compute, t0, t0.elapsed());
    }
    let Ok((moved, mut cdone)) = advanced else {
        inner.worker_panics.inc();
        *scratch = StreamlineBatch::new();
        settle_in_flight(inner, replica, n_claimed);
        for (home, req, sl) in finished {
            finish_item(inner, home, &req, sl, true);
        }
        for (home, req) in homes_reqs {
            abandon_item(inner, home, &req);
        }
        return;
    };
    finished.append(&mut cdone);

    // Routing the moved streamlines is this design's communication: blocks
    // this replica still serves re-park locally; everything else is a typed
    // hand-off to the ring owner, geometry and all.
    let comm_start = trace.map(|_| Instant::now());
    settle_in_flight(inner, replica, n_claimed);
    let alive = alive_mask(inner);
    let self_alive = alive.get(replica).copied().unwrap_or(false);
    let hot = inner.hot.read().clone();
    for (next, batch) in moved {
        let owner = inner.ring.owner(next, &alive);
        let keep_local = self_alive
            && match owner {
                Some(o) if o == replica => true,
                Some(_) if inner.replication > 1 && hot.get(next.0 as usize) == Some(&true) => {
                    inner.ring.successors(next, &alive, inner.replication).contains(&replica)
                }
                _ => false,
            };
        if keep_local {
            if owner != Some(replica) {
                inner.hot_local_hits.add(batch.len() as u64);
            }
            park(inner, replica, next, batch);
        } else {
            match owner {
                Some(o) => {
                    inner.handoffs.add(batch.len() as u64);
                    rep.handoffs_out.add(batch.len() as u64);
                    // Wrap each curve in the typed envelope to account its
                    // wire bytes (geometry-dominated, §8), then unwrap it
                    // into the owner's queue — the "network" is a queue
                    // move, the cost model is the paper's.
                    let mut bytes = 0usize;
                    let batch: Vec<ClusterItem> = batch
                        .into_iter()
                        .map(|it| {
                            let msg = ReplicaMsg::Handoff { sl: Box::new(it.sl) };
                            bytes += msg.wire_bytes(true);
                            let ReplicaMsg::Handoff { sl } = msg else { unreachable!() };
                            ClusterItem { sl: *sl, req: it.req, home: it.home }
                        })
                        .collect();
                    inner.handoff_bytes.add(bytes as u64);
                    if trace.is_some() {
                        let t = secs_since_start(inner);
                        let mut times = inner.handoff_times.lock();
                        times.extend(std::iter::repeat_n(t, batch.len()));
                    }
                    park(inner, o, next, batch);
                }
                None => {
                    for mut item in batch {
                        item.sl.terminate(Termination::BlockUnavailable);
                        item.req.unavailable.fetch_add(1, Ordering::Relaxed);
                        inner.streamlines_unavailable.inc();
                        let home = item.home;
                        finish_item(inner, home, &item.req, Some(item.sl), true);
                    }
                }
            }
        }
    }
    for (home, req, sl) in finished {
        finish_item(inner, home, &req, sl, true);
    }
    if let (Some(tl), Some(t0)) = (trace, comm_start) {
        tl.record(replica, Phase::Comm, t0, t0.elapsed());
    }
}

fn settle_in_flight(inner: &ClusterInner, replica: usize, n: usize) {
    let rep = &inner.replicas[replica];
    let mut st = rep.sched.lock();
    st.in_flight -= n;
}

/// Each replica's liveness beat: a thread bumping the heartbeat stamp every
/// `heartbeat_every` until the replica is killed or the cluster drains.
/// Fail-stop kills the beat with the replica — staleness *is* the failure
/// signal, exactly like the batch drivers' rank heartbeats.
fn heartbeat_loop(inner: &ClusterInner, replica: usize) {
    let rep = &inner.replicas[replica];
    loop {
        // Keep beating through the shutdown drain: a live replica falling
        // silent mid-drain would read as a death and trigger a spurious
        // re-route. The beat stops with the kill, or once the cluster is
        // fully drained.
        if rep.killed.load(Ordering::Acquire)
            || (inner.shutting_down.load(Ordering::SeqCst)
                && inner.outstanding.load(Ordering::SeqCst) == 0)
        {
            return;
        }
        let nanos = inner.started.elapsed().as_nanos() as u64;
        rep.heartbeat.store(nanos, Ordering::Release);
        std::thread::sleep(inner.heartbeat_every);
    }
}

/// The failure detector and hot-set maintainer. A replica whose heartbeat
/// is staler than `suspect_after` is declared dead exactly once: the alive
/// mask flips (the router skips it from then on), its sched is sealed, and
/// every parked streamline is re-dispatched intact to the ring successor —
/// recovery traffic counted separately from steady-state hand-offs.
fn monitor_loop(inner: &ClusterInner) {
    loop {
        // The monitor outlives the drain: if a killed-but-undetected
        // replica still holds parked work when shutdown begins, only the
        // monitor's re-dispatch can resolve it.
        if inner.shutting_down.load(Ordering::SeqCst)
            && inner.outstanding.load(Ordering::SeqCst) == 0
        {
            return;
        }
        let now = inner.started.elapsed();
        for (r, rep) in inner.replicas.iter().enumerate() {
            if !inner.alive[r].load(Ordering::Acquire) {
                continue;
            }
            let beat = Duration::from_nanos(rep.heartbeat.load(Ordering::Acquire));
            if now <= beat || now - beat < inner.suspect_after {
                continue;
            }
            declare_dead(inner, r);
        }
        if inner.replication > 1 {
            refresh_hot_set(inner);
        }
        std::thread::sleep(inner.heartbeat_every);
    }
}

fn declare_dead(inner: &ClusterInner, r: usize) {
    inner.alive[r].store(false, Ordering::Release);
    inner.replica_deaths.inc();
    inner.deaths.lock().push((r, secs_since_start(inner)));
    let rep = &inner.replicas[r];
    // Seal the sched first (under its lock) so every later parker sees
    // `dead` and re-routes — no hand-off can slip in after the drain.
    let drained = {
        let mut st = rep.sched.lock();
        st.dead = true;
        rep.work_ready.notify_all();
        std::mem::take(&mut st.queues)
    };
    let comm_start = inner.trace.as_ref().map(|_| Instant::now());
    let alive = alive_mask(inner);
    for (block, batch) in drained {
        inner.redispatches.add(batch.len() as u64);
        let mut bytes = 0usize;
        let batch: Vec<ClusterItem> = batch
            .into_iter()
            .map(|it| {
                let msg = ReplicaMsg::Redispatch { sl: Box::new(it.sl) };
                bytes += msg.wire_bytes(true);
                let ReplicaMsg::Redispatch { sl } = msg else { unreachable!() };
                ClusterItem { sl: *sl, req: it.req, home: it.home }
            })
            .collect();
        inner.redispatch_bytes.add(bytes as u64);
        match inner.ring.owner(block, &alive) {
            Some(o) => park(inner, o, block, batch),
            None => {
                for mut item in batch {
                    item.sl.terminate(Termination::BlockUnavailable);
                    item.req.unavailable.fetch_add(1, Ordering::Relaxed);
                    inner.streamlines_unavailable.inc();
                    let home = item.home;
                    finish_item(inner, home, &item.req, Some(item.sl), true);
                }
            }
        }
    }
    if let (Some(tl), Some(t0)) = (inner.trace.as_ref(), comm_start) {
        tl.record(r, Phase::Comm, t0, t0.elapsed());
    }
}

/// Recompute the replicated hot set: the `hot_k` most-accessed blocks.
fn refresh_hot_set(inner: &ClusterInner) {
    let mut counts: Vec<(u64, usize)> = inner
        .access
        .iter()
        .enumerate()
        .map(|(b, a)| (a.load(Ordering::Relaxed), b))
        .filter(|&(c, _)| c > 0)
        .collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts.truncate(inner.hot_k);
    let mut hot = vec![false; inner.access.len()];
    for &(_, b) in &counts {
        hot[b] = true;
    }
    *inner.hot.write() = hot;
}

fn refresh_registry(inner: &ClusterInner) {
    let reg = &inner.registry;
    let alive = alive_mask(inner);
    reg.set_gauge(names::CLUSTER_REPLICAS, inner.replicas.len() as f64);
    reg.set_gauge(names::CLUSTER_REPLICAS_ALIVE, alive.iter().filter(|a| **a).count() as f64);
    reg.set_gauge(
        names::CLUSTER_HOT_BLOCKS,
        inner.hot.read().iter().filter(|h| **h).count() as f64,
    );
    for (r, rep) in inner.replicas.iter().enumerate() {
        let stats = rep.cache.stats();
        let gets = stats.hits + stats.loaded;
        let hit_rate = if gets == 0 { 0.0 } else { stats.hits as f64 / gets as f64 };
        reg.set_gauge(
            &names::per_replica(names::CLUSTER_REPLICA_ALIVE, r),
            if alive[r] { 1.0 } else { 0.0 },
        );
        reg.set_gauge(
            &names::per_replica(names::CLUSTER_REPLICA_QUEUE_DEPTH, r),
            rep.pending_seeds.load(Ordering::Acquire) as f64,
        );
        reg.set_gauge(&names::per_replica(names::CLUSTER_REPLICA_CACHE_HIT_RATE, r), hit_rate);
        reg.set_gauge(
            &names::per_replica(names::CLUSTER_REPLICA_CACHE_RESIDENT_BLOCKS, r),
            rep.cache.len() as f64,
        );
        reg.set_gauge(
            &names::per_replica(names::CLUSTER_REPLICA_BLOCKS_QUARANTINED, r),
            rep.breakers.quarantined() as f64,
        );
    }
}

fn snapshot(inner: &ClusterInner) -> ClusterMetrics {
    refresh_registry(inner);
    let alive = alive_mask(inner);
    let q =
        |h: &LatencyHistogram, p: f64| h.quantile(p).map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0);
    let per_replica = inner
        .replicas
        .iter()
        .enumerate()
        .map(|(r, rep)| {
            let stats = rep.cache.stats();
            let gets = stats.hits + stats.loaded;
            ReplicaMetrics {
                replica: r,
                alive: alive[r],
                streamlines_completed: rep.streamlines_completed.get(),
                handoffs_out: rep.handoffs_out.get(),
                queue_depth: rep.pending_seeds.load(Ordering::Acquire),
                cache_resident: rep.cache.len(),
                cache_loaded: stats.loaded,
                cache_hits: stats.hits,
                cache_hit_rate: if gets == 0 { 0.0 } else { stats.hits as f64 / gets as f64 },
                blocks_quarantined: rep.breakers.quarantined(),
                latency_p50_ms: q(&rep.latency, 0.50),
                latency_p95_ms: q(&rep.latency, 0.95),
                latency_p99_ms: q(&rep.latency, 0.99),
            }
        })
        .collect();
    ClusterMetrics {
        replicas: inner.replicas.len(),
        replicas_alive: alive.iter().filter(|a| **a).count(),
        submitted: inner.submitted.get(),
        completed: inner.completed.get(),
        rejected: inner.rejected.get(),
        requests_gone: inner.requests_gone.get(),
        streamlines_completed: inner.streamlines_completed.get(),
        streamlines_unavailable: inner.streamlines_unavailable.get(),
        total_steps: inner.total_steps.get(),
        handoffs: inner.handoffs.get(),
        handoff_bytes: inner.handoff_bytes.get(),
        redispatches: inner.redispatches.get(),
        redispatch_bytes: inner.redispatch_bytes.get(),
        replica_deaths: inner.replica_deaths.get(),
        hot_local_hits: inner.hot_local_hits.get(),
        worker_panics: inner.worker_panics.get(),
        latency_p50_ms: q(&inner.latency, 0.50),
        latency_p95_ms: q(&inner.latency, 0.95),
        latency_p99_ms: q(&inner.latency, 0.99),
        per_replica,
    }
}
