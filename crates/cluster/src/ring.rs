//! The consistent-hash block router.
//!
//! Every replica contributes `vnodes` points to a 64-bit hash ring; a block
//! is owned by the replica of the first *alive* point clockwise from the
//! block's own hash. Because membership changes only add or remove one
//! replica's points, the owner of a block changes **only** when the point it
//! resolved to belonged to the departed replica (or when the arriving
//! replica's new points land between the block and its old owner) — every
//! other block keeps its owner. That minimal-remap property is what lets a
//! replica death move exactly the dead shard and nothing else.
//!
//! Liveness is expressed as an `alive` mask at lookup time rather than by
//! rebuilding the ring: a dead replica's points are skipped, so its blocks
//! fall to their ring successors while everyone else's mapping is untouched
//! by construction.

use streamline_field::block::BlockId;

/// SplitMix64: a cheap, well-mixed 64-bit finalizer. Deterministic across
/// runs and platforms, which keeps shard layouts stable in reports.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The ring: sorted virtual-node points, each tagged with its replica.
#[derive(Debug, Clone)]
pub struct Ring {
    replicas: usize,
    /// `(point_hash, replica)`, sorted by hash.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Build a ring of `replicas` members with `vnodes` points each.
    pub fn new(replicas: usize, vnodes: usize) -> Self {
        let replicas = replicas.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(replicas * vnodes);
        for r in 0..replicas {
            for v in 0..vnodes {
                points.push((splitmix64(((r as u64) << 32) | v as u64), r));
            }
        }
        points.sort_unstable();
        Ring { replicas, points }
    }

    pub fn replicas(&self) -> usize {
        self.replicas
    }

    fn block_hash(block: BlockId) -> u64 {
        // Salted away from the vnode hash domain so block and point hashes
        // never collide structurally.
        splitmix64(u64::from(block.0) ^ 0x05ca_1ab1_e0dd_ba11_u64)
    }

    /// The replica owning `block`: the first alive point clockwise from the
    /// block's hash. `None` when no replica is alive.
    pub fn owner(&self, block: BlockId, alive: &[bool]) -> Option<usize> {
        self.successors(block, alive, 1).first().copied()
    }

    /// The first `k` *distinct* alive replicas clockwise from `block`'s
    /// hash — the owner first, then the replicas a hot block replicates to.
    pub fn successors(&self, block: BlockId, alive: &[bool], k: usize) -> Vec<usize> {
        let h = Self::block_hash(block);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(k.min(self.replicas));
        let mut seen = vec![false; self.replicas];
        for i in 0..self.points.len() {
            let (_, r) = self.points[(start + i) % self.points.len()];
            if !seen[r] && alive.get(r).copied().unwrap_or(false) {
                seen[r] = true;
                out.push(r);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// All blocks of `n_blocks` owned by `replica` under `alive` — the
    /// replica's shard, used to build its warm-start bootstrap manifest.
    pub fn shard(&self, replica: usize, alive: &[bool], n_blocks: usize) -> Vec<BlockId> {
        (0..n_blocks)
            .map(|b| BlockId(b as u32))
            .filter(|&b| self.owner(b, alive) == Some(replica))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_alive(n: usize) -> Vec<bool> {
        vec![true; n]
    }

    #[test]
    fn every_block_has_an_owner() {
        let ring = Ring::new(4, 64);
        let alive = all_alive(4);
        for b in 0..512 {
            let o = ring.owner(BlockId(b), &alive).expect("alive ring owns everything");
            assert!(o < 4);
        }
    }

    #[test]
    fn shards_partition_the_blocks() {
        let ring = Ring::new(3, 64);
        let alive = all_alive(3);
        let mut seen = vec![0usize; 64];
        for r in 0..3 {
            for b in ring.shard(r, &alive, 64) {
                seen[b.0 as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each block in exactly one shard");
    }

    #[test]
    fn successors_are_distinct_and_start_with_owner() {
        let ring = Ring::new(8, 64);
        let alive = all_alive(8);
        for b in 0..64 {
            let succ = ring.successors(BlockId(b), &alive, 3);
            assert_eq!(succ.len(), 3);
            assert_eq!(succ[0], ring.owner(BlockId(b), &alive).unwrap());
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "successors must be distinct replicas");
        }
    }

    #[test]
    fn dead_ring_owns_nothing() {
        let ring = Ring::new(2, 16);
        assert_eq!(ring.owner(BlockId(0), &[false, false]), None);
        assert!(ring.successors(BlockId(0), &[false, false], 2).is_empty());
    }

    proptest! {
        /// Removing one replica remaps only the departed shard: every block
        /// the dead replica did not own keeps its exact owner.
        #[test]
        fn removal_remaps_only_the_departed_shard(
            replicas in 2usize..9,
            vnodes in 1usize..65,
            dead in 0usize..9,
            n_blocks in 1usize..257,
        ) {
            let dead = dead % replicas;
            let ring = Ring::new(replicas, vnodes);
            let full = all_alive(replicas);
            let mut reduced = full.clone();
            reduced[dead] = false;
            for b in 0..n_blocks {
                let block = BlockId(b as u32);
                let before = ring.owner(block, &full).unwrap();
                let after = ring.owner(block, &reduced).unwrap();
                if before == dead {
                    prop_assert!(after != dead, "dead replica must lose its shard");
                } else {
                    prop_assert_eq!(after, before, "surviving shards must not move");
                }
            }
        }

        /// Growing the ring by one replica moves blocks only *to* the new
        /// replica — never between pre-existing replicas.
        #[test]
        fn addition_moves_blocks_only_to_the_newcomer(
            replicas in 1usize..8,
            vnodes in 1usize..65,
            n_blocks in 1usize..257,
        ) {
            let small = Ring::new(replicas, vnodes);
            let grown = Ring::new(replicas + 1, vnodes);
            let alive_small = all_alive(replicas);
            let alive_grown = all_alive(replicas + 1);
            for b in 0..n_blocks {
                let block = BlockId(b as u32);
                let before = small.owner(block, &alive_small).unwrap();
                let after = grown.owner(block, &alive_grown).unwrap();
                prop_assert!(
                    after == before || after == replicas,
                    "block {} moved between old replicas: {} -> {}", b, before, after
                );
            }
        }

        /// Death then recovery is exact: restoring the mask restores the map.
        #[test]
        fn recovery_restores_the_original_map(
            replicas in 2usize..9,
            vnodes in 1usize..33,
            dead in 0usize..9,
            n_blocks in 1usize..129,
        ) {
            let dead = dead % replicas;
            let ring = Ring::new(replicas, vnodes);
            let full = all_alive(replicas);
            let mut reduced = full.clone();
            reduced[dead] = false;
            for b in 0..n_blocks {
                let block = BlockId(b as u32);
                let _ = ring.owner(block, &reduced);
                prop_assert_eq!(
                    ring.owner(block, &full),
                    ring.owner(block, &all_alive(replicas))
                );
            }
        }
    }
}
