//! Service-level observability: a lock-free latency histogram and the
//! [`ServiceMetrics`] snapshot surfaced by `serve-bench`.
//!
//! Both are now *views* over `streamline_obs`: [`LatencyHistogram`] wraps
//! an [`streamline_obs::Histogram`] (possibly registered in the service's
//! [`streamline_obs::MetricsRegistry`], so the same counts appear in the
//! Prometheus export), and [`ServiceMetrics`] is assembled from registry
//! values by `Service::metrics`.

use serde::Serialize;
use std::time::Duration;
use streamline_iosim::CacheStats;
use streamline_obs::{Histogram, MetricsRegistry};

/// A fixed-size log2 histogram of request latencies, in nanoseconds:
/// bucket `i > 0` covers `[2^(i-1), 2^i)` ns, bucket 0 covers zero. 2^63
/// ns ≈ 292 years, so the top bucket is unreachable in practice.
///
/// Recording is a single relaxed atomic increment, so worker and client
/// threads never contend; quantiles are approximate (resolved to the
/// geometric midpoint of a power-of-two bucket, i.e. within ~±41% of the
/// true value — ample for separating microseconds from milliseconds from
/// seconds).
pub struct LatencyHistogram {
    inner: Histogram,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// A free-standing histogram (not visible in any registry).
    pub fn new() -> Self {
        LatencyHistogram { inner: Histogram::standalone() }
    }

    /// A histogram registered in `registry` under `name`, so every
    /// recorded latency also appears in the Prometheus export.
    pub fn in_registry(registry: &MetricsRegistry, name: &str) -> Self {
        LatencyHistogram { inner: registry.histogram(name) }
    }

    pub fn record(&self, latency: Duration) {
        self.inner.record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// The latency at quantile `q` in `[0, 1]`, or `None` if nothing has
    /// been recorded. Resolved to the geometric midpoint of the bucket
    /// containing the q-th sample.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        self.inner.quantile(q).map(Duration::from_nanos)
    }
}

/// A point-in-time snapshot of service health, serializable to JSON for
/// the `serve-bench` CLI.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceMetrics {
    /// Worker threads serving the queues.
    pub workers: usize,
    /// Seconds since the service started.
    pub uptime_secs: f64,
    /// Requests accepted by admission control.
    pub submitted: u64,
    /// Requests that completed (including deadline-expired ones).
    pub completed: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests that hit their deadline before finishing.
    pub deadline_expired: u64,
    /// Requests answered `Outcome::Partial`: every seed resolved, but some
    /// were cut short by unavailable blocks.
    pub partial: u64,
    /// Block loads retried after a store error (each backoff sleep counts
    /// once).
    pub load_retries: u64,
    /// Block loads abandoned after exhausting the retry budget.
    pub load_failures: u64,
    /// Batches answered instantly by an open circuit breaker, without
    /// touching the store.
    pub fast_fails: u64,
    /// Times any block's breaker tripped open, cumulative.
    pub breaker_trips: u64,
    /// Blocks whose breaker is open or half-open right now.
    pub blocks_quarantined: usize,
    /// Worker batches that panicked mid-advance and were contained: the
    /// worker recovered, accounting was repaired, and the affected
    /// requests resolved as the typed `ServiceGone` instead of wedging.
    pub worker_panics: u64,
    /// Requests whose ticket resolved `ServiceGone` because a worker
    /// panic destroyed part of their state.
    pub requests_gone: u64,
    /// Streamlines terminated `BlockUnavailable` (degraded, counted in
    /// `streamlines_completed` too — they do resolve, with a typed
    /// termination and the curve computed so far).
    pub streamlines_unavailable: u64,
    /// Streamlines returned to their requests with a termination.
    pub streamlines_completed: u64,
    /// Accepted integration steps across all workers.
    pub total_steps: u64,
    /// Field evaluations served from a worker's cell-cached stencil.
    pub sampler_hits: u64,
    /// Field evaluations that gathered a fresh 8-corner stencil.
    pub sampler_misses: u64,
    /// sampler_hits / (sampler_hits + sampler_misses); 0.0 before any
    /// sampling.
    pub sampler_hit_rate: f64,
    /// Streamlines advanced through the batch advection kernel, counted
    /// once per batch-kernel call each lane participated in.
    pub batched_lanes: u64,
    /// Seeds admitted but not yet resolved (queued + in flight).
    pub queue_depth: usize,
    /// Admission-control bound on `queue_depth`.
    pub queue_capacity: usize,
    /// Completed requests per second of uptime.
    pub throughput_rps: f64,
    /// Terminated streamlines per second of uptime.
    pub streamlines_per_sec: f64,
    pub latency_p50_ms: f64,
    pub latency_p95_ms: f64,
    pub latency_p99_ms: f64,
    /// Merged counters from the shared block cache.
    pub cache: CacheStats,
    /// Blocks resident in the shared cache right now.
    pub cache_resident: usize,
    /// Total block capacity of the shared cache.
    pub cache_capacity: usize,
    /// Fraction of block requests served without a load: hits/(hits+loaded).
    pub cache_hit_rate: f64,
    /// The paper's block efficiency E = (B_L - B_P)/B_L over the shared
    /// cache (Eq. 2): 1.0 means nothing loaded was ever evicted.
    pub block_efficiency: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn quantiles_order_and_bracket_samples() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(100)); // ~1e5 ns
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50)); // 5e7 ns
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p99);
        // p50 lands in the 100us bucket (within 2x), p99 in the 50ms bucket.
        assert!(p50 >= Duration::from_micros(50) && p50 <= Duration::from_micros(200));
        assert!(p99 >= Duration::from_millis(25) && p99 <= Duration::from_millis(100));
    }

    #[test]
    fn zero_latency_goes_to_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile(1.0).unwrap(), Duration::ZERO);
    }
}
