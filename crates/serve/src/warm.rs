//! Warm-start manifests: persist the shared cache's residency on drain and
//! prefetch it on the next startup.
//!
//! A freshly started service pays a cold-cache penalty: the first request
//! touching each block eats a store load. When the service is restarted in
//! place (deploy, crash, host move), the block working set is usually the
//! same — so [`Service::shutdown`](crate::Service) can persist which blocks
//! were resident (a tiny list of ids, not the block data), and the next
//! instance can reload them before accepting traffic.
//!
//! The manifest rides in the same self-validating container format as run
//! checkpoints ([`streamline_ckpt`]), under its own `kind` so `obs-check`
//! and the resume path can tell them apart.

use crate::cache::SharedBlockCache;
use serde::{Deserialize, Serialize};
use std::path::Path;
use streamline_ckpt::{
    write_atomic, CkptError, CkptFile, CkptWriter, Meta, KIND_WARM_START, RESD_TAG,
};
use streamline_field::block::BlockId;
use streamline_iosim::BlockStore;

/// The persisted residency set of a drained service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmStartManifest {
    /// Resident blocks in deterministic prefetch order (per-shard LRU
    /// order, coldest first, shards in index order).
    pub blocks: Vec<BlockId>,
    /// Shard count of the cache that produced the manifest. Prefetching
    /// into a differently-sharded cache still works — the order is merely
    /// less faithful — so this is informational, not enforced.
    pub shards: usize,
}

impl WarmStartManifest {
    /// Capture the current residency of `cache`.
    pub fn of(cache: &SharedBlockCache) -> Self {
        WarmStartManifest { blocks: cache.manifest(), shards: cache.shard_count() }
    }

    /// Serialize into the checkpoint container (`kind = warm-start`).
    pub fn encode(&self, dataset: &str, cache_blocks: usize) -> Vec<u8> {
        let mut meta = Meta::new(KIND_WARM_START);
        meta.dataset = dataset.to_string();
        meta.cache_blocks = cache_blocks;
        let mut w = CkptWriter::new();
        w.section_value(streamline_ckpt::META_TAG, &meta);
        w.section_value(RESD_TAG, self);
        w.finish()
    }

    /// Write atomically to `path`.
    pub fn write(&self, path: &Path, dataset: &str, cache_blocks: usize) -> Result<(), CkptError> {
        write_atomic(path, &self.encode(dataset, cache_blocks))
    }

    /// Read a manifest back; rejects files of any other kind.
    pub fn read(path: &Path) -> Result<Self, CkptError> {
        let file = CkptFile::read(path)?;
        let meta = file.meta()?;
        if meta.kind != KIND_WARM_START {
            return Err(CkptError::Mismatch(format!(
                "expected a {KIND_WARM_START} manifest, found kind {:?}",
                meta.kind
            )));
        }
        file.value(RESD_TAG)
    }

    /// Prefetch every listed block into `cache`. Best-effort: blocks that
    /// fail to load are skipped. Returns how many loaded.
    pub fn prefetch(&self, cache: &SharedBlockCache, store: &dyn BlockStore) -> usize {
        cache.prefetch(&self.blocks, store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_field::block::Block;
    use streamline_iosim::MemoryStore;
    use streamline_math::{Aabb, Vec3};

    fn store(n: u32) -> MemoryStore {
        MemoryStore::from_blocks(
            (0..n)
                .map(|i| Block::zeroed(BlockId(i), Aabb::unit(), 0, [2, 2, 2], Vec3::splat(1.0)))
                .collect(),
        )
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("slwarm-{tag}-{}.ckpt", std::process::id()))
    }

    #[test]
    fn manifest_roundtrips_through_disk_and_rewarms_a_cold_cache() {
        let st = store(8);
        let cache = SharedBlockCache::new(4, 2);
        for i in [0u32, 1, 2, 3, 5, 7] {
            cache.get_or_load(BlockId(i), &st).unwrap();
        }
        let manifest = WarmStartManifest::of(&cache);
        assert_eq!(manifest.blocks.len(), cache.len());

        let path = tmp("roundtrip");
        manifest.write(&path, "test-dataset", 4).unwrap();
        let back = WarmStartManifest::read(&path).unwrap();
        assert_eq!(back, manifest);

        let cold = SharedBlockCache::new(4, 2);
        let loaded = back.prefetch(&cold, &st);
        assert_eq!(loaded, manifest.blocks.len());
        let mut got = cold.resident();
        let mut want = cache.resident();
        got.sort();
        want.sort();
        assert_eq!(got, want, "rewarmed residency must match the drained set");
        // Touching a prefetched block is a pure hit.
        let before = cold.stats().loaded;
        let (_, hit) = cold.get_or_load(manifest.blocks[0], &st).unwrap();
        assert!(hit);
        assert_eq!(cold.stats().loaded, before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_blocks_are_skipped_not_fatal() {
        let st = store(2);
        let manifest =
            WarmStartManifest { blocks: vec![BlockId(0), BlockId(9), BlockId(1)], shards: 1 };
        let cache = SharedBlockCache::new(4, 1);
        assert_eq!(manifest.prefetch(&cache, &st), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn run_checkpoints_are_rejected_as_manifests() {
        let mut w = CkptWriter::new();
        w.section_value(streamline_ckpt::META_TAG, &Meta::new(streamline_ckpt::KIND_RUN));
        let path = tmp("wrongkind");
        write_atomic(&path, &w.finish()).unwrap();
        let err = WarmStartManifest::read(&path).expect_err("run checkpoint is not a manifest");
        assert!(matches!(err, CkptError::Mismatch(_)), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }
}
