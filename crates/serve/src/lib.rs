//! A long-lived streamline *query service* over the SC09 machinery.
//!
//! The paper's algorithms are batch programs: one seed set in, one run out.
//! This crate recasts the Load-On-Demand locality idea as a serving
//! problem: many concurrent clients submit small seed sets against a shared
//! dataset, and the service amortizes block I/O across *all* in-flight
//! requests instead of within a single run.
//!
//! Architecture:
//!
//! * **Admission control** — [`Service::submit`] accepts a [`Request`]
//!   (seeds + integration params + optional deadline) only while the total
//!   number of live seeds is below the configured queue capacity;
//!   otherwise it rejects immediately with the typed
//!   [`SubmitError::Overloaded`], never blocking the client.
//! * **Batch former** — pending streamlines are parked per owning block
//!   (the same parking discipline as the Load-On-Demand rank, see
//!   `streamline_core::load_on_demand`). Workers repeatedly claim the
//!   block with the most parked work, so one cache acquisition serves an
//!   entire coalesced batch — possibly spanning many requests.
//! * **Shared block cache** — a process-wide sharded LRU
//!   ([`cache::SharedBlockCache`]) built over `streamline_iosim::LruCache`,
//!   reporting the paper's block efficiency `E = (B_L − B_P)/B_L` at the
//!   service level.
//! * **Degraded mode** — failed block loads are retried with bounded
//!   exponential backoff and deterministic jitter; blocks that keep
//!   failing are quarantined by per-block circuit breakers
//!   ([`breaker::BlockBreakers`]) that fail fast while open and probe
//!   half-open after a cooldown. Affected seeds resolve typed as
//!   [`Outcome::Partial`] (terminated `BlockUnavailable`, carrying the
//!   curve computed so far) instead of wedging their tickets — faults can
//!   deny results, never corrupt them.
//!   A panicking worker batch is contained the same way: accounting is
//!   repaired, the affected requests resolve as the typed
//!   [`ServiceGone`], and the worker goes back to claiming work — one
//!   panic never cascades into hung or panicking clients.
//! * **Resident sessions** — [`ResidentSession`] feeds a whole query
//!   stream into *one* long-running open-loop driver run: each query is
//!   an ingest epoch of a `streamline_core::SeedSource`, and the frontier
//!   termination protocol resolves each [`resident::QueryTicket`] the
//!   moment its epoch completes.
//! * **Deadlines and drain** — each request may carry a deadline; expired
//!   requests stop consuming compute and complete with
//!   [`Outcome::DeadlineExceeded`]. [`Service::shutdown`] drains all
//!   in-flight work before workers exit.
//! * **Metrics** — every counter lives in a `streamline_obs`
//!   [`MetricsRegistry`](streamline_obs::MetricsRegistry);
//!   [`Service::metrics`] snapshots it as [`metrics::ServiceMetrics`]
//!   (throughput, queue depth, p50/p95/p99 latency, cache behavior) and
//!   [`Service::dump_metrics`] renders it in Prometheus text format.
//!   With [`service::ServiceConfig::trace_bucket`] set, workers also
//!   record a wall-clock idle/io/compute/comm timeline exposed by
//!   [`Service::timeline`].
//!
//! Streamlines computed here are bit-identical to the single-shot drivers:
//! both advance through `streamline_core::advance::advance_in_block`.

pub mod breaker;
pub mod cache;
pub mod metrics;
pub mod resident;
pub mod service;
pub mod warm;

pub use breaker::{
    Admit, BlockBreakers, BreakerClock, BreakerConfig, ManualClock, RetryPolicy, SystemClock,
};
pub use cache::SharedBlockCache;
pub use metrics::{LatencyHistogram, ServiceMetrics};
pub use resident::{QueryResult, QueryTicket, ResidentSession};
pub use service::{
    Outcome, Request, Response, Service, ServiceConfig, ServiceGone, SubmitError, Ticket, TryWait,
};
pub use warm::WarmStartManifest;
