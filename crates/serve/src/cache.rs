//! A process-wide, sharded block cache shared by every worker and request.
//!
//! The single-shot algorithms give each rank a private
//! [`LruCache`](streamline_iosim::LruCache); the service instead pools one
//! cache across all in-flight requests, so a block loaded for one client is
//! a hit for every other client that needs it. The cache is split into
//! shards (block id modulo shard count) so concurrent workers touching
//! different blocks do not serialize on one lock.
//!
//! Loads happen *under the shard lock*. That makes the accounting exact —
//! `stats().hits + stats().loaded` equals the total number of
//! [`get_or_load`](SharedBlockCache::get_or_load) calls, with no
//! thundering-herd double loads for a popular block — at the price of
//! serializing loads of blocks that share a shard. With the simulated
//! stores a load is cheap; for a real disk store the shard count bounds
//! the lost parallelism.

use parking_lot::Mutex;
use std::sync::Arc;
use streamline_field::block::{Block, BlockId};
use streamline_iosim::{BlockStore, CacheStats, LruCache, StoreError};

/// Concurrent sharded LRU over [`streamline_iosim::LruCache`].
pub struct SharedBlockCache {
    shards: Vec<Mutex<LruCache>>,
}

impl SharedBlockCache {
    /// A cache holding at most `capacity_blocks` blocks in total, split
    /// across `shards` locks. Capacity is distributed evenly (rounded up,
    /// minimum one block per shard), so the worst-case resident set is
    /// `shards * ceil(capacity/shards)`; [`capacity`](Self::capacity)
    /// reports the actual bound.
    pub fn new(capacity_blocks: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity_blocks.div_ceil(shards).max(1);
        SharedBlockCache {
            shards: (0..shards).map(|_| Mutex::new(LruCache::new(per_shard))).collect(),
        }
    }

    fn shard(&self, id: BlockId) -> &Mutex<LruCache> {
        &self.shards[id.0 as usize % self.shards.len()]
    }

    /// Get `id` from the cache, loading it from `store` on a miss. The
    /// boolean is `true` on a hit. Returns the store's typed error if the
    /// load fails (the slot is simply not populated).
    pub fn get_or_load(
        &self,
        id: BlockId,
        store: &dyn BlockStore,
    ) -> Result<(Arc<Block>, bool), StoreError> {
        let mut shard = self.shard(id).lock();
        if let Some(b) = shard.get(id) {
            return Ok((b, true));
        }
        let b = match store.try_load(id) {
            Ok(b) => b,
            Err(e) => {
                // An errored load is not a load: B_L and the efficiency
                // figure stay truthful; the attempt lands in `failed`.
                shard.record_failed();
                return Err(e);
            }
        };
        shard.insert(Arc::clone(&b));
        Ok((b, false))
    }

    /// Total block capacity (sum over shards).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Number of shards (= independent locks).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Blocks currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merged hit/load/purge counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.merge(&s.lock().stats());
        }
        total
    }

    /// Resident block ids across all shards (unordered).
    pub fn resident(&self) -> Vec<BlockId> {
        let mut ids = Vec::new();
        for s in &self.shards {
            ids.extend(s.lock().resident());
        }
        ids
    }

    /// Deterministic residency manifest: each shard's blocks coldest-first
    /// (per-shard LRU order), shards in index order. Feeding this to
    /// [`prefetch`](Self::prefetch) on a fresh cache reproduces the
    /// resident set with the same relative recency within every shard.
    pub fn manifest(&self) -> Vec<BlockId> {
        let mut ids = Vec::new();
        for s in &self.shards {
            ids.extend(s.lock().manifest());
        }
        ids
    }

    /// Load `blocks` through the cache in order (a warm-start). Returns how
    /// many are resident afterwards; blocks that fail to load are skipped —
    /// a warm-start is best-effort, never fatal.
    pub fn prefetch(&self, blocks: &[BlockId], store: &dyn BlockStore) -> usize {
        let mut loaded = 0;
        for &id in blocks {
            if self.get_or_load(id, store).is_ok() {
                loaded += 1;
            }
        }
        loaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_iosim::MemoryStore;
    use streamline_math::{Aabb, Vec3};

    fn store(n: u32) -> MemoryStore {
        MemoryStore::from_blocks(
            (0..n)
                .map(|i| Block::zeroed(BlockId(i), Aabb::unit(), 0, [2, 2, 2], Vec3::splat(1.0)))
                .collect(),
        )
    }

    #[test]
    fn hit_and_miss_accounting_is_exact() {
        let cache = SharedBlockCache::new(8, 4);
        let st = store(8);
        for round in 0..3 {
            for i in 0..8 {
                let (b, hit) = cache.get_or_load(BlockId(i), &st).unwrap();
                assert_eq!(b.id, BlockId(i));
                assert_eq!(hit, round > 0);
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.loaded, 8);
        assert_eq!(stats.hits, 16);
        assert_eq!(stats.purged, 0);
    }

    #[test]
    fn capacity_bounds_resident_set() {
        let cache = SharedBlockCache::new(4, 2);
        let st = store(32);
        for i in 0..32 {
            cache.get_or_load(BlockId(i), &st).unwrap();
        }
        assert!(cache.len() <= cache.capacity());
        let stats = cache.stats();
        assert_eq!(stats.loaded - stats.purged, cache.len() as u64);
    }

    #[test]
    fn load_failure_is_propagated_not_cached() {
        let cache = SharedBlockCache::new(4, 2);
        let st = store(2);
        let err = cache.get_or_load(BlockId(9), &st).unwrap_err();
        assert!(matches!(err, StoreError::UnknownBlock { id: BlockId(9), .. }));
        assert_eq!(cache.len(), 0);
        // A subsequent valid load still works.
        assert!(!cache.get_or_load(BlockId(1), &st).unwrap().1);
        // The failure is counted as failed, not as a load.
        let stats = cache.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.loaded, 1);
    }

    #[test]
    fn single_shard_degenerates_to_plain_lru() {
        let cache = SharedBlockCache::new(2, 1);
        let st = store(3);
        cache.get_or_load(BlockId(0), &st).unwrap();
        cache.get_or_load(BlockId(1), &st).unwrap();
        cache.get_or_load(BlockId(2), &st).unwrap(); // evicts 0
        let resident = cache.resident();
        assert_eq!(resident.len(), 2);
        assert!(!resident.contains(&BlockId(0)));
        assert_eq!(cache.stats().purged, 1);
    }
}
