//! A long-running *resident* driver session: queries stream into one
//! open-loop run instead of each paying for a one-shot run of its own.
//!
//! [`Service`](crate::service::Service) amortizes block I/O across
//! requests but still integrates each request independently. A
//! [`ResidentSession`] goes further down the ISSUE-9 path: every query
//! becomes one *ingest epoch* of a single
//! [`streamline_core::SeedSource`], the whole stream runs through one
//! driver session on the simulated cluster, and the frontier termination
//! protocol proves per-epoch completion — the moment a query's epoch
//! falls behind the global frontier, its [`QueryTicket`] resolves with
//! exactly that query's streamlines and the virtual completion time.
//!
//! Streamline ids are assigned contiguously in enqueue order (the
//! [`SeedSource`] id space), so each ticket's results are recovered from
//! the flat output by id range alone — no per-seed bookkeeping on the
//! hot path, and the driver's conservation accounting
//! (`completed + unavailable + rank_lost == ingested`) covers every query
//! in the session as one invariant.

use crate::service::ServiceGone;
use crossbeam::channel::{bounded, Receiver, Sender};
use streamline_core::{
    run_simulated_open_detailed, EpochMap, IngestError, RunConfig, RunReport, SeedSource,
};
use streamline_field::dataset::Dataset;
use streamline_field::seeds::SeedSet;
use streamline_integrate::Streamline;
use streamline_math::Vec3;

/// One query's resolved results: the streamlines seeded by that query,
/// with the virtual times bracketing its life in the session.
#[derive(Debug)]
pub struct QueryResult {
    /// The ingest epoch this query became (1-based; epoch 0 is the empty
    /// base the session starts from).
    pub epoch: u32,
    /// Virtual time the query's seeds arrived.
    pub arrived_at: f64,
    /// Virtual time the frontier confirmed the epoch complete — every
    /// streamline of this query (and all earlier epochs) terminated.
    pub completed_at: f64,
    /// This query's terminated streamlines, in seed order.
    pub streamlines: Vec<Streamline>,
}

/// Handle to one enqueued query; resolves when [`ResidentSession::run`]
/// drains the session and the query's epoch completes.
pub struct QueryTicket {
    /// The ingest epoch assigned to this query.
    pub epoch: u32,
    rx: Receiver<QueryResult>,
}

impl QueryTicket {
    /// Redeem the ticket. Typed [`ServiceGone`] if the session was dropped
    /// (or a query ahead of this one destroyed the run) without answering.
    pub fn wait(self) -> Result<QueryResult, ServiceGone> {
        self.rx.recv().map_err(|_| ServiceGone { request_id: u64::from(self.epoch) })
    }
}

struct PendingQuery {
    at: f64,
    points: Vec<Vec3>,
    tx: Sender<QueryResult>,
}

/// Accumulates queries as ingest epochs, then runs them all as one
/// open-loop driver session. See the [module docs](self).
pub struct ResidentSession {
    label: String,
    cfg: RunConfig,
    queries: Vec<PendingQuery>,
    prev_at: f64,
}

impl ResidentSession {
    /// A new session integrating with `cfg` (algorithm, rank count,
    /// limits, and the termination detector kind all honored as-is).
    pub fn new(label: &str, cfg: RunConfig) -> Self {
        ResidentSession { label: label.to_string(), cfg, queries: Vec::new(), prev_at: 0.0 }
    }

    /// Enqueue one query: `points` arrive together at virtual time `at`.
    /// Arrival times must be finite, non-negative, and non-decreasing in
    /// enqueue order — violations are typed [`IngestError`]s here, at
    /// ingestion, exactly like a malformed [`SeedSource`].
    pub fn enqueue(&mut self, at: f64, points: Vec<Vec3>) -> Result<QueryTicket, IngestError> {
        let epoch = (self.queries.len() + 1) as u32;
        if !at.is_finite() || at < 0.0 {
            return Err(IngestError::BadArrivalTime { epoch, at });
        }
        if at < self.prev_at {
            return Err(IngestError::NonMonotoneArrival { epoch, at, previous: self.prev_at });
        }
        self.prev_at = at;
        let (tx, rx) = bounded(1);
        self.queries.push(PendingQuery { at, points, tx });
        Ok(QueryTicket { epoch, rx })
    }

    /// Seeds enqueued so far, across every pending query.
    pub fn pending_seeds(&self) -> usize {
        self.queries.iter().map(|q| q.points.len()).sum()
    }

    /// Run every enqueued query as one open-loop driver session and
    /// resolve each ticket with its epoch's results as the frontier
    /// confirms them. Returns the session-wide [`RunReport`] — its
    /// conservation invariant covers all queries at once.
    pub fn run(self, dataset: &Dataset) -> RunReport {
        let base = SeedSet { label: self.label.clone(), points: Vec::new() };
        let arrivals = self.queries.iter().map(|q| (q.at, q.points.clone())).collect();
        let source = SeedSource::new(&base, arrivals).expect("enqueue validated the schedule");
        let emap = EpochMap::of(&source);
        let (report, streamlines) = run_simulated_open_detailed(dataset, &source, &self.cfg);

        // Partition the flat output by ingest epoch: ids are contiguous in
        // epoch order, so each streamline maps to its query by id alone.
        let mut per_epoch: Vec<Vec<Streamline>> =
            (0..source.n_epochs()).map(|_| Vec::new()).collect();
        for sl in streamlines {
            per_epoch[emap.epoch_of(sl.id) as usize].push(sl);
        }
        let mut epochs = per_epoch.into_iter();
        let _empty_base = epochs.next();
        for (i, (q, sls)) in self.queries.into_iter().zip(epochs).enumerate() {
            let epoch = (i + 1) as u32;
            // A client that dropped its ticket just doesn't hear back.
            let _ = q.tx.send(QueryResult {
                epoch,
                arrived_at: q.at,
                completed_at: report
                    .ingest_epoch_completions
                    .get(epoch as usize)
                    .copied()
                    .unwrap_or(f64::NAN),
                streamlines: sls,
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_core::{run_simulated_detailed, Algorithm, DetectorKind};
    use streamline_field::dataset::{DatasetConfig, Seeding};

    fn dataset() -> Dataset {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        Dataset::thermal_hydraulics(dcfg)
    }

    fn cfg(detector: DetectorKind) -> RunConfig {
        let mut cfg = RunConfig::new(Algorithm::LoadOnDemand, 4);
        cfg.limits.max_steps = 200;
        cfg.detector = detector;
        cfg
    }

    #[test]
    fn queries_resolve_per_epoch_with_exact_conservation() {
        let ds = dataset();
        let seeds = ds.seeds_with_count(Seeding::Dense, 24);
        let mut session = ResidentSession::new("resident", cfg(DetectorKind::Frontier));
        let t1 = session.enqueue(0.0, seeds.points[..10].to_vec()).expect("well-formed");
        let t2 = session.enqueue(2.0e-4, seeds.points[10..18].to_vec()).expect("well-formed");
        let t3 = session.enqueue(5.0e-4, seeds.points[18..].to_vec()).expect("well-formed");
        assert_eq!(session.pending_seeds(), 24);

        let report = session.run(&ds);
        assert_eq!(report.terminated, 24, "session-wide conservation");
        assert_eq!(report.ingest_epochs, 4, "empty base + three query epochs");
        assert_eq!(report.ingest_frontier_epochs, 4, "frontier confirmed every epoch");

        let (r1, r2, r3) = (
            t1.wait().expect("answered"),
            t2.wait().expect("answered"),
            t3.wait().expect("answered"),
        );
        assert_eq!(r1.streamlines.len(), 10);
        assert_eq!(r2.streamlines.len(), 8);
        assert_eq!(r3.streamlines.len(), 6);
        // Contiguous, disjoint id ranges in enqueue order.
        for (r, range) in [(&r1, 0u32..10), (&r2, 10..18), (&r3, 18..24)] {
            let mut ids: Vec<u32> = r.streamlines.iter().map(|sl| sl.id.0).collect();
            ids.sort_unstable();
            assert_eq!(ids, range.collect::<Vec<_>>());
        }
        // Frontier-confirmed completion times are real and causal.
        for r in [&r1, &r2, &r3] {
            assert!(r.completed_at.is_finite());
            assert!(r.completed_at >= r.arrived_at, "epoch {} completed before arriving", r.epoch);
        }
    }

    #[test]
    fn single_query_session_matches_a_closed_run_bit_for_bit() {
        // One query at t=0 through the resident session (frontier
        // detector) vs. the same seeds as a one-shot closed run
        // (closed-set detector): the streamlines must agree exactly.
        let ds = dataset();
        let seeds = ds.seeds_with_count(Seeding::Sparse, 16);
        let mut session = ResidentSession::new("resident", cfg(DetectorKind::Frontier));
        let ticket = session.enqueue(0.0, seeds.points.clone()).expect("well-formed");
        session.run(&ds);
        let got = ticket.wait().expect("answered");

        let (_, want) = run_simulated_detailed(&ds, &seeds, &cfg(DetectorKind::ClosedSet));
        assert_eq!(got.streamlines.len(), want.len());
        let mut got_sls = got.streamlines;
        got_sls.sort_by_key(|sl| sl.id);
        for (a, b) in got_sls.iter().zip(&want) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.status, b.status);
            assert_eq!(a.geometry, b.geometry, "streamline {:?} diverged", a.id);
        }
    }

    #[test]
    fn malformed_schedules_are_typed_errors_at_enqueue() {
        let mut session = ResidentSession::new("resident", cfg(DetectorKind::Frontier));
        session.enqueue(1.0, vec![Vec3::ZERO]).expect("well-formed");
        assert!(matches!(
            session.enqueue(0.5, vec![Vec3::ZERO]),
            Err(IngestError::NonMonotoneArrival { epoch: 2, .. })
        ));
        assert!(matches!(
            session.enqueue(f64::NAN, vec![Vec3::ZERO]),
            Err(IngestError::BadArrivalTime { epoch: 2, .. })
        ));
        assert!(matches!(
            session.enqueue(-1.0, vec![Vec3::ZERO]),
            Err(IngestError::BadArrivalTime { .. })
        ));
    }

    #[test]
    fn dropped_session_resolves_tickets_as_gone() {
        let mut session = ResidentSession::new("resident", cfg(DetectorKind::Frontier));
        let ticket = session.enqueue(0.0, vec![Vec3::ZERO]).expect("well-formed");
        drop(session);
        let err = ticket.wait().expect_err("dropped session must surface as ServiceGone");
        assert_eq!(err, ServiceGone { request_id: 1 });
    }

    #[test]
    fn empty_query_epochs_still_resolve() {
        // A query with zero seeds is a legal epoch: it resolves with an
        // empty result instead of wedging the frontier.
        let ds = dataset();
        let seeds = ds.seeds_with_count(Seeding::Sparse, 4);
        let mut session = ResidentSession::new("resident", cfg(DetectorKind::Frontier));
        let t1 = session.enqueue(0.0, seeds.points.clone()).expect("well-formed");
        let t2 = session.enqueue(1.0e-4, Vec::new()).expect("well-formed");
        let report = session.run(&ds);
        assert_eq!(report.terminated, 4);
        assert_eq!(t1.wait().expect("answered").streamlines.len(), 4);
        let empty = t2.wait().expect("answered");
        assert_eq!(empty.epoch, 2);
        assert!(empty.streamlines.is_empty());
    }
}
