//! Per-block circuit breakers and the load retry policy.
//!
//! A block whose loads keep failing must not be allowed to stall every
//! batch that touches it: after `failure_threshold` consecutive load
//! failures the block's breaker *opens* and subsequent batches fail fast
//! (no store call, no retry sleeps) until `cooldown` elapses. The first
//! batch after the cooldown is admitted as a *half-open probe*: one
//! attempt, no retries. Success closes the breaker; failure re-opens it
//! for another cooldown.
//!
//! [`RetryPolicy`] is the companion knob: bounded exponential backoff with
//! deterministic jitter (a hash of `(block, attempt)`, not a clock or an
//! RNG), so two runs of the same fault plan sleep the same schedule.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamline_field::block::BlockId;

/// The breaker's notion of "now". Injected so cooldown transitions can be
/// tested with a virtual clock instead of real sleeps.
pub trait BreakerClock: Send + Sync {
    fn now(&self) -> Instant;
}

/// The production clock: `Instant::now()`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl BreakerClock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A hand-cranked clock for tests: time moves only via [`ManualClock::advance`].
#[derive(Debug)]
pub struct ManualClock {
    now: Mutex<Instant>,
}

impl Default for ManualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ManualClock {
    pub fn new() -> Self {
        ManualClock { now: Mutex::new(Instant::now()) }
    }

    pub fn advance(&self, by: Duration) {
        let mut now = self.now.lock();
        *now += by;
    }
}

impl BreakerClock for ManualClock {
    fn now(&self) -> Instant {
        *self.now.lock()
    }
}

/// When a block's breaker opens and how long it stays open.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive load failures (retries exhausted) before the breaker
    /// opens. Clamped to at least 1.
    pub failure_threshold: u32,
    /// How long an open breaker fails fast before admitting a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown: Duration::from_millis(250) }
    }
}

/// Bounded exponential backoff between load attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per batch (1 = no retries). Clamped to at least 1.
    pub max_attempts: u32,
    /// Sleep before retry `k` is `base * 2^(k-1)` (capped at `max`), scaled
    /// by a deterministic jitter factor in `[0.5, 1.0]`.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(1),
            max: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based) of a load salted by
    /// `salt` (the block id). Deterministic: no clock, no RNG.
    pub fn backoff(&self, retry: u32, salt: u64) -> Duration {
        let exp = self.base.saturating_mul(1u32 << retry.saturating_sub(1).min(20)).min(self.max);
        // splitmix64 of (salt, retry) -> jitter factor in [0.5, 1.0].
        let mut z = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(u64::from(retry));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let jitter = 0.5 + (z % 1000) as f64 / 2000.0;
        exp.mul_f64(jitter)
    }
}

/// What the breaker says about a load attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed: load normally (full retry budget).
    Allow,
    /// Half-open probe: one attempt, no retries; the outcome decides
    /// whether the breaker closes or re-opens.
    Probe,
    /// Breaker open: do not touch the store; fail the batch immediately.
    FastFail,
}

enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
    HalfOpen,
}

/// The registry: one lazy breaker per block that has ever failed.
pub struct BlockBreakers {
    cfg: BreakerConfig,
    clock: Arc<dyn BreakerClock>,
    states: Mutex<HashMap<BlockId, BreakerState>>,
    fast_fails: AtomicU64,
    trips: AtomicU64,
}

impl BlockBreakers {
    pub fn new(cfg: BreakerConfig) -> Self {
        Self::with_clock(cfg, Arc::new(SystemClock))
    }

    /// Like [`BlockBreakers::new`] but with an explicit clock — tests pass
    /// a [`ManualClock`] so cooldown expiry is exact, not sleep-raced.
    pub fn with_clock(cfg: BreakerConfig, clock: Arc<dyn BreakerClock>) -> Self {
        BlockBreakers {
            cfg: BreakerConfig { failure_threshold: cfg.failure_threshold.max(1), ..cfg },
            clock,
            states: Mutex::new(HashMap::new()),
            fast_fails: AtomicU64::new(0),
            trips: AtomicU64::new(0),
        }
    }

    /// Gate a load of `id`. `FastFail` is counted; while half-open, only
    /// the first caller gets the probe — concurrent batches fail fast
    /// rather than hammering a store that is likely still down.
    pub fn admit(&self, id: BlockId) -> Admit {
        let mut states = self.states.lock();
        let Some(state) = states.get_mut(&id) else { return Admit::Allow };
        match state {
            BreakerState::Closed { .. } => Admit::Allow,
            BreakerState::Open { since } => {
                if self.clock.now().saturating_duration_since(*since) >= self.cfg.cooldown {
                    *state = BreakerState::HalfOpen;
                    Admit::Probe
                } else {
                    self.fast_fails.fetch_add(1, Ordering::Relaxed);
                    Admit::FastFail
                }
            }
            BreakerState::HalfOpen => {
                self.fast_fails.fetch_add(1, Ordering::Relaxed);
                Admit::FastFail
            }
        }
    }

    /// A load of `id` succeeded: close (forget) its breaker.
    pub fn on_success(&self, id: BlockId) {
        self.states.lock().remove(&id);
    }

    /// A load of `id` exhausted its retries. Returns `true` if this
    /// failure tripped the breaker open.
    pub fn on_failure(&self, id: BlockId) -> bool {
        let mut states = self.states.lock();
        let state = states.entry(id).or_insert(BreakerState::Closed { consecutive_failures: 0 });
        match state {
            BreakerState::Closed { consecutive_failures } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.cfg.failure_threshold {
                    *state = BreakerState::Open { since: self.clock.now() };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen | BreakerState::Open { .. } => {
                *state = BreakerState::Open { since: self.clock.now() };
                self.trips.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// Blocks whose breaker is currently open or half-open.
    pub fn quarantined(&self) -> usize {
        self.states.lock().values().filter(|s| !matches!(s, BreakerState::Closed { .. })).count()
    }

    /// Loads answered `FastFail` without touching the store, cumulative.
    pub fn fast_fails(&self) -> u64 {
        self.fast_fails.load(Ordering::Relaxed)
    }

    /// Times any breaker transitioned to open, cumulative.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BreakerConfig {
        BreakerConfig { failure_threshold: 2, cooldown: Duration::from_millis(20) }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = BlockBreakers::new(fast_cfg());
        let id = BlockId(3);
        assert_eq!(b.admit(id), Admit::Allow);
        assert!(!b.on_failure(id));
        assert_eq!(b.admit(id), Admit::Allow, "one failure is below threshold");
        assert!(b.on_failure(id));
        assert_eq!(b.admit(id), Admit::FastFail);
        assert_eq!(b.quarantined(), 1);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.fast_fails(), 1);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = BlockBreakers::new(fast_cfg());
        let id = BlockId(0);
        b.on_failure(id);
        b.on_success(id);
        assert!(!b.on_failure(id), "streak restarted after success");
        assert_eq!(b.admit(id), Admit::Allow);
        assert_eq!(b.quarantined(), 0, "closed breakers are not quarantined");
    }

    #[test]
    fn half_open_probe_after_cooldown_then_close_or_reopen() {
        // A ManualClock makes every cooldown transition exact: no sleeps,
        // no flakes on loaded CI machines.
        let clock = Arc::new(ManualClock::new());
        let b = BlockBreakers::with_clock(fast_cfg(), Arc::clone(&clock) as Arc<dyn BreakerClock>);
        let id = BlockId(7);
        b.on_failure(id);
        b.on_failure(id);
        assert_eq!(b.admit(id), Admit::FastFail);
        // One tick short of the cooldown: still open.
        clock.advance(Duration::from_millis(19));
        assert_eq!(b.admit(id), Admit::FastFail, "cooldown not yet elapsed");
        clock.advance(Duration::from_millis(1));
        assert_eq!(b.admit(id), Admit::Probe, "cooldown elapsed exactly");
        // While the probe is outstanding, siblings fail fast.
        assert_eq!(b.admit(id), Admit::FastFail);
        // Probe fails: straight back to open (no threshold counting).
        assert!(b.on_failure(id));
        assert_eq!(b.admit(id), Admit::FastFail);
        clock.advance(Duration::from_millis(20));
        assert_eq!(b.admit(id), Admit::Probe);
        b.on_success(id);
        assert_eq!(b.admit(id), Admit::Allow);
        assert_eq!(b.quarantined(), 0);
    }

    #[test]
    fn manual_clock_reopen_restarts_the_cooldown() {
        // A failed probe must re-arm the full cooldown from the failure
        // instant, not from the original trip.
        let clock = Arc::new(ManualClock::new());
        let b = BlockBreakers::with_clock(fast_cfg(), Arc::clone(&clock) as Arc<dyn BreakerClock>);
        let id = BlockId(11);
        b.on_failure(id);
        b.on_failure(id);
        clock.advance(Duration::from_millis(20));
        assert_eq!(b.admit(id), Admit::Probe);
        b.on_failure(id);
        // 19 ms after the re-trip: still open even though 39 ms have passed
        // since the first trip.
        clock.advance(Duration::from_millis(19));
        assert_eq!(b.admit(id), Admit::FastFail);
        clock.advance(Duration::from_millis(1));
        assert_eq!(b.admit(id), Admit::Probe);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn breakers_are_per_block() {
        let b = BlockBreakers::new(fast_cfg());
        b.on_failure(BlockId(1));
        b.on_failure(BlockId(1));
        assert_eq!(b.admit(BlockId(1)), Admit::FastFail);
        assert_eq!(b.admit(BlockId(2)), Admit::Allow);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(2),
            max: Duration::from_millis(10),
        };
        let a = p.backoff(1, 42);
        assert_eq!(a, p.backoff(1, 42), "same inputs, same sleep");
        assert_ne!(a, p.backoff(1, 43), "jitter varies with the salt");
        for retry in 1..10 {
            let d = p.backoff(retry, 7);
            assert!(d >= Duration::from_millis(1), "jitter floor is base/2, got {d:?}");
            assert!(d <= Duration::from_millis(10), "capped at max, got {d:?}");
        }
        // Pre-cap growth: retry 2's uncapped exponent doubles retry 1's.
        assert!(p.backoff(2, 7) > p.backoff(1, 7).mul_f64(0.99));
    }
}
