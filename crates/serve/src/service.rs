//! The query service: admission control, the per-block batch former, the
//! worker pool, deadlines, and graceful drain.
//!
//! # Life of a request
//!
//! 1. [`Service::submit`] checks admission (live seeds < queue capacity;
//!    over capacity ⇒ [`SubmitError::Overloaded`], immediately, without
//!    blocking), assigns [`StreamlineId`]s in seed order exactly like the
//!    single-shot driver, and parks one work item per seed in the queue of
//!    the block that owns it.
//! 2. Workers repeatedly claim the *entire queue* of the block with the
//!    most parked items (ties broken toward the lowest block id), acquire
//!    that block once through the [`SharedBlockCache`], and advance every
//!    parked streamline through it — the request-coalescing analogue of
//!    the paper's Load-On-Demand locality. Streamlines that exit into
//!    another block are re-parked; terminated ones are returned to their
//!    request.
//! 3. When the last seed of a request resolves, the [`Response`] is
//!    completed and the client's [`Ticket`] unblocks.
//!
//! Advancement itself is [`streamline_core::advance::advance_in_block`] —
//! the same function the batch drivers use — so served streamlines are
//! bit-identical to single-shot runs with the same [`StepLimits`].

use crate::breaker::{Admit, BlockBreakers, BreakerConfig, RetryPolicy};
use crate::cache::SharedBlockCache;
use crate::metrics::{LatencyHistogram, ServiceMetrics};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use streamline_core::advance::advance_batch_in_block;
use streamline_core::workspace::BlockExit;
use streamline_field::block::{Block, BlockId};
use streamline_field::decomp::BlockDecomposition;
use streamline_integrate::{StepLimits, Streamline, StreamlineBatch, StreamlineId, Termination};
use streamline_iosim::BlockStore;
use streamline_math::Vec3;
use streamline_obs::{names, Counter, MetricsRegistry, Phase, TraceFile, WallTimeline};

/// Tuning knobs for [`Service::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads advancing streamlines.
    pub workers: usize,
    /// Total block capacity of the shared cache.
    pub cache_blocks: usize,
    /// Lock shards in the shared cache.
    pub cache_shards: usize,
    /// Admission bound: maximum seeds admitted but not yet resolved.
    pub queue_capacity: usize,
    /// Backoff schedule for failed block loads.
    pub retry: RetryPolicy,
    /// Per-block circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// When set, record a wall-clock phase timeline (idle/io/compute/comm
    /// per worker) at this bucket resolution, exposed via
    /// [`Service::timeline`]. `None` (the default) costs nothing.
    pub trace_bucket: Option<Duration>,
    /// Batch width for the advection kernel: a worker drains a claimed
    /// block queue in chunks of up to this many streamlines per batch-kernel
    /// call. Results are bit-identical at any width; 1 is the scalar path.
    pub batch: usize,
    /// Fault injection for tests: panic the first worker batch that claims
    /// this block, exercising the panic-containment path. Fires once.
    #[doc(hidden)]
    pub panic_on_block: Option<BlockId>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            cache_blocks: 64,
            cache_shards: 8,
            queue_capacity: 4096,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            trace_bucket: None,
            batch: 16,
            panic_on_block: None,
        }
    }
}

/// One query: a set of seed points plus how to integrate them.
#[derive(Debug, Clone)]
pub struct Request {
    pub seeds: Vec<Vec3>,
    pub limits: StepLimits,
    /// Give up (and respond with [`Outcome::DeadlineExceeded`]) if the
    /// request has not finished by this instant.
    pub deadline: Option<Instant>,
}

impl Request {
    pub fn new(seeds: Vec<Vec3>) -> Self {
        Request { seeds, limits: StepLimits::default(), deadline: None }
    }

    pub fn with_limits(mut self, limits: StepLimits) -> Self {
        self.limits = limits;
        self
    }

    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why [`Service::submit`] refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admitting this request would exceed the service's seed queue
    /// capacity. Back off and retry; nothing was enqueued.
    Overloaded {
        /// Seeds already admitted and unresolved.
        queue_depth: usize,
        /// The admission bound.
        capacity: usize,
        /// Seeds in the rejected request.
        requested: usize,
    },
    /// The service is draining; no new work is accepted.
    ShuttingDown,
    /// The request carried no seeds.
    Empty,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded { queue_depth, capacity, requested } => write!(
                f,
                "service overloaded: {requested} seeds requested but queue holds \
                 {queue_depth}/{capacity}"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::Empty => write!(f, "request has no seeds"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a request finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every seed was integrated to termination.
    Completed,
    /// Every seed resolved, but `unavailable` of them were cut short by a
    /// block that could not be loaded (store fault, retries exhausted, or
    /// breaker open). Their streamlines are in the response, terminated
    /// [`Termination::BlockUnavailable`] with the curve computed so far.
    Partial { unavailable: usize },
    /// The deadline passed first; `dropped` seeds were abandoned
    /// mid-integration and are not in the response.
    DeadlineExceeded { dropped: usize },
}

/// The service's answer to one [`Request`].
#[derive(Debug)]
pub struct Response {
    pub request_id: u64,
    pub outcome: Outcome,
    /// Terminated streamlines, ordered by [`StreamlineId`] (= seed order).
    pub streamlines: Vec<Streamline>,
    /// Submission-to-completion latency.
    pub latency: Duration,
}

/// Why redeeming a [`Ticket`] failed: the service was torn down without
/// answering. Graceful drain answers every pending ticket, so this is only
/// reachable when a worker died mid-batch (panic/abort) and took the
/// request's state with it — a fault the caller must see as a typed error,
/// not as a panic of *its own* thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceGone {
    pub request_id: u64,
}

impl fmt::Display for ServiceGone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "service dropped pending request {} without answering", self.request_id)
    }
}

impl std::error::Error for ServiceGone {}

/// Result of a non-blocking [`Ticket::try_wait`] that did not resolve.
#[derive(Debug)]
pub enum TryWait {
    /// Still in flight; the ticket is handed back for a later poll.
    Pending(Ticket),
    /// The service died without answering (see [`ServiceGone`]).
    Gone(ServiceGone),
}

/// Handle to a pending request; redeem with [`Ticket::wait`].
pub struct Ticket {
    pub request_id: u64,
    rx: Receiver<Response>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").field("request_id", &self.request_id).finish_non_exhaustive()
    }
}

impl Ticket {
    /// Assemble a ticket from a request id and the response channel that
    /// will eventually carry its answer. Intended for alternative front
    /// ends (the replica cluster) that reuse the serve request/response
    /// vocabulary but run their own scheduler; regular clients get tickets
    /// from [`Service::submit`].
    #[doc(hidden)]
    pub fn from_parts(request_id: u64, rx: Receiver<Response>) -> Ticket {
        Ticket { request_id, rx }
    }

    /// Block until the service responds.
    pub fn wait(self) -> Result<Response, ServiceGone> {
        self.rx.recv().map_err(|_| ServiceGone { request_id: self.request_id })
    }

    /// Non-blocking poll; hands the ticket back while still pending.
    pub fn try_wait(self) -> Result<Response, TryWait> {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok(r) => Ok(r),
            Err(TryRecvError::Empty) => Err(TryWait::Pending(self)),
            Err(TryRecvError::Disconnected) => {
                Err(TryWait::Gone(ServiceGone { request_id: self.request_id }))
            }
        }
    }
}

/// One streamline parked in a block queue, plus its parent request.
struct WorkItem {
    sl: Streamline,
    req: Arc<RequestState>,
}

/// Shared, mostly-atomic state of one in-flight request.
struct RequestState {
    id: u64,
    limits: StepLimits,
    deadline: Option<Instant>,
    submitted: Instant,
    /// Set once the deadline is observed expired; later items short-circuit.
    expired: AtomicBool,
    /// Set when a worker panic destroyed part of this request's state.
    /// Completion then resolves the ticket as [`ServiceGone`] (the sender
    /// is dropped without an answer) instead of sending a partial lie.
    poisoned: AtomicBool,
    /// Seeds not yet resolved; the item that drops this to zero completes
    /// the request.
    remaining: AtomicUsize,
    /// Seeds abandoned because the deadline passed.
    dropped: AtomicUsize,
    /// Seeds terminated `BlockUnavailable` by store faults.
    unavailable: AtomicUsize,
    finished: Mutex<Vec<Streamline>>,
    tx: Sender<Response>,
}

/// The batch former: per-block queues of parked work.
#[derive(Default)]
struct SchedState {
    queues: BTreeMap<BlockId, Vec<WorkItem>>,
    /// Items currently checked out by workers (claimed but not re-parked
    /// or finished). Drain completes when queues are empty *and* this is 0.
    in_flight: usize,
    shutting_down: bool,
}

struct Scheduler {
    state: Mutex<SchedState>,
    /// Signalled when work arrives or the last item drains.
    work_ready: Condvar,
}

struct ServiceInner {
    decomp: BlockDecomposition,
    store: Arc<dyn BlockStore>,
    cache: SharedBlockCache,
    breakers: BlockBreakers,
    retry: RetryPolicy,
    sched: Scheduler,
    /// Seeds admitted but unresolved — the admission-control gauge.
    pending_seeds: AtomicUsize,
    queue_capacity: usize,
    next_request_id: AtomicU64,
    started: Instant,
    /// The unified metric store. The counters below are registered handles
    /// into it, so the hot path is still one relaxed atomic increment;
    /// gauges and externally-owned counters (breakers, cache) are mirrored
    /// in by [`refresh_registry`] at snapshot/dump time.
    registry: Arc<MetricsRegistry>,
    submitted: Counter,
    completed: Counter,
    rejected: Counter,
    deadline_expired: Counter,
    partial: Counter,
    load_retries: Counter,
    load_failures: Counter,
    streamlines_unavailable: Counter,
    streamlines_completed: Counter,
    total_steps: Counter,
    sampler_hits: Counter,
    sampler_misses: Counter,
    batched_lanes: Counter,
    worker_panics: Counter,
    requests_gone: Counter,
    /// Batch width for the advection kernel (≥ 1).
    batch: usize,
    /// Test-only fault injection (see [`ServiceConfig::panic_on_block`]).
    panic_on_block: Option<BlockId>,
    panic_fired: AtomicBool,
    latency: LatencyHistogram,
    /// Wall-clock phase timeline, present only when
    /// [`ServiceConfig::trace_bucket`] was set.
    trace: Option<WallTimeline>,
}

/// A running streamline query service. See the [module docs](self).
pub struct Service {
    inner: Arc<ServiceInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Spawn the worker pool and start accepting requests against
    /// `decomp`/`store`.
    pub fn start(
        decomp: BlockDecomposition,
        store: Arc<dyn BlockStore>,
        cfg: ServiceConfig,
    ) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let n_workers = cfg.workers.max(1);
        let inner = Arc::new(ServiceInner {
            decomp,
            store,
            cache: SharedBlockCache::new(cfg.cache_blocks, cfg.cache_shards),
            breakers: BlockBreakers::new(cfg.breaker),
            retry: cfg.retry,
            sched: Scheduler {
                state: Mutex::new(SchedState::default()),
                work_ready: Condvar::new(),
            },
            pending_seeds: AtomicUsize::new(0),
            queue_capacity: cfg.queue_capacity.max(1),
            next_request_id: AtomicU64::new(0),
            started: Instant::now(),
            submitted: registry.counter(names::SERVE_SUBMITTED_TOTAL),
            completed: registry.counter(names::SERVE_COMPLETED_TOTAL),
            rejected: registry.counter(names::SERVE_REJECTED_TOTAL),
            deadline_expired: registry.counter(names::SERVE_DEADLINE_EXPIRED_TOTAL),
            partial: registry.counter(names::SERVE_PARTIAL_TOTAL),
            load_retries: registry.counter(names::SERVE_LOAD_RETRIES_TOTAL),
            load_failures: registry.counter(names::SERVE_LOAD_FAILURES_TOTAL),
            streamlines_unavailable: registry.counter(names::SERVE_STREAMLINES_UNAVAILABLE_TOTAL),
            streamlines_completed: registry.counter(names::SERVE_STREAMLINES_COMPLETED_TOTAL),
            total_steps: registry.counter(names::SERVE_STEPS_TOTAL),
            sampler_hits: registry.counter(names::SERVE_SAMPLER_HITS_TOTAL),
            sampler_misses: registry.counter(names::SERVE_SAMPLER_MISSES_TOTAL),
            batched_lanes: registry.counter(names::SERVE_BATCHED_LANES_TOTAL),
            worker_panics: registry.counter(names::SERVE_WORKER_PANICS_TOTAL),
            requests_gone: registry.counter(names::SERVE_REQUESTS_GONE_TOTAL),
            batch: cfg.batch.max(1),
            panic_on_block: cfg.panic_on_block,
            panic_fired: AtomicBool::new(false),
            latency: LatencyHistogram::in_registry(&registry, names::SERVE_LATENCY_NANOSECONDS),
            trace: cfg.trace_bucket.map(|w| WallTimeline::new(n_workers, w)),
            registry,
        });
        let workers = (0..n_workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn serve worker")
            })
            .collect();
        Service { inner, workers }
    }

    /// Submit a request. On success the seeds are enqueued and a
    /// [`Ticket`] is returned immediately; integration proceeds on the
    /// worker pool. Rejection leaves no trace of the request.
    pub fn submit(&self, req: Request) -> Result<Ticket, SubmitError> {
        let n = req.seeds.len();
        if n == 0 {
            return Err(SubmitError::Empty);
        }
        // Optimistic admission: reserve the seats, roll back on refusal.
        let prev = self.inner.pending_seeds.fetch_add(n, Ordering::AcqRel);
        if prev + n > self.inner.queue_capacity {
            self.inner.pending_seeds.fetch_sub(n, Ordering::AcqRel);
            self.inner.rejected.inc();
            return Err(SubmitError::Overloaded {
                queue_depth: prev,
                capacity: self.inner.queue_capacity,
                requested: n,
            });
        }

        let id = self.inner.next_request_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        let state = Arc::new(RequestState {
            id,
            limits: req.limits,
            deadline: req.deadline,
            submitted: Instant::now(),
            expired: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            remaining: AtomicUsize::new(n),
            dropped: AtomicUsize::new(0),
            unavailable: AtomicUsize::new(0),
            finished: Mutex::new(Vec::with_capacity(n)),
            tx,
        });

        // Seed-order ids, exactly like the single-shot driver.
        let mut parked: BTreeMap<BlockId, Vec<WorkItem>> = BTreeMap::new();
        let mut out_of_domain = Vec::new();
        for (i, &p) in req.seeds.iter().enumerate() {
            let mut sl = Streamline::new_lean(StreamlineId(i as u32), p, req.limits.h0);
            match self.inner.decomp.locate(p) {
                Some(block) => {
                    parked.entry(block).or_default().push(WorkItem { sl, req: Arc::clone(&state) })
                }
                None => {
                    sl.terminate(Termination::ExitedDomain);
                    out_of_domain.push(sl);
                }
            }
        }

        {
            let mut st = self.inner.sched.state.lock();
            if st.shutting_down {
                drop(st);
                self.inner.pending_seeds.fetch_sub(n, Ordering::AcqRel);
                return Err(SubmitError::ShuttingDown);
            }
            let blocks_touched = parked.len();
            for (block, mut items) in parked {
                st.queues.entry(block).or_default().append(&mut items);
            }
            if blocks_touched == 1 {
                self.inner.sched.work_ready.notify_one();
            } else if blocks_touched > 1 {
                self.inner.sched.work_ready.notify_all();
            }
        }
        self.inner.submitted.inc();

        // Seeds outside the domain terminate instantly (possibly
        // completing the whole request right here on the client thread).
        for sl in out_of_domain {
            finish_item(&self.inner, &state, Some(sl));
        }

        Ok(Ticket { request_id: id, rx })
    }

    /// Prefetch `manifest` into the shared cache — typically the residency
    /// a previous instance persisted on drain. Best-effort; returns how
    /// many blocks loaded. Call before exposing the service to traffic for
    /// an accurate cold-start win.
    pub fn warm_start(&self, manifest: &crate::warm::WarmStartManifest) -> usize {
        manifest.prefetch(&self.inner.cache, self.inner.store.as_ref())
    }

    /// Snapshot the shared cache's residency for the next instance's
    /// [`warm_start`](Self::warm_start).
    pub fn residency_manifest(&self) -> crate::warm::WarmStartManifest {
        crate::warm::WarmStartManifest::of(&self.inner.cache)
    }

    /// Point-in-time health snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        snapshot(&self.inner, self.workers.len())
    }

    /// The unified metric store behind [`Service::metrics`]. Counters
    /// update live; gauges are refreshed by `metrics()`/`dump_metrics()`.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.inner.registry
    }

    /// Refresh the gauges and render every metric in Prometheus text
    /// format — the scrape endpoint's payload.
    pub fn dump_metrics(&self) -> String {
        refresh_registry(&self.inner, self.workers.len());
        self.inner.registry.render_prometheus()
    }

    /// The wall-clock phase timeline recorded so far, or `None` if the
    /// service was started without [`ServiceConfig::trace_bucket`].
    pub fn timeline(&self) -> Option<TraceFile> {
        self.inner.trace.as_ref().map(|t| t.snapshot().to_trace("wall"))
    }

    /// Stop accepting requests, drain every queued and in-flight seed,
    /// join the workers, and return the final metrics. Pending tickets all
    /// receive their responses before this returns.
    pub fn shutdown(mut self) -> ServiceMetrics {
        let n_workers = self.workers.len();
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        snapshot(&self.inner, n_workers)
    }

    fn begin_shutdown(&self) {
        let mut st = self.inner.sched.state.lock();
        st.shutting_down = true;
        self.inner.sched.work_ready.notify_all();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // A dropped service still drains: pending tickets get answers.
        if !self.workers.is_empty() {
            self.begin_shutdown();
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// Mirror every point-in-time quantity (gauges, and counters owned by the
/// breakers/cache rather than the registry) into the registry, so a
/// [`MetricsRegistry::render_prometheus`] right after is a consistent
/// scrape. The request/streamline counters need no refresh — they *are*
/// registry handles.
fn refresh_registry(inner: &ServiceInner, workers: usize) {
    let reg = &inner.registry;
    let cache_stats = inner.cache.stats();
    reg.set_gauge(names::SERVE_WORKERS, workers as f64);
    reg.set_gauge(names::SERVE_UPTIME_SECONDS, inner.started.elapsed().as_secs_f64().max(1e-9));
    reg.set_counter(names::SERVE_BREAKER_FAST_FAILS_TOTAL, inner.breakers.fast_fails());
    reg.set_counter(names::SERVE_BREAKER_TRIPS_TOTAL, inner.breakers.trips());
    reg.set_gauge(names::SERVE_BLOCKS_QUARANTINED, inner.breakers.quarantined() as f64);
    reg.set_gauge(names::SERVE_QUEUE_DEPTH, inner.pending_seeds.load(Ordering::Acquire) as f64);
    reg.set_gauge(names::SERVE_QUEUE_CAPACITY, inner.queue_capacity as f64);
    reg.set_gauge(names::SERVE_CACHE_RESIDENT_BLOCKS, inner.cache.len() as f64);
    reg.set_gauge(names::SERVE_CACHE_CAPACITY_BLOCKS, inner.cache.capacity() as f64);
    reg.set_counter(names::SERVE_CACHE_LOADED_TOTAL, cache_stats.loaded);
    reg.set_counter(names::SERVE_CACHE_PURGED_TOTAL, cache_stats.purged);
    reg.set_counter(names::SERVE_CACHE_HITS_TOTAL, cache_stats.hits);
    reg.set_counter(names::SERVE_CACHE_FAILED_LOADS_TOTAL, cache_stats.failed);
    reg.set_gauge(names::SERVE_BLOCK_EFFICIENCY, cache_stats.efficiency());
}

fn snapshot(inner: &ServiceInner, workers: usize) -> ServiceMetrics {
    refresh_registry(inner, workers);
    let uptime = inner.started.elapsed().as_secs_f64().max(1e-9);
    let completed = inner.completed.get();
    let streamlines = inner.streamlines_completed.get();
    let cache_stats = inner.cache.stats();
    let gets = cache_stats.hits + cache_stats.loaded;
    let sampler_hits = inner.sampler_hits.get();
    let sampler_misses = inner.sampler_misses.get();
    let samples = sampler_hits + sampler_misses;
    let q = |p: f64| inner.latency.quantile(p).map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0);
    ServiceMetrics {
        workers,
        uptime_secs: uptime,
        submitted: inner.submitted.get(),
        completed,
        rejected: inner.rejected.get(),
        deadline_expired: inner.deadline_expired.get(),
        partial: inner.partial.get(),
        load_retries: inner.load_retries.get(),
        load_failures: inner.load_failures.get(),
        fast_fails: inner.breakers.fast_fails(),
        breaker_trips: inner.breakers.trips(),
        blocks_quarantined: inner.breakers.quarantined(),
        worker_panics: inner.worker_panics.get(),
        requests_gone: inner.requests_gone.get(),
        streamlines_unavailable: inner.streamlines_unavailable.get(),
        streamlines_completed: streamlines,
        total_steps: inner.total_steps.get(),
        sampler_hits,
        sampler_misses,
        sampler_hit_rate: if samples == 0 { 0.0 } else { sampler_hits as f64 / samples as f64 },
        batched_lanes: inner.batched_lanes.get(),
        queue_depth: inner.pending_seeds.load(Ordering::Acquire),
        queue_capacity: inner.queue_capacity,
        throughput_rps: completed as f64 / uptime,
        streamlines_per_sec: streamlines as f64 / uptime,
        latency_p50_ms: q(0.50),
        latency_p95_ms: q(0.95),
        latency_p99_ms: q(0.99),
        cache_resident: inner.cache.len(),
        cache_capacity: inner.cache.capacity(),
        cache_hit_rate: if gets == 0 { 0.0 } else { cache_stats.hits as f64 / gets as f64 },
        block_efficiency: cache_stats.efficiency(),
        cache: cache_stats,
    }
}

/// Resolve one seed: record the streamline (if it terminated rather than
/// being dropped), release its admission seat, and complete the request if
/// it was the last one.
fn finish_item(inner: &ServiceInner, req: &Arc<RequestState>, sl: Option<Streamline>) {
    match sl {
        Some(sl) => {
            inner.streamlines_completed.inc();
            req.finished.lock().push(sl);
        }
        None => {
            req.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
    inner.pending_seeds.fetch_sub(1, Ordering::AcqRel);
    if req.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        complete_request(inner, req);
    }
}

/// Resolve one seed whose streamline was destroyed by a worker panic:
/// poison the request so its eventual completion resolves the ticket as
/// [`ServiceGone`], release the admission seat, and complete if last. The
/// conservation accounting stays exact — every admitted seed releases its
/// seat exactly once, panic or not.
fn abandon_item(inner: &ServiceInner, req: &Arc<RequestState>) {
    req.poisoned.store(true, Ordering::Release);
    inner.pending_seeds.fetch_sub(1, Ordering::AcqRel);
    if req.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        complete_request(inner, req);
    }
}

fn complete_request(inner: &ServiceInner, req: &Arc<RequestState>) {
    if req.poisoned.load(Ordering::Acquire) {
        // Part of this request's state was destroyed by a worker panic;
        // there is no honest answer to send. Dropping the sender (with the
        // last `Arc<RequestState>`) resolves the ticket as the typed
        // `ServiceGone` — never a hang, never a partial lie.
        inner.requests_gone.inc();
        return;
    }
    let latency = req.submitted.elapsed();
    let dropped = req.dropped.load(Ordering::Relaxed);
    let unavailable = req.unavailable.load(Ordering::Relaxed);
    let outcome = if dropped > 0 || req.expired.load(Ordering::Relaxed) {
        inner.deadline_expired.inc();
        Outcome::DeadlineExceeded { dropped }
    } else if unavailable > 0 {
        inner.partial.inc();
        Outcome::Partial { unavailable }
    } else {
        Outcome::Completed
    };
    let mut streamlines = std::mem::take(&mut *req.finished.lock());
    streamlines.sort_by_key(|sl| sl.id);
    inner.latency.record(latency);
    inner.completed.inc();
    // The client may have dropped its ticket; that's fine.
    let _ = req.tx.send(Response { request_id: req.id, outcome, streamlines, latency });
}

/// Claim the queue of the block with the most parked work (ties: lowest
/// block id). Returns `None` when shutting down and fully drained.
fn claim_batch(inner: &ServiceInner) -> Option<(BlockId, Vec<WorkItem>)> {
    let mut st = inner.sched.state.lock();
    loop {
        if let Some(block) = st
            .queues
            .iter()
            .min_by_key(|(id, items)| (std::cmp::Reverse(items.len()), **id))
            .map(|(id, _)| *id)
        {
            let items = st.queues.remove(&block).expect("queue just observed");
            st.in_flight += items.len();
            return Some((block, items));
        }
        if st.shutting_down && st.in_flight == 0 {
            // Fully drained: wake any sibling still waiting so it can exit.
            inner.sched.work_ready.notify_all();
            return None;
        }
        inner.sched.work_ready.wait(&mut st);
    }
}

/// Test-only fault injection: panic the first batch claiming the
/// configured block (see [`ServiceConfig::panic_on_block`]). Fires once,
/// so recovery — not the injection — dominates everything after.
fn maybe_inject_panic(inner: &ServiceInner, block_id: BlockId) {
    if inner.panic_on_block == Some(block_id) && !inner.panic_fired.swap(true, Ordering::AcqRel) {
        panic!("injected worker panic on {block_id:?}");
    }
}

fn worker_loop(inner: &ServiceInner, rank: usize) {
    // One reusable batch-kernel scratch per worker: the SoA arrays are
    // allocated once and recycled across every batch this worker drains.
    let mut scratch = StreamlineBatch::new();
    loop {
        // Time spent inside claim_batch is overwhelmingly condvar waiting:
        // the worker is starved for parked work — the serving analogue of
        // the paper's §8 processor starvation.
        let wait_start = inner.trace.as_ref().map(|_| Instant::now());
        let claimed = claim_batch(inner);
        if let (Some(tl), Some(ws)) = (inner.trace.as_ref(), wait_start) {
            tl.record(rank, Phase::Idle, ws, ws.elapsed());
        }
        let Some((block_id, items)) = claimed else { break };
        process_batch(inner, rank, block_id, items, &mut scratch);
    }
}

/// Acquire `block_id` through the shared cache with the configured retry
/// budget (one attempt only for a half-open probe). Each retry sleeps the
/// deterministic backoff schedule salted by the block id.
fn load_with_retry(inner: &ServiceInner, block_id: BlockId, probe: bool) -> Option<Arc<Block>> {
    let attempts = if probe { 1 } else { inner.retry.max_attempts.max(1) };
    for attempt in 1..=attempts {
        match inner.cache.get_or_load(block_id, inner.store.as_ref()) {
            Ok((b, _hit)) => return Some(b),
            Err(_) if attempt < attempts => {
                inner.load_retries.inc();
                std::thread::sleep(inner.retry.backoff(attempt, u64::from(block_id.0)));
            }
            Err(_) => {}
        }
    }
    None
}

fn process_batch(
    inner: &ServiceInner,
    rank: usize,
    block_id: BlockId,
    items: Vec<WorkItem>,
    scratch: &mut StreamlineBatch,
) {
    let trace = inner.trace.as_ref();
    let n_claimed = items.len();
    // Block acquisition (cache probe, store load, retry sleeps) is the
    // I/O phase of this batch.
    let io_start = trace.map(|_| Instant::now());
    let block = match inner.breakers.admit(block_id) {
        Admit::FastFail => None,
        admit => {
            let b = load_with_retry(inner, block_id, admit == Admit::Probe);
            match &b {
                Some(_) => inner.breakers.on_success(block_id),
                None => {
                    inner.load_failures.inc();
                    inner.breakers.on_failure(block_id);
                }
            }
            b
        }
    };
    if let (Some(tl), Some(t0)) = (trace, io_start) {
        tl.record(rank, Phase::Io, t0, t0.elapsed());
    }
    let Some(block) = block else {
        // Degraded mode: the block cannot be produced (retries exhausted
        // or its breaker is open). The affected streamlines terminate
        // `BlockUnavailable` — typed, with the curve computed so far —
        // instead of wedging their requests forever; already-expired
        // items are dropped as usual.
        let comm_start = trace.map(|_| Instant::now());
        {
            let mut st = inner.sched.state.lock();
            st.in_flight -= n_claimed;
            if st.shutting_down && st.in_flight == 0 && st.queues.is_empty() {
                inner.sched.work_ready.notify_all();
            }
        }
        for mut item in items {
            if item.req.expired.load(Ordering::Relaxed) {
                finish_item(inner, &item.req, None);
            } else {
                item.sl.terminate(Termination::BlockUnavailable);
                item.req.unavailable.fetch_add(1, Ordering::Relaxed);
                inner.streamlines_unavailable.inc();
                finish_item(inner, &item.req, Some(item.sl));
            }
        }
        if let (Some(tl), Some(t0)) = (trace, comm_start) {
            tl.record(rank, Phase::Comm, t0, t0.elapsed());
        }
        return;
    };

    let mut finished: Vec<(Arc<RequestState>, Option<Streamline>)> = Vec::new();
    let compute_start = trace.map(|_| Instant::now());
    let now = Instant::now();
    // Deadline check first: expired requests stop consuming compute before
    // any batch forms.
    let mut live: Vec<WorkItem> = Vec::with_capacity(items.len());
    for item in items {
        let expired = item.req.expired.load(Ordering::Relaxed)
            || item.req.deadline.is_some_and(|d| {
                let hit = now >= d;
                if hit {
                    item.req.expired.store(true, Ordering::Relaxed);
                }
                hit
            });
        if expired {
            finished.push((item.req, None));
        } else {
            live.push(item);
        }
    }
    // Batched advance: runs of items sharing the same limits coalesce into
    // batch-kernel calls chunked to the configured width. Per-streamline
    // results are bit-identical to the scalar path at any width. The whole
    // phase runs under `catch_unwind`: a panicking kernel (or the test
    // injection hook) must not take the worker thread — and with it the
    // scheduler's `in_flight` accounting and every admission seat this
    // batch holds — down with it.
    let req_refs: Vec<Arc<RequestState>> = live.iter().map(|it| Arc::clone(&it.req)).collect();
    let advanced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        maybe_inject_panic(inner, block_id);
        let mut cmoved: BTreeMap<BlockId, Vec<WorkItem>> = BTreeMap::new();
        let mut cdone: Vec<(Arc<RequestState>, Option<Streamline>)> = Vec::new();
        let mut rest = live;
        while !rest.is_empty() {
            let limits = rest[0].req.limits;
            let run_len = rest.iter().take_while(|it| it.req.limits == limits).count();
            let tail = rest.split_off(run_len);
            let (mut sls, reqs): (Vec<Streamline>, Vec<Arc<RequestState>>) =
                rest.into_iter().map(|it| (it.sl, it.req)).unzip();
            let mut exits = Vec::with_capacity(sls.len());
            for chunk in sls.chunks_mut(inner.batch) {
                let (ex, stats) =
                    advance_batch_in_block(chunk, &block, &inner.decomp, &limits, scratch);
                inner.total_steps.add(stats.steps);
                inner.sampler_hits.add(stats.sampler_hits);
                inner.sampler_misses.add(stats.sampler_misses);
                inner.batched_lanes.add(stats.batched_lanes);
                exits.extend(ex);
            }
            for ((sl, req), exit) in sls.into_iter().zip(reqs).zip(exits) {
                match exit {
                    BlockExit::MovedTo(next) => {
                        cmoved.entry(next).or_default().push(WorkItem { sl, req })
                    }
                    BlockExit::Done(_) => cdone.push((req, Some(sl))),
                }
            }
            rest = tail;
        }
        (cmoved, cdone)
    }));
    if let (Some(tl), Some(t0)) = (trace, compute_start) {
        tl.record(rank, Phase::Compute, t0, t0.elapsed());
    }
    let Ok((cmoved, mut cdone)) = advanced else {
        // Contain the panic: the unwind destroyed this batch's live
        // streamlines, so repair the scheduler accounting, resolve the
        // expired items collected before the advance as usual, and abandon
        // the rest — their requests resolve `ServiceGone`, their admission
        // seats are released, and the worker goes back to claiming work.
        inner.worker_panics.inc();
        *scratch = StreamlineBatch::new();
        {
            let mut st = inner.sched.state.lock();
            st.in_flight -= n_claimed;
            if st.shutting_down && st.in_flight == 0 && st.queues.is_empty() {
                inner.sched.work_ready.notify_all();
            }
        }
        for (req, sl) in finished {
            finish_item(inner, &req, sl);
        }
        for req in req_refs {
            abandon_item(inner, &req);
        }
        return;
    };
    let moved = cmoved;
    finished.append(&mut cdone);

    // Re-parking moved streamlines and completing responses is this
    // design's communication: handing work and results to other parties.
    let comm_start = trace.map(|_| Instant::now());
    {
        let mut st = inner.sched.state.lock();
        st.in_flight -= n_claimed;
        let blocks_touched = moved.len();
        for (block, mut batch) in moved {
            st.queues.entry(block).or_default().append(&mut batch);
        }
        match blocks_touched {
            0 => {
                if st.shutting_down && st.in_flight == 0 && st.queues.is_empty() {
                    inner.sched.work_ready.notify_all();
                }
            }
            1 => inner.sched.work_ready.notify_one(),
            _ => inner.sched.work_ready.notify_all(),
        }
    }

    for (req, sl) in finished {
        finish_item(inner, &req, sl);
    }
    if let (Some(tl), Some(t0)) = (trace, comm_start) {
        tl.record(rank, Phase::Comm, t0, t0.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamline_field::dataset::{Dataset, DatasetConfig, Seeding};
    use streamline_iosim::{FaultPlan, FaultStore, MemoryStore};

    fn tiny_service(cfg: ServiceConfig) -> (Service, Dataset) {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        let dataset = Dataset::thermal_hydraulics(dcfg);
        let store = Arc::new(MemoryStore::build(&dataset));
        let svc = Service::start(dataset.decomp, store, cfg);
        (svc, dataset)
    }

    /// Like [`tiny_service`] but with `plan` injected between the cache
    /// and the memory store, and a fast retry/breaker schedule.
    fn faulted_service(plan: FaultPlan, workers: usize) -> (Service, Dataset) {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        let dataset = Dataset::thermal_hydraulics(dcfg);
        let inner: Arc<dyn BlockStore> = Arc::new(MemoryStore::build(&dataset));
        let store = Arc::new(FaultStore::new(inner, plan));
        let cfg = ServiceConfig {
            workers,
            retry: RetryPolicy {
                max_attempts: 4,
                base: Duration::from_micros(100),
                max: Duration::from_micros(500),
            },
            breaker: BreakerConfig { failure_threshold: 1, cooldown: Duration::from_secs(600) },
            ..ServiceConfig::default()
        };
        let svc = Service::start(dataset.decomp, store, cfg);
        (svc, dataset)
    }

    fn limits() -> StepLimits {
        StepLimits { max_steps: 300, ..StepLimits::default() }
    }

    #[test]
    fn single_request_completes_all_seeds() {
        let (svc, dataset) = tiny_service(ServiceConfig::default());
        let seeds = dataset.seeds_with_count(Seeding::Sparse, 16);
        let ticket =
            svc.submit(Request::new(seeds.points.clone()).with_limits(limits())).expect("admitted");
        let resp = ticket.wait().expect("service answers");
        assert_eq!(resp.outcome, Outcome::Completed);
        assert_eq!(resp.streamlines.len(), 16);
        // Seed-order ids, each terminated.
        for (i, sl) in resp.streamlines.iter().enumerate() {
            assert_eq!(sl.id, StreamlineId(i as u32));
            assert!(!sl.is_active());
        }
        let m = svc.shutdown();
        assert_eq!(m.completed, 1);
        assert_eq!(m.streamlines_completed, 16);
        assert_eq!(m.queue_depth, 0);
    }

    #[test]
    fn empty_request_is_rejected() {
        let (svc, _dataset) = tiny_service(ServiceConfig::default());
        let err = svc.submit(Request::new(Vec::new())).expect_err("must be rejected");
        assert_eq!(err, SubmitError::Empty);
    }

    #[test]
    fn out_of_domain_seeds_terminate_immediately() {
        let (svc, _dataset) = tiny_service(ServiceConfig::default());
        let resp = svc
            .submit(Request::new(vec![Vec3::splat(1e6)]))
            .expect("admitted")
            .wait()
            .expect("service answers");
        assert_eq!(resp.outcome, Outcome::Completed);
        assert_eq!(resp.streamlines.len(), 1);
        assert_eq!(
            resp.streamlines[0].status,
            streamline_integrate::StreamlineStatus::Terminated(Termination::ExitedDomain)
        );
    }

    #[test]
    fn overload_rejects_with_typed_error() {
        let cfg = ServiceConfig { queue_capacity: 8, workers: 1, ..ServiceConfig::default() };
        let (svc, dataset) = tiny_service(cfg);
        let seeds = dataset.seeds_with_count(Seeding::Dense, 9);
        let err = svc.submit(Request::new(seeds.points.clone())).expect_err("must be rejected");
        match err {
            SubmitError::Overloaded { queue_depth, capacity, requested } => {
                assert_eq!(capacity, 8);
                assert_eq!(requested, 9);
                assert_eq!(queue_depth, 0);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Rejection rolled back the reservation: a fitting request works.
        let ok = svc.submit(Request::new(seeds.points[..4].to_vec()).with_limits(limits()));
        assert!(ok.is_ok());
        ok.unwrap().wait().expect("service answers");
        let m = svc.shutdown();
        assert_eq!(m.rejected, 1);
        assert_eq!(m.submitted, 1);
    }

    #[test]
    fn immediate_deadline_expires_request() {
        let (svc, dataset) = tiny_service(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let seeds = dataset.seeds_with_count(Seeding::Sparse, 8);
        // A deadline already in the past: every seed the workers touch is
        // dropped (though some may finish before the first check).
        let ticket = svc
            .submit(
                Request::new(seeds.points.clone())
                    .with_limits(limits())
                    .with_deadline(Instant::now() - Duration::from_millis(1)),
            )
            .expect("admitted");
        let resp = ticket.wait().expect("service answers");
        match resp.outcome {
            Outcome::DeadlineExceeded { dropped } => {
                assert!(dropped > 0);
                assert_eq!(resp.streamlines.len() + dropped, 8);
            }
            other => panic!("deadline in the past cannot complete: {other:?}"),
        }
        let m = svc.shutdown();
        assert_eq!(m.deadline_expired, 1);
        assert_eq!(m.queue_depth, 0);
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let (svc, dataset) = tiny_service(ServiceConfig { workers: 3, ..ServiceConfig::default() });
        let seeds = dataset.seeds_with_count(Seeding::Dense, 64);
        let tickets: Vec<_> = (0..4)
            .map(|_| {
                svc.submit(Request::new(seeds.points.clone()).with_limits(limits()))
                    .expect("admitted")
            })
            .collect();
        // Shut down immediately: every ticket must still get an answer.
        let m = svc.shutdown();
        assert_eq!(m.completed, 4);
        assert_eq!(m.queue_depth, 0);
        for t in tickets {
            let resp = t.wait().expect("service answers");
            assert_eq!(resp.streamlines.len(), 64);
        }
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let (svc, dataset) = tiny_service(ServiceConfig::default());
        let seeds = dataset.seeds_with_count(Seeding::Sparse, 4);
        svc.begin_shutdown();
        let err = svc.submit(Request::new(seeds.points.clone())).expect_err("must be refused");
        assert_eq!(err, SubmitError::ShuttingDown);
        let m = svc.shutdown();
        assert_eq!(m.submitted, 0);
        assert_eq!(m.queue_depth, 0);
    }

    #[test]
    fn transient_faults_are_retried_to_bit_identity() {
        // Every block fails twice then clears; 4 attempts of retry budget
        // absorb that invisibly. The answers must match a fault-free run
        // exactly: faults deny, they never corrupt.
        let mut plan = FaultPlan::new();
        for b in 0..8 {
            plan = plan.transient(BlockId(b), 2);
        }
        let (faulted, dataset) = faulted_service(plan, 2);
        let (clean, _) = tiny_service(ServiceConfig::default());
        let seeds = dataset.seeds_with_count(Seeding::Sparse, 16);

        let got = faulted
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .expect("admitted")
            .wait()
            .expect("service answers");
        let want = clean
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .expect("admitted")
            .wait()
            .expect("service answers");
        assert_eq!(got.outcome, Outcome::Completed, "transient faults must be invisible");
        assert_eq!(got.streamlines.len(), want.streamlines.len());
        for (a, b) in got.streamlines.iter().zip(&want.streamlines) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.status, b.status);
            assert_eq!(a.state.position, b.state.position);
            assert_eq!(a.geometry, b.geometry, "streamline {:?} diverged", a.id);
        }
        let m = faulted.shutdown();
        assert!(m.load_retries > 0, "transient faults must cost retries");
        assert_eq!(m.load_failures, 0);
        assert_eq!(m.partial, 0);
        assert_eq!(m.streamlines_unavailable, 0);
        assert_eq!(m.blocks_quarantined, 0);
        clean.shutdown();
    }

    #[test]
    fn batched_workers_are_bit_identical_under_chaos() {
        // Batch 16 through chaos faults vs batch 1 (the scalar path) on a
        // clean store: per-streamline results must match bit for bit —
        // the batch knob and the fault injection are both invisible in
        // the answers.
        let mut plan = FaultPlan::new();
        for b in 0..8 {
            plan = plan.transient(BlockId(b), 2);
        }
        let (faulted, dataset) = faulted_service(plan, 3);
        assert_eq!(faulted.inner.batch, 16, "default width drives the batched path");
        let (scalar, _) = tiny_service(ServiceConfig { batch: 1, ..ServiceConfig::default() });
        let seeds = dataset.seeds_with_count(Seeding::Dense, 48);

        let got = faulted
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .expect("admitted")
            .wait()
            .expect("service answers");
        let want = scalar
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .expect("admitted")
            .wait()
            .expect("service answers");
        assert_eq!(got.outcome, Outcome::Completed);
        assert_eq!(got.streamlines.len(), want.streamlines.len());
        for (a, b) in got.streamlines.iter().zip(&want.streamlines) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.status, b.status);
            assert_eq!(
                a.state.position.to_array().map(f64::to_bits),
                b.state.position.to_array().map(f64::to_bits),
                "streamline {:?} position diverged",
                a.id
            );
            assert_eq!(a.state.h.to_bits(), b.state.h.to_bits());
            assert_eq!(a.geometry, b.geometry, "streamline {:?} geometry diverged", a.id);
        }
        let mb = faulted.shutdown();
        let ms = scalar.shutdown();
        assert_eq!(mb.total_steps, ms.total_steps, "same steps either way");
        assert!(mb.batched_lanes > 0, "batched path must be exercised");
        assert!(
            mb.batched_lanes >= mb.streamlines_completed,
            "every lane passes through the kernel at least once"
        );
    }

    #[test]
    fn permanent_fault_yields_typed_partial_outcome() {
        let seeds;
        let failing;
        {
            let mut dcfg = DatasetConfig::tiny();
            dcfg.blocks_per_axis = [2, 2, 2];
            let dataset = Dataset::thermal_hydraulics(dcfg);
            seeds = dataset.seeds_with_count(Seeding::Sparse, 16);
            failing = dataset.decomp.locate(seeds.points[0]).expect("seed in domain");
        }
        let (faulted, _) = faulted_service(FaultPlan::new().permanent(failing), 2);
        let (clean, _) = tiny_service(ServiceConfig::default());

        let got = faulted
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .expect("admitted")
            .wait()
            .expect("service answers");
        let want = clean
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .expect("admitted")
            .wait()
            .expect("service answers");
        let unavailable = match got.outcome {
            Outcome::Partial { unavailable } => unavailable,
            other => panic!("expected Partial, got {other:?}"),
        };
        assert!(unavailable >= 1);
        // Every seed is answered: degraded ones carry the typed
        // termination, the rest are bit-identical to the fault-free run.
        assert_eq!(got.streamlines.len(), 16);
        let mut degraded = 0;
        for (a, b) in got.streamlines.iter().zip(&want.streamlines) {
            assert_eq!(a.id, b.id);
            if a.status
                == streamline_integrate::StreamlineStatus::Terminated(Termination::BlockUnavailable)
            {
                degraded += 1;
            } else {
                assert_eq!(a.status, b.status);
                assert_eq!(a.geometry, b.geometry, "unaffected streamline {:?} diverged", a.id);
            }
        }
        assert_eq!(degraded, unavailable);
        let m = faulted.shutdown();
        assert!(m.load_failures >= 1);
        assert_eq!(m.streamlines_unavailable, unavailable as u64);
        assert_eq!(m.partial, 1);
        assert_eq!(m.queue_depth, 0, "degraded seeds still release their seats");
        clean.shutdown();
    }

    #[test]
    fn open_breaker_fails_fast_on_later_requests() {
        let (svc, dataset) = faulted_service(FaultPlan::new().permanent(BlockId(0)), 1);
        let seed = dataset
            .seeds_with_count(Seeding::Dense, 64)
            .points
            .iter()
            .copied()
            .find(|&p| dataset.decomp.locate(p) == Some(BlockId(0)))
            .expect("a seed in block 0");
        // First request trips the breaker (threshold 1)...
        let first = svc
            .submit(Request::new(vec![seed]).with_limits(limits()))
            .unwrap()
            .wait()
            .expect("service answers");
        assert_eq!(first.outcome, Outcome::Partial { unavailable: 1 });
        // ...so the second is denied without touching the store.
        let second = svc
            .submit(Request::new(vec![seed]).with_limits(limits()))
            .unwrap()
            .wait()
            .expect("service answers");
        assert_eq!(second.outcome, Outcome::Partial { unavailable: 1 });
        let m = svc.shutdown();
        assert_eq!(m.breaker_trips, 1);
        assert_eq!(m.blocks_quarantined, 1);
        assert!(m.fast_fails >= 1, "second request must be fast-failed");
        assert_eq!(m.load_failures, 1, "the store is hit once, not per request");
        assert_eq!(m.completed, 2, "every ticket is still answered");
    }

    #[test]
    fn dump_metrics_agrees_with_the_snapshot() {
        let (svc, dataset) = tiny_service(ServiceConfig::default());
        let seeds = dataset.seeds_with_count(Seeding::Sparse, 8);
        svc.submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .unwrap()
            .wait()
            .expect("service answers");
        let text = svc.dump_metrics();
        let parsed = streamline_obs::prom::parse_text(&text).expect("valid Prometheus text");
        let m = svc.metrics();
        // The counters the registry owns are bit-identical to the
        // ServiceMetrics view; both read the same handles.
        assert_eq!(parsed[names::SERVE_SUBMITTED_TOTAL], m.submitted as f64);
        assert_eq!(parsed[names::SERVE_COMPLETED_TOTAL], m.completed as f64);
        assert_eq!(parsed[names::SERVE_STREAMLINES_COMPLETED_TOTAL], 8.0);
        assert_eq!(parsed[names::SERVE_STEPS_TOTAL], m.total_steps as f64);
        assert_eq!(parsed[names::SERVE_CACHE_LOADED_TOTAL], m.cache.loaded as f64);
        assert_eq!(parsed[names::SERVE_QUEUE_CAPACITY], m.queue_capacity as f64);
        assert_eq!(
            parsed[&format!("{}_count", names::SERVE_LATENCY_NANOSECONDS)],
            m.completed as f64,
            "one latency sample per completed request"
        );
        svc.shutdown();
    }

    #[test]
    fn traced_service_emits_a_valid_wall_timeline() {
        let cfg = ServiceConfig {
            workers: 2,
            trace_bucket: Some(Duration::from_millis(1)),
            ..ServiceConfig::default()
        };
        let (svc, dataset) = tiny_service(cfg);
        let seeds = dataset.seeds_with_count(Seeding::Sparse, 16);
        svc.submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .unwrap()
            .wait()
            .expect("service answers");
        let tf = svc.timeline().expect("tracing was enabled");
        tf.validate().expect("trace invariants hold");
        assert_eq!(tf.clock, "wall");
        assert_eq!(tf.n_ranks, 2);
        assert!(tf.totals.busy() > 0.0, "workers did measurable work");
        svc.shutdown();
    }

    #[test]
    fn untraced_service_has_no_timeline() {
        let (svc, _dataset) = tiny_service(ServiceConfig::default());
        assert!(svc.timeline().is_none());
        svc.shutdown();
    }

    #[test]
    fn dead_service_yields_typed_error_not_panic() {
        // A ticket whose service died mid-request (worker panic) must
        // resolve to a typed error on the caller's thread, never a panic.
        let (tx, rx) = bounded::<Response>(1);
        let ticket = Ticket { request_id: 7, rx };
        drop(tx);
        let err = ticket.wait().expect_err("dropped sender must surface as ServiceGone");
        assert_eq!(err, ServiceGone { request_id: 7 });
        assert!(err.to_string().contains("request 7"));

        let (tx, rx) = bounded::<Response>(1);
        let ticket = Ticket { request_id: 8, rx };
        drop(tx);
        match ticket.try_wait() {
            Err(TryWait::Gone(g)) => assert_eq!(g.request_id, 8),
            other => panic!("expected Gone, got {other:?}"),
        }
    }

    #[test]
    fn pending_ticket_polls_back_as_pending() {
        let (_tx, rx) = bounded::<Response>(1);
        let ticket = Ticket { request_id: 3, rx };
        match ticket.try_wait() {
            Err(TryWait::Pending(t)) => assert_eq!(t.request_id, 3),
            other => panic!("expected Pending, got {other:?}"),
        }
    }

    #[test]
    fn warm_started_service_takes_no_cold_loads() {
        // Drain one instance, persist its residency, warm-start a second:
        // the same workload must then run load-free from the first request.
        let (first, dataset) = tiny_service(ServiceConfig::default());
        let seeds = dataset.seeds_with_count(Seeding::Sparse, 16);
        first
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .unwrap()
            .wait()
            .expect("service answers");
        let manifest = first.residency_manifest();
        let drained = first.shutdown();
        assert!(!manifest.blocks.is_empty());

        let (second, _) = tiny_service(ServiceConfig::default());
        let prefetched = second.warm_start(&manifest);
        assert_eq!(prefetched, manifest.blocks.len());
        second
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .unwrap()
            .wait()
            .expect("service answers");
        let m = second.shutdown();
        assert_eq!(
            m.cache.loaded, prefetched as u64,
            "every block the workload needs was already resident"
        );
        assert_eq!(m.cache.loaded, drained.cache.loaded, "same working set as the first instance");
        assert!(m.cache.hits > 0);
    }

    #[test]
    fn worker_panic_is_contained_and_resolves_tickets_as_gone() {
        let mut dcfg = DatasetConfig::tiny();
        dcfg.blocks_per_axis = [2, 2, 2];
        let dataset = Dataset::thermal_hydraulics(dcfg);
        let seeds = dataset.seeds_with_count(Seeding::Sparse, 16);
        let target = dataset.decomp.locate(seeds.points[0]).expect("seed in domain");
        let store = Arc::new(MemoryStore::build(&dataset));
        let svc = Service::start(
            dataset.decomp,
            store,
            ServiceConfig { workers: 2, panic_on_block: Some(target), ..ServiceConfig::default() },
        );
        // The batch claiming `target` panics mid-advance. The caller must
        // see the typed ServiceGone — not a hang, not a panic of its own.
        let err = svc
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .expect("admitted")
            .wait()
            .expect_err("a panicked batch must resolve the ticket as ServiceGone");
        assert_eq!(err.request_id, 0);
        // The panic was contained: the very same workload now completes.
        let resp = svc
            .submit(Request::new(seeds.points.clone()).with_limits(limits()))
            .expect("admitted")
            .wait()
            .expect("service answers after the panic");
        assert_eq!(resp.outcome, Outcome::Completed);
        assert_eq!(resp.streamlines.len(), 16);
        // Shutdown drains instead of deadlocking on lost in-flight work.
        let m = svc.shutdown();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.requests_gone, 1);
        assert_eq!(m.completed, 1, "only the healthy request counts as completed");
        assert_eq!(m.queue_depth, 0, "panic recovery released every admission seat");
    }

    #[test]
    fn concurrent_clients_share_the_cache() {
        let (svc, dataset) = tiny_service(ServiceConfig {
            workers: 4,
            cache_blocks: 16,
            ..ServiceConfig::default()
        });
        let svc = Arc::new(svc);
        let seeds = dataset.seeds_with_count(Seeding::Sparse, 8);
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let pts = seeds.points.clone();
                std::thread::spawn(move || {
                    svc.submit(Request::new(pts).with_limits(limits())).expect("admitted").wait()
                })
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap().expect("service answers");
            assert_eq!(resp.outcome, Outcome::Completed);
            assert_eq!(resp.streamlines.len(), 8);
        }
        let svc = Arc::try_unwrap(svc).unwrap_or_else(|_| panic!("clients done"));
        let m = svc.shutdown();
        assert_eq!(m.completed, 6);
        // 8 blocks, 16-slot cache: after the first touch everything hits.
        assert!(m.cache.hits > 0);
        assert!(m.cache_hit_rate > 0.5, "hit rate {}", m.cache_hit_rate);
        assert_eq!(m.block_efficiency, 1.0);
    }
}
