//! The process abstraction algorithms are written against.
//!
//! A [`Process`] is one rank's event handler; a [`Context`] is the rank's
//! window onto the runtime (clock, charging, messaging). The same process
//! code runs on the discrete-event simulation and the thread runtime.

use crate::event::Event;

/// The runtime services available to a process while handling an event.
pub trait Context<M> {
    /// This rank's index.
    fn rank(&self) -> usize;

    /// Number of ranks in the run.
    fn n_ranks(&self) -> usize;

    /// Current time in seconds: virtual on the simulation (including time
    /// charged so far in this handler), elapsed-real on the thread runtime.
    fn now(&self) -> f64;

    /// Account `secs` of integration work. On the simulation this advances
    /// the rank's virtual clock; on threads it only updates metrics (the
    /// work itself already took real time).
    fn charge_compute(&mut self, secs: f64);

    /// Account `secs` of block-loading time (same semantics as
    /// [`Self::charge_compute`]).
    fn charge_io(&mut self, secs: f64);

    /// Send `msg` (`bytes` long on the wire) to rank `to`. Charges the send
    /// cost and delivers after transit. Self-sends are allowed.
    fn send(&mut self, to: usize, msg: M, bytes: usize);

    /// Deliver `Event::Wake(token)` to this rank after `delay` seconds.
    fn wake_after(&mut self, delay: f64, token: u64);

    /// Request global termination: remaining events are discarded and the
    /// run ends once in-flight handlers return.
    fn stop_all(&mut self);
}

/// One rank's behaviour. Handlers must return promptly relative to the
/// charges they make — all blocking is expressed through events.
pub trait Process<M>: Send {
    fn on_event(&mut self, ev: Event<M>, ctx: &mut dyn Context<M>);
}
