//! Events delivered to processes.

/// What a process can be invoked with.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<M> {
    /// Delivered once to every rank at time 0.
    Start,
    /// A message from another rank (or itself).
    Message { from: usize, msg: M },
    /// A self-scheduled wake-up; the token is whatever the process passed to
    /// `wake_after`.
    Wake(u64),
}

impl<M> Event<M> {
    /// The message payload, if this is a message event.
    pub fn message(self) -> Option<(usize, M)> {
        match self {
            Event::Message { from, msg } => Some((from, msg)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_extraction() {
        let e: Event<u32> = Event::Message { from: 3, msg: 17 };
        assert_eq!(e.message(), Some((3, 17)));
        assert_eq!(Event::<u32>::Start.message(), None);
        assert_eq!(Event::<u32>::Wake(9).message(), None);
    }
}
