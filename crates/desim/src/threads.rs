//! Real-thread runtime: the same [`Process`] code on OS threads and
//! crossbeam channels.
//!
//! Used to validate the algorithms under genuine concurrency and to measure
//! real wall-clock numbers at laptop scale. Unlike the simulation, charging
//! compute/I-O only updates metrics — the work itself already took real
//! time — and `now()` reads a monotonic clock.

use crate::event::Event;
use crate::metrics::{ProcMetrics, SimReport};
use crate::net::NetModel;
use crate::process::{Context, Process};
use crate::trace::Timeline;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use streamline_obs::{Phase, WallTimeline};

enum Mail<M> {
    Msg { from: usize, bytes: usize, msg: M },
    Stop,
}

struct ThreadCtx<'a, M> {
    rank: usize,
    n_ranks: usize,
    start: Instant,
    metrics: &'a mut ProcMetrics,
    senders: &'a [Sender<Mail<M>>],
    wakes: &'a mut BinaryHeap<std::cmp::Reverse<(u128, u64)>>,
    stop: &'a AtomicBool,
}

impl<M> Context<M> for ThreadCtx<'_, M> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn charge_compute(&mut self, secs: f64) {
        self.metrics.compute += secs;
    }

    fn charge_io(&mut self, secs: f64) {
        self.metrics.io += secs;
    }

    fn send(&mut self, to: usize, msg: M, bytes: usize) {
        self.metrics.msgs_sent += 1;
        self.metrics.bytes_sent += bytes as u64;
        // Channel send; a dropped receiver (stopped run) is fine.
        let _ = self.senders[to].send(Mail::Msg { from: self.rank, bytes, msg });
    }

    fn wake_after(&mut self, delay: f64, token: u64) {
        let deadline = self.start.elapsed() + Duration::from_secs_f64(delay.max(0.0));
        self.wakes.push(std::cmp::Reverse((deadline.as_nanos(), token)));
    }

    fn stop_all(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for s in self.senders {
            let _ = s.send(Mail::Stop);
        }
    }
}

/// Runs processes on real threads. A process that will receive no further
/// events should return `true` from [`ThreadRuntime::run_until_finished`]'s
/// `finished` callback so its thread can retire; otherwise the run ends when
/// some process calls `stop_all` or the timeout expires.
pub struct ThreadRuntime<M, P> {
    net: NetModel,
    procs: Vec<P>,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Send, P: Process<M> + Send> ThreadRuntime<M, P> {
    pub fn new(net: NetModel, procs: Vec<P>) -> Self {
        assert!(!procs.is_empty(), "runtime needs at least one rank");
        ThreadRuntime { net, procs, _marker: std::marker::PhantomData }
    }

    /// Run until `stop_all` or `timeout`. `finished(proc)` lets a rank
    /// retire when it is done and expects no further messages.
    pub fn run_until_finished(
        self,
        timeout: Duration,
        finished: impl Fn(&P) -> bool + Sync,
    ) -> (SimReport, Vec<P>) {
        self.run_inner(timeout, &finished, None)
    }

    /// [`Self::run_until_finished`] with a wall-clock phase [`Timeline`]
    /// recorded at `bucket_width` resolution. Time blocked on the mailbox is
    /// recorded as idle; each handler's wall time is split across
    /// compute/I-O/comm proportionally to the virtual costs it charged (a
    /// handler that charged nothing counts as compute).
    pub fn run_until_finished_traced(
        self,
        timeout: Duration,
        finished: impl Fn(&P) -> bool + Sync,
        bucket_width: Duration,
    ) -> (SimReport, Vec<P>, Timeline) {
        let n = self.procs.len();
        let timeline = WallTimeline::new(n, bucket_width);
        let (report, procs) = self.run_inner(timeout, &finished, Some(&timeline));
        (report, procs, timeline.snapshot())
    }

    fn run_inner(
        self,
        timeout: Duration,
        finished: &(impl Fn(&P) -> bool + Sync),
        trace: Option<&WallTimeline>,
    ) -> (SimReport, Vec<P>) {
        let n = self.procs.len();
        let net = self.net;
        type Channels<M> = (Vec<Sender<Mail<M>>>, Vec<Receiver<Mail<M>>>);
        let (senders, receivers): Channels<M> = (0..n).map(|_| unbounded()).unzip();
        let stop = AtomicBool::new(false);
        let retired = AtomicUsize::new(0);
        let start = Instant::now();
        let deadline = start + timeout;
        let finished = &finished;
        let stop_ref = &stop;
        let retired_ref = &retired;
        let senders_ref = &senders;

        let mut results: Vec<Option<(P, ProcMetrics)>> = (0..n).map(|_| None).collect();

        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .procs
                .into_iter()
                .zip(receivers)
                .enumerate()
                .map(|(rank, (mut proc, rx))| {
                    scope.spawn(move || {
                        let mut metrics = ProcMetrics::default();
                        let mut wakes: BinaryHeap<std::cmp::Reverse<(u128, u64)>> =
                            BinaryHeap::new();
                        // `extra_comm` is the model receive cost of the
                        // message that triggered the event (0 otherwise); it
                        // is folded into the handler's comm delta so traced
                        // runs attribute the span consistently.
                        let handle = |proc: &mut P,
                                      metrics: &mut ProcMetrics,
                                      wakes: &mut BinaryHeap<std::cmp::Reverse<(u128, u64)>>,
                                      ev: Event<M>,
                                      extra_comm: f64| {
                            metrics.events += 1;
                            let span_start = trace.map(|_| Instant::now());
                            let before = (metrics.compute, metrics.io, metrics.comm);
                            metrics.comm += extra_comm;
                            let mut ctx = ThreadCtx {
                                rank,
                                n_ranks: n,
                                start,
                                metrics,
                                senders: senders_ref,
                                wakes,
                                stop: stop_ref,
                            };
                            proc.on_event(ev, &mut ctx);
                            if let (Some(tl), Some(t0)) = (trace, span_start) {
                                let weights = [
                                    metrics.compute - before.0,
                                    metrics.io - before.1,
                                    metrics.comm - before.2,
                                ];
                                tl.record_weighted(rank, t0, t0.elapsed(), weights);
                            }
                        };
                        handle(&mut proc, &mut metrics, &mut wakes, Event::Start, 0.0);
                        let mut has_retired = false;
                        loop {
                            if stop_ref.load(Ordering::SeqCst) || Instant::now() > deadline {
                                break;
                            }
                            if !has_retired && finished(&proc) && wakes.is_empty() {
                                has_retired = true;
                                if retired_ref.fetch_add(1, Ordering::SeqCst) + 1 == n {
                                    stop_ref.store(true, Ordering::SeqCst);
                                    for s in senders_ref {
                                        let _ = s.send(Mail::Stop);
                                    }
                                    break;
                                }
                            }
                            // Fire due wakes.
                            let now_ns = start.elapsed().as_nanos();
                            if let Some(&std::cmp::Reverse((t, token))) = wakes.peek() {
                                if t <= now_ns {
                                    wakes.pop();
                                    handle(
                                        &mut proc,
                                        &mut metrics,
                                        &mut wakes,
                                        Event::Wake(token),
                                        0.0,
                                    );
                                    continue;
                                }
                            }
                            let wait = wakes
                                .peek()
                                .map(|&std::cmp::Reverse((t, _))| {
                                    Duration::from_nanos((t - now_ns).min(u64::MAX as u128) as u64)
                                })
                                .unwrap_or(Duration::from_millis(5));
                            let wait_start = trace.map(|_| Instant::now());
                            let received = rx.recv_timeout(wait.min(Duration::from_millis(50)));
                            if let (Some(tl), Some(ws)) = (trace, wait_start) {
                                // Time blocked on the mailbox is starvation.
                                tl.record(rank, Phase::Idle, ws, ws.elapsed());
                            }
                            match received {
                                Ok(Mail::Msg { from, bytes, msg }) => {
                                    metrics.msgs_recv += 1;
                                    metrics.bytes_recv += bytes as u64;
                                    // The model's receive cost keeps
                                    // thread-mode comm totals comparable.
                                    handle(
                                        &mut proc,
                                        &mut metrics,
                                        &mut wakes,
                                        Event::Message { from, msg },
                                        net.recv_cost(bytes),
                                    );
                                }
                                Ok(Mail::Stop) => break,
                                Err(RecvTimeoutError::Timeout) => {}
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                        (proc, metrics)
                    })
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank thread panicked"));
            }
        });

        let wall = start.elapsed().as_secs_f64();
        let mut procs = Vec::with_capacity(n);
        let mut ranks = Vec::with_capacity(n);
        let mut events = 0;
        for r in results {
            let (p, m) = r.expect("every rank joined");
            events += m.events;
            procs.push(p);
            ranks.push(m);
        }
        (SimReport { wall, events, ranks, rank_deaths: Vec::new(), dropped_events: 0 }, procs)
    }

    /// Run until some process calls `stop_all` (5-minute safety timeout).
    pub fn run(self) -> (SimReport, Vec<P>) {
        self.run_until_finished(Duration::from_secs(300), |_| false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct PingPong {
        rounds: u32,
        seen: u32,
    }

    impl Process<u32> for PingPong {
        fn on_event(&mut self, ev: Event<u32>, ctx: &mut dyn Context<u32>) {
            match ev {
                Event::Start => {
                    if ctx.rank() == 0 {
                        ctx.send(1, 0, 64);
                    }
                }
                Event::Message { from, msg } => {
                    self.seen += 1;
                    if msg + 1 >= self.rounds {
                        ctx.stop_all();
                    } else {
                        ctx.send(from, msg + 1, 64);
                    }
                }
                Event::Wake(_) => {}
            }
        }
    }

    #[test]
    fn pingpong_on_threads() {
        let procs = (0..2).map(|_| PingPong { rounds: 10, seen: 0 }).collect();
        let (report, procs) = ThreadRuntime::new(NetModel::paper_scale(), procs).run();
        assert_eq!(procs[0].seen + procs[1].seen, 10);
        assert_eq!(report.ranks[0].msgs_sent + report.ranks[1].msgs_sent, 10);
        assert!(report.wall > 0.0);
    }

    struct Retiree {
        work_done: bool,
    }

    impl Process<()> for Retiree {
        fn on_event(&mut self, ev: Event<()>, ctx: &mut dyn Context<()>) {
            if matches!(ev, Event::Start) {
                ctx.charge_compute(0.5e-3);
                self.work_done = true;
            }
        }
    }

    #[test]
    fn all_finished_ends_run() {
        let procs = (0..4).map(|_| Retiree { work_done: false }).collect::<Vec<_>>();
        let t0 = Instant::now();
        let (report, procs) = ThreadRuntime::new(NetModel::free(), procs)
            .run_until_finished(Duration::from_secs(30), |p: &Retiree| p.work_done);
        assert!(procs.iter().all(|p| p.work_done));
        assert!(t0.elapsed() < Duration::from_secs(5), "retirement should be prompt");
        assert_eq!(report.ranks.len(), 4);
        assert!(report.total(|m| m.compute) > 0.0);
    }

    struct WakeOnce {
        woke: bool,
    }

    impl Process<()> for WakeOnce {
        fn on_event(&mut self, ev: Event<()>, ctx: &mut dyn Context<()>) {
            match ev {
                Event::Start => ctx.wake_after(10e-3, 7),
                Event::Wake(7) => {
                    self.woke = true;
                    ctx.stop_all();
                }
                _ => {}
            }
        }
    }

    #[test]
    fn wake_fires_on_threads() {
        let (_, procs) = ThreadRuntime::new(NetModel::free(), vec![WakeOnce { woke: false }]).run();
        assert!(procs[0].woke);
    }

    struct SleepyWorker {
        done: bool,
    }

    impl Process<()> for SleepyWorker {
        fn on_event(&mut self, ev: Event<()>, ctx: &mut dyn Context<()>) {
            if matches!(ev, Event::Start) {
                // Real wall time, attributed by the charges: 2/3 compute,
                // 1/3 I/O.
                std::thread::sleep(Duration::from_millis(15));
                ctx.charge_compute(2.0);
                ctx.charge_io(1.0);
                self.done = true;
            }
        }
    }

    #[test]
    fn traced_threads_split_wall_time_by_charge_weights() {
        let procs = (0..2).map(|_| SleepyWorker { done: false }).collect::<Vec<_>>();
        let (report, procs, timeline) = ThreadRuntime::new(NetModel::free(), procs)
            .run_until_finished_traced(
                Duration::from_secs(30),
                |p: &SleepyWorker| p.done,
                Duration::from_millis(5),
            );
        assert!(procs.iter().all(|p| p.done));
        assert_eq!(timeline.n_ranks, 2);
        let totals = timeline.totals();
        // Each rank slept >= 15 ms inside its handler.
        assert!(totals.busy() >= 0.025, "busy = {}", totals.busy());
        // Weighted split: compute is twice io, comm untouched.
        assert!(totals.compute > 1.9 * totals.io, "compute {} io {}", totals.compute, totals.io);
        assert_eq!(totals.comm, 0.0);
        // The untraced metrics are unaffected by tracing.
        assert_eq!(report.ranks[0].compute, 2.0);
        assert_eq!(report.ranks[0].io, 1.0);
    }

    #[test]
    fn traced_threads_record_mailbox_waits_as_idle() {
        struct WaitThenStop {
            woke: bool,
        }
        impl Process<()> for WaitThenStop {
            fn on_event(&mut self, ev: Event<()>, ctx: &mut dyn Context<()>) {
                match ev {
                    Event::Start => ctx.wake_after(30e-3, 1),
                    Event::Wake(_) => {
                        self.woke = true;
                        ctx.stop_all();
                    }
                    _ => {}
                }
            }
        }
        let (_, procs, timeline) =
            ThreadRuntime::new(NetModel::free(), vec![WaitThenStop { woke: false }])
                .run_until_finished_traced(
                    Duration::from_secs(30),
                    |_| false,
                    Duration::from_millis(5),
                );
        assert!(procs[0].woke);
        let idle = timeline.phase_total(0, Phase::Idle);
        assert!(idle >= 0.020, "waiting ~30 ms for the wake should be idle, got {idle}");
    }

    #[test]
    fn timeout_is_a_backstop() {
        struct Silent;
        impl Process<()> for Silent {
            fn on_event(&mut self, _: Event<()>, _: &mut dyn Context<()>) {}
        }
        let t0 = Instant::now();
        let (_, _) = ThreadRuntime::new(NetModel::free(), vec![Silent])
            .run_until_finished(Duration::from_millis(100), |_| false);
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(90) && dt < Duration::from_secs(5));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::event::Event;
    use crate::process::{Context, Process};

    /// Self-sends work on the thread runtime and comm metrics are recorded
    /// with the model's receive cost.
    struct SelfSender {
        got: bool,
    }

    impl Process<u8> for SelfSender {
        fn on_event(&mut self, ev: Event<u8>, ctx: &mut dyn Context<u8>) {
            match ev {
                Event::Start => ctx.send(ctx.rank(), 7, 1024),
                Event::Message { from, msg } => {
                    assert_eq!(from, ctx.rank());
                    assert_eq!(msg, 7);
                    self.got = true;
                    ctx.stop_all();
                }
                Event::Wake(_) => {}
            }
        }
    }

    #[test]
    fn self_send_delivers_on_threads() {
        let (report, procs) =
            ThreadRuntime::new(NetModel::paper_scale(), vec![SelfSender { got: false }]).run();
        assert!(procs[0].got);
        assert_eq!(report.ranks[0].msgs_sent, 1);
        assert_eq!(report.ranks[0].msgs_recv, 1);
        assert_eq!(report.ranks[0].bytes_recv, 1024);
        assert!(report.ranks[0].comm > 0.0, "recv cost must be accounted");
    }

    /// A storm of messages from many ranks to one sink all arrive.
    struct Sink {
        expect: u64,
        seen: u64,
    }

    impl Process<u8> for Sink {
        fn on_event(&mut self, ev: Event<u8>, ctx: &mut dyn Context<u8>) {
            match ev {
                Event::Start => {
                    if ctx.rank() != 0 {
                        for _ in 0..50 {
                            ctx.send(0, 1, 16);
                        }
                    }
                }
                Event::Message { .. } => {
                    self.seen += 1;
                    if self.seen == self.expect {
                        ctx.stop_all();
                    }
                }
                Event::Wake(_) => {}
            }
        }
    }

    #[test]
    fn fan_in_storm_is_lossless() {
        let n = 6;
        let expect = (n as u64 - 1) * 50;
        let procs: Vec<Sink> = (0..n).map(|_| Sink { expect, seen: 0 }).collect();
        let (report, procs) = ThreadRuntime::new(NetModel::free(), procs).run();
        assert_eq!(procs[0].seen, expect);
        let sent: u64 = report.ranks.iter().map(|m| m.msgs_sent).sum();
        assert_eq!(sent, expect);
    }
}
