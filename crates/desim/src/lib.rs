//! The execution substrate: a deterministic discrete-event simulated
//! cluster, plus a real-thread runtime that drives the *same* process code.
//!
//! The paper ran on JaguarPF (Cray XT5, MPI, up to 512 physical processors).
//! What its evaluation compares is the relative I/O / communication /
//! load-balance behaviour of three scheduling policies — properties of the
//! algorithms, not the machine. This crate therefore provides:
//!
//! * [`des::Simulation`] — virtual ranks with per-rank virtual clocks,
//!   causally ordered message delivery under a [`net::NetModel`] cost model,
//!   and explicit charging of compute and I/O time. Deterministic: the same
//!   inputs produce bit-identical schedules, at any virtual rank count, on
//!   one host thread.
//! * [`threads::ThreadRuntime`] — the same [`process::Process`] code on real
//!   OS threads with crossbeam channels, used to validate that the
//!   algorithms are correct under genuine concurrency and to run real-time
//!   benchmarks at laptop scale.
//!
//! Algorithms are written once against [`process::Context`] and run on both.

pub mod des;
pub mod event;
pub mod metrics;
pub mod net;
pub mod process;
pub mod suspect;
pub mod threads;
pub mod trace;

pub use des::{CheckpointControl, PendingEvent, SimState, Simulation};
pub use event::Event;
pub use metrics::{ProcMetrics, SimReport};
pub use net::NetModel;
pub use process::{Context, Process};
pub use suspect::HeartbeatMonitor;
pub use threads::ThreadRuntime;
pub use trace::{ChargeKind, Timeline};
