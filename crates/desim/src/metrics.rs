//! Per-rank metrics and the run report — the raw material for every figure
//! in §5 (wall clock, I/O time, communication time; block counters are kept
//! by the algorithms and merged into their own reports).

use serde::{Deserialize, Serialize};

/// Time and traffic accounting for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcMetrics {
    /// Seconds spent integrating (charged by the algorithm per step batch).
    pub compute: f64,
    /// Seconds spent loading blocks.
    pub io: f64,
    /// Seconds spent posting sends / processing receives.
    pub comm: f64,
    /// Seconds this rank sat with nothing to do (DES only: gap between its
    /// clock and the next event it executed).
    pub idle: f64,
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_recv: u64,
    pub bytes_recv: u64,
    /// Handler invocations.
    pub events: u64,
}

impl ProcMetrics {
    /// Total accounted time on this rank.
    pub fn busy(&self) -> f64 {
        self.compute + self.io + self.comm
    }

    pub fn merge(&mut self, other: &ProcMetrics) {
        self.compute += other.compute;
        self.io += other.io;
        self.comm += other.comm;
        self.idle += other.idle;
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.events += other.events;
    }
}

/// Result of one run on either runtime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall-clock time: virtual (DES) or measured (threads), seconds.
    pub wall: f64,
    /// Total events processed.
    pub events: u64,
    /// Per-rank metrics, indexed by rank.
    pub ranks: Vec<ProcMetrics>,
    /// Fail-stop rank deaths applied during the run, as `(rank, virtual
    /// time)` in application order. Empty for fault-free runs.
    #[serde(default)]
    pub rank_deaths: Vec<(usize, f64)>,
    /// Events silently discarded because their target rank was dead or their
    /// sender died before delivery. Never counted in `events`.
    #[serde(default)]
    pub dropped_events: u64,
}

impl SimReport {
    /// Sum of a per-rank field over all ranks.
    pub fn total(&self, f: impl Fn(&ProcMetrics) -> f64) -> f64 {
        self.ranks.iter().map(f).sum()
    }

    /// Totals for the headline §5 metrics: (io, comm, compute).
    pub fn totals(&self) -> (f64, f64, f64) {
        (self.total(|m| m.io), self.total(|m| m.comm), self.total(|m| m.compute))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_is_sum_of_buckets() {
        let m = ProcMetrics { compute: 1.0, io: 2.0, comm: 0.5, ..Default::default() };
        assert_eq!(m.busy(), 3.5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ProcMetrics { compute: 1.0, msgs_sent: 2, ..Default::default() };
        a.merge(&ProcMetrics { compute: 0.5, msgs_sent: 3, bytes_recv: 7, ..Default::default() });
        assert_eq!(a.compute, 1.5);
        assert_eq!(a.msgs_sent, 5);
        assert_eq!(a.bytes_recv, 7);
    }

    #[test]
    fn report_totals() {
        let r = SimReport {
            wall: 10.0,
            events: 4,
            ranks: vec![
                ProcMetrics { io: 1.0, comm: 0.25, compute: 3.0, ..Default::default() },
                ProcMetrics { io: 2.0, comm: 0.75, compute: 1.0, ..Default::default() },
            ],
            rank_deaths: Vec::new(),
            dropped_events: 0,
        };
        assert_eq!(r.totals(), (3.0, 1.0, 4.0));
    }
}
