//! Heartbeat-based failure suspicion.
//!
//! Fail-stop deaths are silent in this simulator — a dead rank's pending
//! events and in-flight messages simply vanish — so survivors can only
//! *suspect* a peer by noticing that its heartbeats stopped arriving. This
//! module keeps the bookkeeping: each watched peer has a last-heard virtual
//! time, and a sweep at `now` declares every peer silent for longer than
//! `timeout` suspected. Suspicion is monotone (a suspected peer is never
//! un-suspected) and can be wrong: a merely slow peer is indistinguishable
//! from a dead one, so recovery protocols must tolerate duplicate adoption
//! of a live peer's work.

use serde::{Deserialize, Serialize};

/// Tracks heartbeat recency for a set of watched peers and flags the ones
/// that have gone silent past a timeout. Deterministic: all state is driven
/// by explicit virtual times, and iteration order is rank order. Both lists
/// are kept sorted by rank (watch sets are small — O(n) scans beat a map).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatMonitor {
    /// Virtual seconds of silence after which a watched peer is suspected.
    pub timeout: f64,
    /// `(rank, last heard)` for each watched peer, sorted by rank (the watch
    /// start counts as a hearing, so a fresh watch cannot be instantly
    /// suspected).
    last: Vec<(usize, f64)>,
    /// Ranks declared dead so far, sorted. Monotone.
    suspected: Vec<usize>,
}

impl HeartbeatMonitor {
    pub fn new(timeout: f64) -> Self {
        assert!(timeout.is_finite() && timeout > 0.0, "suspect timeout must be positive");
        Self { timeout, last: Vec::new(), suspected: Vec::new() }
    }

    /// Start (or restart) watching `rank`, treating `now` as the moment it
    /// was last heard. Restarting an already-suspected rank is a no-op:
    /// suspicion is permanent under fail-stop.
    pub fn watch(&mut self, rank: usize, now: f64) {
        if self.is_suspected(rank) {
            return;
        }
        match self.last.binary_search_by_key(&rank, |&(r, _)| r) {
            Ok(i) => self.last[i].1 = now,
            Err(i) => self.last.insert(i, (rank, now)),
        }
    }

    /// Stop watching `rank` (e.g. the watch target moved along a ring).
    pub fn unwatch(&mut self, rank: usize) {
        if let Ok(i) = self.last.binary_search_by_key(&rank, |&(r, _)| r) {
            self.last.remove(i);
        }
    }

    /// Record a heartbeat (or any message — traffic proves liveness) from
    /// `rank` at virtual time `now`. Ignored for unwatched peers.
    pub fn beat(&mut self, rank: usize, now: f64) {
        if let Ok(i) = self.last.binary_search_by_key(&rank, |&(r, _)| r) {
            if now > self.last[i].1 {
                self.last[i].1 = now;
            }
        }
    }

    /// Declare every watched peer silent for more than `timeout` suspected,
    /// returning the *newly* suspected ranks in ascending order. Suspected
    /// peers leave the watch list.
    pub fn sweep(&mut self, now: f64) -> Vec<usize> {
        let timeout = self.timeout;
        let newly: Vec<usize> = self
            .last
            .iter()
            .filter(|&&(_, heard)| now - heard > timeout)
            .map(|&(r, _)| r)
            .collect();
        for &rank in &newly {
            self.unwatch(rank);
            if let Err(i) = self.suspected.binary_search(&rank) {
                self.suspected.insert(i, rank);
            }
        }
        newly
    }

    /// Has `rank` been declared dead?
    pub fn is_suspected(&self, rank: usize) -> bool {
        self.suspected.binary_search(&rank).is_ok()
    }

    /// All ranks declared dead so far, ascending.
    pub fn suspected(&self) -> impl Iterator<Item = usize> + '_ {
        self.suspected.iter().copied()
    }

    /// Number of ranks declared dead so far.
    pub fn suspected_count(&self) -> usize {
        self.suspected.len()
    }

    /// Currently watched (not yet suspected) peers, ascending.
    pub fn watched(&self) -> impl Iterator<Item = usize> + '_ {
        self.last.iter().map(|&(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_past_timeout_is_suspected_once() {
        let mut m = HeartbeatMonitor::new(1.0);
        m.watch(3, 0.0);
        m.watch(5, 0.0);
        assert!(m.sweep(0.9).is_empty());
        m.beat(5, 0.8);
        assert_eq!(m.sweep(1.5), vec![3]);
        assert!(m.is_suspected(3));
        assert!(!m.is_suspected(5));
        // A second sweep does not re-report rank 3.
        assert!(m.sweep(1.6).is_empty());
        assert_eq!(m.sweep(2.0), vec![5]);
        assert_eq!(m.suspected_count(), 2);
    }

    #[test]
    fn beats_keep_a_peer_alive_and_stale_beats_are_ignored() {
        let mut m = HeartbeatMonitor::new(1.0);
        m.watch(1, 0.0);
        m.beat(1, 0.9);
        m.beat(1, 0.5); // stale: must not move last-heard backwards
        assert!(m.sweep(1.8).is_empty());
        assert_eq!(m.sweep(2.0), vec![1]);
    }

    #[test]
    fn suspicion_is_permanent_across_rewatch() {
        let mut m = HeartbeatMonitor::new(1.0);
        m.watch(2, 0.0);
        assert_eq!(m.sweep(5.0), vec![2]);
        m.watch(2, 5.0);
        m.beat(2, 6.0);
        assert!(m.is_suspected(2));
        assert!(m.sweep(10.0).is_empty());
    }

    #[test]
    fn unwatch_removes_without_suspecting() {
        let mut m = HeartbeatMonitor::new(1.0);
        m.watch(7, 0.0);
        m.unwatch(7);
        assert!(m.sweep(100.0).is_empty());
        assert!(!m.is_suspected(7));
    }

    #[test]
    fn serializes_round_trip() {
        let mut m = HeartbeatMonitor::new(0.5);
        m.watch(1, 0.0);
        m.watch(2, 0.0);
        m.sweep(3.0);
        m.watch(4, 3.0);
        let json = serde_json::to_string(&m).unwrap();
        let back: HeartbeatMonitor = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
