//! Network cost model for the simulated cluster.
//!
//! A LogP-flavoured model: posting a send (or processing a receive) costs
//! CPU time proportional to the message size plus a fixed overhead — this is
//! what the paper measures as communication time ("the time required to post
//! send and receive operations and associated communication management",
//! §5) — while delivery additionally waits out the wire latency.

use serde::{Deserialize, Serialize};

/// Interconnect cost parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// One-way wire latency in seconds.
    pub latency: f64,
    /// Per-link bandwidth in bytes/second (applies to the CPU-side copy).
    pub bandwidth: f64,
    /// Fixed CPU overhead to post a send, seconds.
    pub send_overhead: f64,
    /// Fixed CPU overhead to process a receive, seconds.
    pub recv_overhead: f64,
}

impl NetModel {
    /// Cray-XT5-flavoured defaults: 20 µs latency, 2 GB/s, a few µs per
    /// message of posting overhead.
    pub fn paper_scale() -> Self {
        NetModel { latency: 20e-6, bandwidth: 2e9, send_overhead: 4e-6, recv_overhead: 4e-6 }
    }

    /// Zero-cost network for experiments that disable the communication axis.
    pub fn free() -> Self {
        NetModel { latency: 0.0, bandwidth: f64::INFINITY, send_overhead: 0.0, recv_overhead: 0.0 }
    }

    /// CPU seconds the sender spends posting a message of `bytes`.
    pub fn send_cost(&self, bytes: usize) -> f64 {
        self.send_overhead + bytes as f64 / self.bandwidth
    }

    /// CPU seconds the receiver spends accepting a message of `bytes`.
    pub fn recv_cost(&self, bytes: usize) -> f64 {
        self.recv_overhead + bytes as f64 / self.bandwidth
    }

    /// Wire time between send completion and delivery.
    pub fn transit(&self, _bytes: usize) -> f64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_bytes() {
        let n = NetModel::paper_scale();
        assert!(n.send_cost(1_000_000) > n.send_cost(100));
        assert!(n.recv_cost(1_000_000) > n.recv_cost(100));
        // A 2 MB message at 2 GB/s costs about 1 ms of copy time.
        let t = n.send_cost(2_000_000);
        assert!(t > 0.9e-3 && t < 1.2e-3, "{t}");
    }

    #[test]
    fn free_network_is_free() {
        let n = NetModel::free();
        assert_eq!(n.send_cost(1 << 30), 0.0);
        assert_eq!(n.recv_cost(1 << 30), 0.0);
        assert_eq!(n.transit(1 << 30), 0.0);
    }
}
